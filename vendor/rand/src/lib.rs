//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: [`rngs::StdRng`] (a
//! xoshiro256\*\* generator seeded through SplitMix64), the
//! [`RngCore`] / [`SeedableRng`] traits, and an [`Rng`] extension
//! trait with `gen`, `gen_range` (integer and float ranges, exclusive
//! and inclusive), `gen_bool`, and `fill`. Determinism is the point:
//! the same seed produces the same stream on every platform.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with
    /// SplitMix64 exactly like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            // SplitMix64 (Steele, Lea & Flood): each output seeds 8 bytes.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable over a `[lo, hi)` / `[lo, hi]` span.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`, or `[lo, hi]` if `inclusive`.
    fn sample_span<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Uniform sampling over integer spans via Lemire's multiply-shift.
macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range in gen_range");
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_span<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_span<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + (hi - lo) * f32::sample(rng)
    }
}

/// A range argument accepted by [`Rng::gen_range`]. The single blanket
/// impl per range shape keeps integer-literal inference working the
/// way upstream `rand` does (`gen_range(3..8)` unifies with context).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_span(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        T::sample_span(rng, start, end, true)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256\*\*
    /// (Blackman & Vigna). Not the same stream as upstream `rand`'s
    /// ChaCha12-based `StdRng`, but the workspace only relies on
    /// seed-determinism and statistical quality, not the exact stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is the one degenerate fixed point.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u8..=7);
            assert!((5..=7).contains(&y));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((9_000..11_000).contains(&b), "bucket {i}: {b}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
