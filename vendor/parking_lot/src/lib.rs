//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of APIs it actually uses: [`Mutex`] and
//! [`RwLock`] with parking_lot's non-poisoning semantics (a panic while
//! holding a guard does not poison the lock — the next locker simply
//! proceeds). Backed by `std::sync` primitives; poison errors are
//! swallowed via `into_inner`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual exclusion primitive. Unlike `std::sync::Mutex`, `lock`
/// never returns a poison error: panicking while holding the guard
/// leaves the data accessible to the next locker.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        MutexGuard { guard }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard }),
            Err(TryLockError::Poisoned(poison)) => Some(MutexGuard {
                guard: poison.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A reader-writer lock with parking_lot's non-poisoning semantics.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = self
            .inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner());
        RwLockReadGuard { guard }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = self
            .inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        RwLockWriteGuard { guard }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(RwLockReadGuard { guard }),
            Err(TryLockError::Poisoned(poison)) => Some(RwLockReadGuard {
                guard: poison.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(RwLockWriteGuard { guard }),
            Err(TryLockError::Poisoned(poison)) => Some(RwLockWriteGuard {
                guard: poison.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_is_not_poisoned_by_panic() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("boom");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn try_variants() {
        let m = Mutex::new(5);
        let g = m.try_lock().unwrap();
        assert!(m.try_lock().is_none());
        drop(g);
        let l = RwLock::new(5);
        let r = l.try_read().unwrap();
        assert!(l.try_write().is_none());
        drop(r);
        assert!(l.try_write().is_some());
    }
}
