//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` inner attribute, range and
//! tuple strategies, [`strategy::any`], [`collection::vec`], and the
//! `prop_assert*` macros. Inputs are sampled from a deterministic
//! seeded generator (override with `PROPTEST_SEED=<u64>`); there is no
//! shrinking — a failure reports the exact input that triggered it.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Types with a default whole-domain strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's canonical distribution.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_std {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_std!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A count specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, 0..10)` — vectors with length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt::Debug;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Rejection or failure of one test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The input was rejected (unused by the stand-in, kept for API
        /// compatibility).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives a strategy through `cases` sampled inputs.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
        seed: u64,
    }

    impl TestRunner {
        /// A runner seeded from `PROPTEST_SEED` (default 0).
        pub fn new(config: ProptestConfig) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0u64);
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(seed ^ 0x70726f7074657374), // "proptest"
                seed,
            }
        }

        /// Runs `test` against `cases` inputs sampled from `strategy`,
        /// panicking (with the offending input) on the first failure.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> Result<(), TestCaseError>,
        ) where
            S::Value: Debug + Clone,
        {
            for case in 0..self.config.cases {
                let input = strategy.generate(&mut self.rng);
                let shown = format!("{input:?}");
                let outcome = catch_unwind(AssertUnwindSafe(|| test(input.clone())));
                let failure = match outcome {
                    Ok(Ok(())) => None,
                    Ok(Err(TestCaseError::Reject(_))) => None,
                    Ok(Err(TestCaseError::Fail(msg))) => Some(msg),
                    Err(panic) => Some(downcast_panic(panic)),
                };
                if let Some(msg) = failure {
                    panic!(
                        "proptest case {case} failed (PROPTEST_SEED={seed}): {msg}\n\
                         input: {shown}",
                        seed = self.seed,
                    );
                }
            }
        }
    }

    fn downcast_panic(panic: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = panic.downcast_ref::<String>() {
            format!("panic: {s}")
        } else if let Some(s) = panic.downcast_ref::<&str>() {
            format!("panic: {s}")
        } else {
            "panic (non-string payload)".to_string()
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ..)` becomes
/// a `#[test]` that samples inputs and runs the body, with `prop_assert*`
/// failures reported alongside the offending input.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(
                &($($strat,)+),
                |($($arg,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the whole process) so the runner can report the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of `proptest::prelude::prop` — module-style access to the
    /// strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sorting is idempotent for arbitrary byte vectors.
        #[test]
        fn sort_is_idempotent(
            mut v in prop::collection::vec(any::<u8>(), 0..64),
        ) {
            v.sort();
            let once = v.clone();
            v.sort();
            prop_assert_eq!(&v, &once);
        }

        /// Tuple strategies expand positionally.
        #[test]
        fn tuples_and_ranges(
            (a, b) in (0u8..10, 5u64..9),
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b), "b={} out of range", b);
            prop_assert!(flag as u8 <= 1, "bool strategy produced {}", flag);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner.run(&(0u8..200,), |(x,)| {
            if x > 2 {
                return Err(TestCaseError::fail("too big"));
            }
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "panic: inner")]
    fn panicking_property_is_caught_and_reported() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        runner.run(&(0u8..200,), |(_x,)| -> Result<(), TestCaseError> {
            panic!("inner");
        });
    }
}
