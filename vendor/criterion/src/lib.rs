//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BenchmarkId`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — measuring with plain wall-clock timing and printing a
//! one-line mean per benchmark. No statistics, plots, or comparisons:
//! just enough for `cargo bench` to run and report.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimizer barrier.
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` input per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// How much setup data `iter_batched` keeps alive at once. The
/// stand-in always sets up one input per iteration, so this only
/// exists for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so benches can pass plain
/// strings where the real crate accepts them.
pub trait IntoBenchmarkId {
    /// Converts into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts CLI args in the real crate; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the iteration count used per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into_benchmark_id().id, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Prints the final report in the real crate; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Sets the measurement time; accepted for API compatibility.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time; accepted for API compatibility.
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Declares the units processed per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        run_one(&id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    id: &str,
    sample_size: u64,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        iters: sample_size.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    let mut line = format!("bench {id:<50} {:>12.0} ns/iter", per_iter);
    if let Some(tp) = throughput {
        let (units, label) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if per_iter > 0.0 {
            let rate = units as f64 / (per_iter / 1e9);
            let _ = write!(line, "  {rate:>14.0} {label}");
        }
    }
    println!("{line}");
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("addition", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![3u8; 64],
                |v| v.into_iter().map(u64::from).sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_all_shapes() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!("plain".into_benchmark_id().id, "plain");
    }
}
