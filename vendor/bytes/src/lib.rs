//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] type only: a cheaply cloneable, immutable,
//! contiguous byte buffer backed by `Arc<[u8]>` with zero-copy
//! [`Bytes::slice`]. The API mirrors the subset the workspace uses;
//! `Hash`, `Eq`, and `Ord` all delegate to the underlying `[u8]` so
//! `Borrow<[u8]>`-keyed map lookups behave identically to the real
//! crate.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice.
    ///
    /// The stand-in copies the data; the real crate borrows it. The
    /// observable behaviour is identical.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_vec(bytes.to_vec())
    }

    /// Creates `Bytes` by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying buffer (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range out of bounds: [{begin}, {end}) of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from_vec(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::default().is_empty());
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from("hello".to_string());
        let c = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a, "hello");
        assert_eq!(a, b"hello");
        assert_eq!(a, &b"hello"[..]);
    }

    #[test]
    fn slice_shares_storage() {
        let a = Bytes::from_static(b"hello world");
        let tail = a.slice(6..);
        assert_eq!(&tail[..], b"world");
        let mid = a.slice(3..8);
        assert_eq!(&mid[..], b"lo wo");
        let sub = mid.slice(1..=2);
        assert_eq!(&sub[..], b"o ");
        assert_eq!(a.slice(..).len(), 11);
    }

    #[test]
    #[should_panic(expected = "range out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from_static(b"abc").slice(2..5);
    }

    #[test]
    fn hash_matches_slice_for_borrowed_lookup() {
        let mut m: HashMap<Bytes, u32> = HashMap::new();
        m.insert(Bytes::from_static(b"k1"), 7);
        assert_eq!(m.get(&b"k1"[..]), Some(&7));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [
            Bytes::from_static(b"b"),
            Bytes::from_static(b"ab"),
            Bytes::from_static(b"a"),
        ];
        v.sort();
        assert_eq!(v[0], "a");
        assert_eq!(v[1], "ab");
        assert_eq!(v[2], "b");
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\n\xff\"");
        assert_eq!(format!("{b:?}"), "b\"a\\n\\xff\\\"\"");
    }
}
