//! Deterministic chaos harness: the §4.3 availability story under
//! adversarial seeds.
//!
//! Each seed expands (via [`liquid_sim::chaos::ChaosPlan`]) into a
//! reproducible interleaving of produces, consumes, broker kills and
//! restarts, compactions, job runs, job crashes, and armed fault
//! injections across every layer (log, cluster, job, task state). The
//! harness interprets the plan against a full stack and, after **every**
//! recovery, checks three invariants:
//!
//! 1. **Durability** — no record acknowledged at `AckLevel::All` is ever
//!    lost: after recovery it is readable below the high watermark.
//! 2. **Compaction** — a compacted feed always serves the latest value
//!    per key: a (possibly mid-crash) compaction never changes the
//!    committed latest-per-key view, and the value served for a key is
//!    never older than the newest acked-All record for that key.
//! 3. **State recovery** — a restored task's state is exactly the fold
//!    of its changelog (put/tombstone replay), and once the job drains
//!    its input after the final recovery, its state equals the
//!    latest-per-key fold of the committed input (at-least-once
//!    reprocessing from the last checkpoint converges).
//!
//! Every run is fully deterministic per seed: all randomness comes from
//! the plan generator, injectors fire on fixed schedules, and cluster
//! state iterates in sorted order. A failing seed prints a repro line:
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test -q --test chaos
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;
// The prelude exports `liquid::Result`; this harness threads its own
// error strings, so shadow it back to the std two-parameter form.
use std::result::Result;

use liquid::prelude::*;
use liquid_log::LogError;
use liquid_messaging::{Cluster, ClusterConfig, MessagingError, TopicConfig};
use liquid_obs::Obs;
use liquid_processing::ProcessingError;
use liquid_sim::chaos::{AckChoice, ChaosOp, ChaosPlan, FaultSite};
use liquid_sim::failure::FailureInjector;

/// Append-only data feed: nothing may ever disappear from it.
const EVENTS: &str = "events";
/// Compacted feed receiving the same keyed stream.
const KV: &str = "kv";
/// Size-retained feed: whole sealed segments are dropped by
/// `ChaosOp::EnforceRetention`, so — unlike [`EVENTS`] — records here
/// are *expected* to disappear, oldest segment first. Kept separate so
/// durability invariant 1 stays strict on the append-only feed.
const RETAINED: &str = "retained";
/// Job name; its changelog topic is `__chaos-state`.
const JOB: &str = "chaos";
const CHANGELOG: &str = "__chaos-state";
const BROKERS: u32 = 3;
const PLAN_LEN: usize = 120;
const SEEDS: u64 = 64;
/// Retry budget for recovery loops; armed injector schedules each fire
/// exactly once, so retries always converge well within this.
const RECOVERY_BUDGET: usize = 64;

fn tp(topic: &str) -> TopicPartition {
    TopicPartition::new(topic, 0)
}

fn key_bytes(key: u8) -> Bytes {
    Bytes::from(format!("k{key}"))
}

fn tag_bytes(tag: u32) -> Bytes {
    Bytes::from(tag.to_string())
}

/// True when a messaging error is a simulated crash (injected at any
/// depth), as opposed to a real harness/engine bug.
fn messaging_injected(e: &MessagingError) -> bool {
    matches!(
        e,
        MessagingError::Injected(_) | MessagingError::Log(LogError::Injected(_))
    )
}

/// True when a processing error should be treated as a task crash: an
/// injected fault at any layer underneath, or the input/changelog
/// partition being unavailable mid-outage (a real task dies too when it
/// cannot reach its changelog).
fn processing_crash(e: &ProcessingError) -> bool {
    match e {
        ProcessingError::Injected(_) => true,
        ProcessingError::State(liquid_kv::KvError::Injected(_)) => true,
        ProcessingError::Messaging(m) => {
            messaging_injected(m) || matches!(m, MessagingError::PartitionUnavailable(_))
        }
        _ => false,
    }
}

/// One injector per layer, armed by `ChaosOp::InjectFault`. All are
/// schedule-only (no probability), so each armed fault fires exactly
/// once and runs stay deterministic.
struct Injectors {
    log: FailureInjector,
    cluster: FailureInjector,
    job: FailureInjector,
    state: FailureInjector,
}

impl Injectors {
    fn new() -> Self {
        Injectors {
            log: FailureInjector::disabled(),
            cluster: FailureInjector::disabled(),
            job: FailureInjector::disabled(),
            state: FailureInjector::disabled(),
        }
    }

    fn site(&self, site: FaultSite) -> &FailureInjector {
        match site {
            FaultSite::Log => &self.log,
            FaultSite::Cluster => &self.cluster,
            FaultSite::Job => &self.job,
            FaultSite::State => &self.state,
        }
    }
}

/// Everything a run produces that must be identical across two runs of
/// the same seed.
#[derive(Debug, PartialEq)]
struct RunReport {
    seed: u64,
    trace: Vec<String>,
    crashes: u64,
    acked_events: usize,
    final_events_fold: BTreeMap<Bytes, Bytes>,
    final_kv_fold: BTreeMap<Bytes, Bytes>,
    /// (operations, failures) per injector: log, cluster, job, state.
    injector_counts: [(u64, u64); 4],
    /// (operations, failures) at the two batch-boundary fault sites:
    /// `log.append-batch`, `replication.fetch-batch`.
    batch_site_counts: [(u64, u64); 2],
    /// (operations, failures) at the two segment-lifecycle fault sites:
    /// `log.segment-drop`, `log.cache-evict`.
    retention_site_counts: [(u64, u64); 2],
}

struct Harness {
    cluster: Cluster,
    inj: Injectors,
    job: Option<Job>,
    down: BTreeSet<u32>,
    /// Every (key, tag) the events feed acknowledged at `All`.
    acked_events: Vec<(u8, u32)>,
    /// Newest tag acked at `All` per key on the compacted feed.
    kv_acked: BTreeMap<u8, u32>,
    /// Committed latest-per-key view captured before a compaction that
    /// then crashed; checked for equality after recovery.
    pending_kv_fold: Option<BTreeMap<Bytes, Bytes>>,
    consume_pos: u64,
    /// Cache sweeps run so far; every other sweep arms a one-shot
    /// fault so `log.cache-evict` absorbs injected crashes.
    sweeps: u64,
    crashes: u64,
    trace: Vec<String>,
}

fn make_job(cluster: &Cluster, inj: &Injectors) -> Result<Job, ProcessingError> {
    let mut config = JobConfig::new(JOB, &[EVENTS]).checkpoint_every(25);
    config.injector = inj.job.clone();
    config.state_injector = inj.state.clone();
    Job::new(cluster, config, |_| {
        Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
            let key = m.key.clone().unwrap_or_default();
            ctx.store().put(key, m.value.clone())?;
            ctx.store().add_counter(b"__count", 1)?;
            Ok(())
        }))
    })
}

impl Harness {
    fn new(obs: Obs) -> Self {
        let clock = SimClock::new(0);
        let inj = Injectors::new();
        let cluster_config = ClusterConfig::builder()
            .brokers(BROKERS)
            .injector(inj.cluster.clone())
            .obs(obs)
            // A deliberately tiny segment-read cache: every sweep fills
            // and evicts under pressure, so `log.cache-evict` is
            // exercised (and armed log faults can land on it).
            .segment_cache_bytes(8 * 1024)
            .segment_cache_shards(2)
            .build()
            .expect("valid cluster config");
        let mut tc = TopicConfig::builder()
            .partitions(1)
            .replication(3)
            .segment_bytes(4096)
            .build_for(&cluster_config)
            .expect("valid events topic");
        tc.log.injector = inj.log.clone();
        let mut kv_tc = TopicConfig::builder()
            .partitions(1)
            .replication(3)
            .compacted()
            .segment_bytes(2048)
            .build_for(&cluster_config)
            .expect("valid kv topic");
        kv_tc.log.injector = inj.log.clone();
        let mut retained_tc = TopicConfig::builder()
            .partitions(1)
            .replication(3)
            .retention(liquid_log::RetentionPolicy::DropByBytes {
                max_bytes: 3 * 1024,
            })
            .segment_bytes(1024)
            .build_for(&cluster_config)
            .expect("valid retained topic");
        retained_tc.log.injector = inj.log.clone();
        let cluster = Cluster::new(cluster_config, clock.shared());
        cluster.create_topic(EVENTS, tc).unwrap();
        cluster.create_topic(KV, kv_tc).unwrap();
        cluster.create_topic(RETAINED, retained_tc).unwrap();
        // No injector is armed yet, so the initial instantiation cannot
        // crash.
        let job = make_job(&cluster, &inj).expect("initial job");
        Harness {
            cluster,
            inj,
            job: Some(job),
            down: BTreeSet::new(),
            acked_events: Vec::new(),
            kv_acked: BTreeMap::new(),
            pending_kv_fold: None,
            consume_pos: 0,
            sweeps: 0,
            crashes: 0,
            trace: Vec::new(),
        }
    }

    /// Fetches one committed batch, absorbing injected read faults: a
    /// cache-miss fill can tick `log.cache-evict` when it evicts under
    /// pressure, and armed schedules fire exactly once, so a retry
    /// always converges.
    fn fetch_committed(&self, tp: &TopicPartition, offset: u64) -> Vec<Message> {
        for _ in 0..RECOVERY_BUDGET {
            match self.cluster.fetch_batch(tp, offset, 1 << 20) {
                Ok(b) => return b.into_messages(),
                Err(e) if messaging_injected(&e) => continue,
                Err(e) => panic!("unexpected fetch error: {e}"),
            }
        }
        panic!("injected read faults did not drain within {RECOVERY_BUDGET} retries");
    }

    /// Latest committed value per key (tombstone-aware fold of the
    /// committed prefix of partition 0).
    fn committed_fold(&self, topic: &str) -> BTreeMap<Bytes, Bytes> {
        let tp = tp(topic);
        let mut map = BTreeMap::new();
        let mut offset = self.cluster.earliest_offset(&tp).unwrap();
        loop {
            let batch = self.fetch_committed(&tp, offset);
            if batch.is_empty() {
                break;
            }
            for m in batch {
                offset = m.offset + 1;
                let Some(k) = m.key else { continue };
                if m.value.is_empty() {
                    map.remove(&k);
                } else {
                    map.insert(k, m.value);
                }
            }
        }
        map
    }

    /// All committed (key, value) pairs of the append-only events feed.
    fn committed_events(&self) -> BTreeSet<(Bytes, Bytes)> {
        let tp = tp(EVENTS);
        let mut set = BTreeSet::new();
        let mut offset = 0;
        loop {
            let batch = self.fetch_committed(&tp, offset);
            if batch.is_empty() {
                break;
            }
            for m in batch {
                offset = m.offset + 1;
                set.insert((m.key.unwrap_or_default(), m.value));
            }
        }
        set
    }

    /// Executes one plan op. `Err` means a (simulated) crash was
    /// observed and the caller must run recovery.
    fn step(&mut self, op: &ChaosOp) -> Result<(), String> {
        match *op {
            ChaosOp::Produce { key, tag, ack } => self.produce(key, tag, ack),
            ChaosOp::ProduceBatch {
                key,
                tag,
                count,
                ack,
            } => self.produce_batch(key, tag, count, ack),
            ChaosOp::Consume => self.consume(),
            ChaosOp::KillBroker { broker } => {
                let id = u32::from(broker) % BROKERS;
                // Keep at least one broker alive so outages are
                // survivable (the paper's f < n assumption).
                if self.down.contains(&id) || self.down.len() as u32 >= BROKERS - 1 {
                    return Ok(());
                }
                self.down.insert(id);
                match self.cluster.kill_broker(id) {
                    Ok(()) => Ok(()),
                    Err(e) if messaging_injected(&e) => Err(format!("kill_broker({id}): {e}")),
                    Err(e) => panic!("unexpected kill_broker error: {e}"),
                }
            }
            ChaosOp::RestartBroker { broker } => {
                let id = u32::from(broker) % BROKERS;
                if self.down.remove(&id) {
                    self.cluster.restart_broker(id).unwrap();
                }
                Ok(())
            }
            ChaosOp::ReplicateTick => match self.cluster.replicate_tick() {
                Ok(_) => Ok(()),
                Err(e) if messaging_injected(&e) => Err(format!("replicate_tick: {e}")),
                Err(e) => panic!("unexpected replicate_tick error: {e}"),
            },
            ChaosOp::Compact => self.compact(),
            ChaosOp::EnforceRetention { count } => self.enforce_retention(count),
            ChaosOp::CacheSweep => self.cache_sweep(),
            ChaosOp::RunJob => self.with_job(|job| job.run_until_idle(4).map(|_| ())),
            ChaosOp::Checkpoint => self.with_job(Job::checkpoint),
            ChaosOp::CrashJob => {
                // Unclean kill: no final checkpoint, local state lost.
                self.job = None;
                Err("job killed (unclean)".to_string())
            }
            ChaosOp::InjectFault { site, after_ops } => {
                self.inj.site(site).fail_at(u64::from(after_ops));
                Ok(())
            }
        }
    }

    fn produce(&mut self, key: u8, tag: u32, ack: AckChoice) -> Result<(), String> {
        let acks = match ack {
            AckChoice::All => AckLevel::All,
            AckChoice::Leader => AckLevel::Leader,
            AckChoice::None => AckLevel::None,
        };
        let (k, v) = (key_bytes(key), tag_bytes(tag));
        match self
            .cluster
            .produce_to(&tp(EVENTS), Some(k.clone()), v.clone(), acks)
        {
            Ok(_) => {
                if ack == AckChoice::All {
                    self.acked_events.push((key, tag));
                }
            }
            // Mid-outage: a real producer would retry; the record is
            // simply not acknowledged.
            Err(MessagingError::PartitionUnavailable(_)) => return Ok(()),
            Err(e) if messaging_injected(&e) => return Err(format!("produce events: {e}")),
            Err(e) => panic!("unexpected produce error: {e}"),
        }
        match self.cluster.produce_to(&tp(KV), Some(k), v, acks) {
            Ok(_) => {
                if ack == AckChoice::All {
                    let entry = self.kv_acked.entry(key).or_insert(tag);
                    *entry = (*entry).max(tag);
                }
                Ok(())
            }
            Err(MessagingError::PartitionUnavailable(_)) => Ok(()),
            Err(e) if messaging_injected(&e) => Err(format!("produce kv: {e}")),
            Err(e) => panic!("unexpected produce error: {e}"),
        }
    }

    /// Produces a whole record batch through the group-commit path.
    ///
    /// The acknowledgement model is all-or-nothing: only when the
    /// cluster acknowledges the *entire* batch at `AckLevel::All` are
    /// its records added to the acked sets. A crash mid-batch (armed
    /// injector firing at `log.append-batch` or
    /// `replication.fetch-batch`) acknowledges nothing — the durability
    /// invariant then proves the system never partially commits what it
    /// partially acked, because there is no partial ack to begin with,
    /// and anything it *did* ack must survive in full.
    fn produce_batch(
        &mut self,
        key: u8,
        tag: u32,
        count: u8,
        ack: AckChoice,
    ) -> Result<(), String> {
        let acks = match ack {
            AckChoice::All => AckLevel::All,
            AckChoice::Leader => AckLevel::Leader,
            AckChoice::None => AckLevel::None,
        };
        // Record i of the batch carries key (key+i)%8 and tag tag+i,
        // matching the tag-uniqueness contract of the plan generator.
        let records: Vec<(u8, u32)> = (0..count)
            .map(|i| ((key + i) % 8, tag + u32::from(i)))
            .collect();
        let build = |records: &[(u8, u32)]| {
            let mut b = RecordBatch::builder();
            for &(k, t) in records {
                b.push(Some(key_bytes(k).as_ref()), tag_bytes(t).as_ref(), 0);
            }
            b.build()
        };
        match self
            .cluster
            .produce_batch(&tp(EVENTS), build(&records), acks, None)
        {
            Ok(base) => {
                if ack == AckChoice::All {
                    // Atomicity: an acked-All batch is committed whole —
                    // the high watermark covers every record in it.
                    let hw = self.cluster.latest_offset(&tp(EVENTS)).unwrap_or(0);
                    assert!(
                        hw >= base.saturating_add(u64::from(count)),
                        "torn batch: acked at All but hw {hw} splits batch at base {base} (count {count})"
                    );
                    self.acked_events.extend(records.iter().copied());
                }
            }
            Err(MessagingError::PartitionUnavailable(_)) => return Ok(()),
            Err(e) if messaging_injected(&e) => return Err(format!("produce-batch events: {e}")),
            Err(e) => panic!("unexpected produce_batch error: {e}"),
        }
        match self
            .cluster
            .produce_batch(&tp(KV), build(&records), acks, None)
        {
            Ok(_) => {
                if ack == AckChoice::All {
                    for &(k, t) in &records {
                        let entry = self.kv_acked.entry(k).or_insert(t);
                        *entry = (*entry).max(t);
                    }
                }
                Ok(())
            }
            Err(MessagingError::PartitionUnavailable(_)) => Ok(()),
            Err(e) if messaging_injected(&e) => Err(format!("produce-batch kv: {e}")),
            Err(e) => panic!("unexpected produce_batch error: {e}"),
        }
    }

    fn consume(&mut self) -> Result<(), String> {
        let tp = tp(EVENTS);
        match self.cluster.fetch_batch(&tp, self.consume_pos, 1 << 20) {
            Ok(batch) => {
                // Offset-granular position healing: `end_offset` also
                // jumps a position parked inside a retired segment
                // forward to the first live record.
                self.consume_pos = batch.end_offset();
            }
            Err(MessagingError::PartitionUnavailable(_)) => return Ok(()),
            Err(e) if messaging_injected(&e) => return Err(format!("consume: {e}")),
            Err(e) => panic!("unexpected fetch error: {e}"),
        }
        match self
            .cluster
            .offsets()
            .commit("chaos-readers", &tp, self.consume_pos, BTreeMap::new())
        {
            Ok(()) => Ok(()),
            Err(e) if messaging_injected(&e) => Err(format!("offset commit: {e}")),
            Err(e) => panic!("unexpected offset commit error: {e}"),
        }
    }

    fn compact(&mut self) -> Result<(), String> {
        // Compaction runs only on a healthy, fully replicated cluster
        // (operators don't compact mid-outage); this keeps sealed
        // segments at or below the high watermark, so compaction can
        // only drop records superseded by *committed* ones.
        if !self.down.is_empty() {
            return Ok(());
        }
        if let Err(e) = self.cluster.replicate_tick() {
            if messaging_injected(&e) {
                return Err(format!("pre-compaction replicate: {e}"));
            }
            panic!("unexpected replicate_tick error: {e}");
        }
        let before = self.committed_fold(KV);
        match self.cluster.compact_topic(KV) {
            Ok(_) => {}
            Err(e) if messaging_injected(&e) => {
                // Crashed mid-rewrite: some segments compacted, the
                // generation un-bumped. The committed view must be
                // unchanged — verified after recovery.
                self.pending_kv_fold = Some(before);
                return Err(format!("compact kv: {e}"));
            }
            Err(e) => panic!("unexpected compaction error: {e}"),
        }
        let after = self.committed_fold(KV);
        assert_eq!(
            before, after,
            "invariant 2: compaction changed the committed latest-per-key view"
        );
        // The changelog is compacted too (its log has no injector, so
        // this cannot crash) — exercising restore-after-compaction.
        self.cluster.compact_topic(CHANGELOG).unwrap();
        Ok(())
    }

    /// Fills the size-retained feed with `count` acked records, then
    /// runs a whole-segment retention pass. Each drop is O(1) and ticks
    /// `log.segment-drop`, so an armed log fault can crash the pass
    /// mid-drop; a later pass simply resumes from the surviving
    /// segments. Afterwards a read parked at offset 0 must heal to the
    /// first retained offset, never serving or erroring on dropped
    /// data.
    fn enforce_retention(&mut self, count: u8) -> Result<(), String> {
        let tp = tp(RETAINED);
        for i in 0..count {
            let value = Bytes::from(vec![b'r'; 192]);
            match self
                .cluster
                .produce_to(&tp, Some(key_bytes(i % 8)), value, AckLevel::All)
            {
                Ok(_) => {}
                Err(MessagingError::PartitionUnavailable(_)) => return Ok(()),
                Err(e) if messaging_injected(&e) => return Err(format!("produce retained: {e}")),
                Err(e) => panic!("unexpected produce error: {e}"),
            }
        }
        // Every other burst arms a one-shot fault right before the
        // pass: the first log-injector tick inside retention is
        // `log.segment-drop` (when a drop is due), so the armed fault
        // lands exactly on the segment-lifecycle crash point. When no
        // drop is due the schedule drains at the next append instead.
        if count.is_multiple_of(2) {
            self.inj.log.fail_at(1);
        }
        match self.cluster.enforce_retention() {
            Ok(_) => {}
            Err(e) if messaging_injected(&e) => return Err(format!("retention: {e}")),
            Err(e) => panic!("unexpected retention error: {e}"),
        }
        let earliest = match self.cluster.earliest_offset(&tp) {
            Ok(o) => o,
            Err(MessagingError::PartitionUnavailable(_)) => return Ok(()),
            Err(e) => panic!("unexpected earliest_offset error: {e}"),
        };
        let healed = self.fetch_committed(&tp, 0);
        if let Some(first) = healed.first() {
            assert!(
                first.offset >= earliest,
                "read served offset {} from below the retention floor {earliest}",
                first.offset
            );
        }
        Ok(())
    }

    /// Sweeps every feed from its first retained offset through the
    /// segment-read cache: cold segments fill it (evicting — and
    /// ticking `log.cache-evict` — under the harness's deliberately
    /// tiny capacity), warm segments must serve the same bytes.
    fn cache_sweep(&mut self) -> Result<(), String> {
        // Every other sweep arms a one-shot fault: a cold fill's first
        // log-injector tick is `log.cache-evict` (evictions under the
        // tiny capacity precede any other log site on the read path),
        // so injected crashes land on the eviction crash point.
        self.sweeps += 1;
        if self.sweeps.is_multiple_of(2) {
            self.inj.log.fail_at(1);
        }
        for topic in [EVENTS, RETAINED, KV] {
            let tp = tp(topic);
            let start = match self.cluster.earliest_offset(&tp) {
                Ok(o) => o,
                Err(MessagingError::PartitionUnavailable(_)) => continue,
                Err(e) => panic!("unexpected earliest_offset error: {e}"),
            };
            match self.cluster.fetch_batch(&tp, start, 1 << 20) {
                Ok(_) => {}
                Err(MessagingError::PartitionUnavailable(_)) => {}
                Err(e) if messaging_injected(&e) => return Err(format!("sweep {topic}: {e}")),
                Err(e) => panic!("unexpected sweep error: {e}"),
            }
        }
        Ok(())
    }

    fn with_job(
        &mut self,
        f: impl FnOnce(&mut Job) -> Result<(), ProcessingError>,
    ) -> Result<(), String> {
        let Some(job) = self.job.as_mut() else {
            return Ok(());
        };
        match f(job) {
            Ok(()) => Ok(()),
            Err(e) if processing_crash(&e) => {
                self.job = None;
                Err(format!("job: {e}"))
            }
            Err(e) => panic!("unexpected job error: {e}"),
        }
    }

    /// Replication rounds until every feed's high watermark reaches its
    /// leader log end. `Err` = an armed injector fired mid-round.
    fn replicate_until_stable(&mut self) -> Result<(), String> {
        for _ in 0..16 {
            match self.cluster.replicate_tick() {
                Ok(_) => {}
                Err(e) if messaging_injected(&e) => return Err(format!("replicate: {e}")),
                Err(e) => panic!("unexpected replicate_tick error: {e}"),
            }
            let stable = [EVENTS, KV, CHANGELOG].iter().all(|t| {
                let tp = tp(t);
                self.cluster.latest_offset(&tp).unwrap()
                    == self.cluster.log_end_offset(&tp).unwrap()
            });
            if stable {
                return Ok(());
            }
        }
        Err("replication did not stabilize in 16 rounds".to_string())
    }

    /// Full recovery from an observed crash: revive every broker, run
    /// replication to stability, rebuild the job if it died — retrying
    /// deterministically while armed injectors keep firing — then check
    /// all three invariants.
    fn recover(&mut self, why: String) {
        self.crashes += 1;
        self.trace.push(format!("crash: {why}"));
        let mut recovered = false;
        for _ in 0..RECOVERY_BUDGET {
            for id in 0..BROKERS {
                self.cluster.restart_broker(id).unwrap();
            }
            self.down.clear();
            if let Err(e) = self.replicate_until_stable() {
                self.trace.push(format!("recovery retry: {e}"));
                self.crashes += 1;
                continue;
            }
            if self.job.is_none() {
                match make_job(&self.cluster, &self.inj) {
                    Ok(j) => self.job = Some(j),
                    Err(e) if processing_crash(&e) => {
                        self.trace.push(format!("recovery retry: rebuild: {e}"));
                        self.crashes += 1;
                        continue;
                    }
                    Err(e) => panic!("unexpected error rebuilding job: {e}"),
                }
                self.check_restored_state();
            }
            recovered = true;
            break;
        }
        assert!(
            recovered,
            "recovery did not converge within {RECOVERY_BUDGET} attempts"
        );
        if let Some(before) = self.pending_kv_fold.take() {
            assert_eq!(
                before,
                self.committed_fold(KV),
                "invariant 2: mid-compaction crash changed the committed latest-per-key view"
            );
        }
        self.check_acked();
    }

    /// Invariant 1 (+ the acked floor of invariant 2): every record
    /// acked at `All` on the events feed is still readable, and the
    /// compacted feed never serves a value older than the newest
    /// acked-All record per key.
    fn check_acked(&self) {
        let present = self.committed_events();
        for &(key, tag) in &self.acked_events {
            assert!(
                present.contains(&(key_bytes(key), tag_bytes(tag))),
                "invariant 1: acked-All record (k{key}, {tag}) lost"
            );
        }
        let kv = self.committed_fold(KV);
        for (&key, &tag) in &self.kv_acked {
            let served = kv
                .get(&key_bytes(key))
                .unwrap_or_else(|| panic!("invariant 2: key k{key} with acked record missing"));
            let served_tag: u32 = std::str::from_utf8(served).unwrap().parse().unwrap();
            assert!(
                served_tag >= tag,
                "invariant 2: compacted feed serves tag {served_tag} for k{key}, \
                 older than acked {tag}"
            );
        }
    }

    /// Invariant 3: a freshly restored task's state is exactly the fold
    /// of its changelog partition.
    fn check_restored_state(&mut self) {
        let replay = self.committed_fold(CHANGELOG);
        let job = self.job.as_mut().expect("job rebuilt");
        let restored: BTreeMap<Bytes, Bytes> =
            job.state(0).unwrap().scan_all().into_iter().collect();
        assert_eq!(
            restored, replay,
            "invariant 3: restored state differs from changelog replay"
        );
    }

    /// Final recovery + drain: after the plan, bring everything back,
    /// let the job consume all committed input, and check that its
    /// state converged to the latest-per-key fold of the input feed.
    fn finish(mut self, seed: u64) -> RunReport {
        let mut drained = false;
        for _ in 0..RECOVERY_BUDGET {
            for id in 0..BROKERS {
                self.cluster.restart_broker(id).unwrap();
            }
            self.down.clear();
            if self.replicate_until_stable().is_err() {
                self.crashes += 1;
                continue;
            }
            if self.job.is_none() {
                match make_job(&self.cluster, &self.inj) {
                    Ok(j) => self.job = Some(j),
                    Err(e) if processing_crash(&e) => {
                        self.crashes += 1;
                        continue;
                    }
                    Err(e) => panic!("unexpected error rebuilding job: {e}"),
                }
                self.check_restored_state();
            }
            let job = self.job.as_mut().unwrap();
            match job.run_until_idle(RECOVERY_BUDGET) {
                Ok(_) => {}
                Err(e) if processing_crash(&e) => {
                    self.job = None;
                    self.crashes += 1;
                    continue;
                }
                Err(e) => panic!("unexpected job error draining: {e}"),
            }
            let job = self.job.as_mut().unwrap();
            if job.lag().unwrap() > 0 {
                continue;
            }
            match job.checkpoint() {
                Ok(()) => {}
                Err(e) if processing_crash(&e) => {
                    self.job = None;
                    self.crashes += 1;
                    continue;
                }
                Err(e) => panic!("unexpected checkpoint error: {e}"),
            }
            drained = true;
            break;
        }
        assert!(drained, "final drain did not converge");
        self.check_acked();
        if let Some(before) = self.pending_kv_fold.take() {
            assert_eq!(
                before,
                self.committed_fold(KV),
                "invariant 2: mid-compaction crash changed the committed latest-per-key view"
            );
        }
        // At-least-once convergence: the drained task's keyed state is
        // the latest-per-key fold of the committed input.
        let events_fold = self.committed_fold(EVENTS);
        let state: BTreeMap<Bytes, Bytes> = self
            .job
            .as_mut()
            .unwrap()
            .state(0)
            .unwrap()
            .scan_all()
            .into_iter()
            .filter(|(k, _)| k.starts_with(b"k"))
            .collect();
        assert_eq!(
            state, events_fold,
            "final task state differs from the committed input fold"
        );
        // Invariant 3 one last time, on a brand-new instance: the
        // changelog alone reconstructs the task exactly.
        self.job = None;
        for _ in 0..RECOVERY_BUDGET {
            match make_job(&self.cluster, &self.inj) {
                Ok(j) => {
                    self.job = Some(j);
                    break;
                }
                Err(e) if processing_crash(&e) => {
                    self.crashes += 1;
                    continue;
                }
                Err(e) => panic!("unexpected error rebuilding job: {e}"),
            }
        }
        assert!(self.job.is_some(), "final rebuild did not converge");
        self.check_restored_state();

        let final_kv_fold = self.committed_fold(KV);
        RunReport {
            seed,
            trace: self.trace,
            crashes: self.crashes,
            acked_events: self.acked_events.len(),
            final_events_fold: events_fold,
            final_kv_fold,
            injector_counts: [
                (self.inj.log.operations(), self.inj.log.failures()),
                (self.inj.cluster.operations(), self.inj.cluster.failures()),
                (self.inj.job.operations(), self.inj.job.failures()),
                (self.inj.state.operations(), self.inj.state.failures()),
            ],
            batch_site_counts: [
                site_count(&self.inj.log, "log.append-batch"),
                site_count(&self.inj.cluster, "replication.fetch-batch"),
            ],
            retention_site_counts: [
                site_count(&self.inj.log, "log.segment-drop"),
                site_count(&self.inj.log, "log.cache-evict"),
            ],
        }
    }
}

/// (operations, failures) observed at one named fault site.
fn site_count(inj: &FailureInjector, site: &str) -> (u64, u64) {
    inj.site_counts()
        .iter()
        .find(|(name, _, _)| *name == site)
        .map(|&(_, ops, fired)| (ops, fired))
        .unwrap_or((0, 0))
}

fn run_seed(seed: u64, obs: &Obs) -> RunReport {
    // CHAOS_TRACE=1 streams the op-by-op trace to stderr while
    // replaying a seed — the first tool to reach for on a failure.
    let verbose = std::env::var("CHAOS_TRACE").is_ok();
    let plan = ChaosPlan::generate(seed, PLAN_LEN);
    let mut h = Harness::new(obs.clone());
    for (i, op) in plan.ops.iter().enumerate() {
        let before = h.trace.len();
        match h.step(op) {
            Ok(()) => h.trace.push(format!("{i} {op:?} ok")),
            Err(why) => {
                h.trace.push(format!("{i} {op:?} crashed: {why}"));
                h.recover(why);
            }
        }
        if verbose {
            for line in &h.trace[before..] {
                eprintln!("[seed {seed}] {line}");
            }
        }
    }
    h.finish(seed)
}

/// Registry snapshot plus causal trace tail for the failing run —
/// printed on invariant failure so the run's counters and event history
/// survive the unwind.
fn observability_dump(obs: &Obs) -> String {
    format!(
        "registry snapshot: {}\ntrace tail: {}",
        obs.snapshot().to_json(),
        obs.tracer().tail_json(32),
    )
}

/// Runs `f` (a full seed run recording into `obs`), converting any
/// invariant failure into a panic that carries the repro command line
/// and the observability dump of the failing run.
fn check_run(seed: u64, obs: &Obs, f: impl FnOnce() -> RunReport) -> RunReport {
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(report) => report,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".to_string());
            panic!(
                "chaos invariant failed for seed {seed}: {msg}\n  \
                 reproduce with: CHAOS_SEED={seed} cargo test -q --test chaos\n{}",
                observability_dump(obs)
            );
        }
    }
}

/// Runs one seed against a fresh observability sink.
fn run_seed_checked(seed: u64) -> RunReport {
    let obs = Obs::default();
    check_run(seed, &obs, || run_seed(seed, &obs))
}

#[test]
fn chaos_seeds_hold_invariants() {
    // Replay mode: CHAOS_SEED=<n> runs exactly one seed.
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let seed: u64 = s.parse().expect("CHAOS_SEED must be a u64");
        let report = run_seed_checked(seed);
        println!(
            "seed {seed}: {} crashes, {} acked-All records, trace {} lines",
            report.crashes,
            report.acked_events,
            report.trace.len()
        );
        return;
    }
    let mut crashes = 0;
    let mut acked = 0;
    let mut fired = [0u64; 4];
    let mut batch_sites = [(0u64, 0u64); 2];
    let mut retention_sites = [(0u64, 0u64); 2];
    for seed in 0..SEEDS {
        let report = run_seed_checked(seed);
        crashes += report.crashes;
        acked += report.acked_events;
        for (i, &(_, f)) in report.injector_counts.iter().enumerate() {
            fired[i] += f;
        }
        for (i, &(o, f)) in report.batch_site_counts.iter().enumerate() {
            batch_sites[i].0 += o;
            batch_sites[i].1 += f;
        }
        for (i, &(o, f)) in report.retention_site_counts.iter().enumerate() {
            retention_sites[i].0 += o;
            retention_sites[i].1 += f;
        }
    }
    // The harness must not be vacuous: plenty of crashes, plenty of
    // acknowledged data at risk, and every layer's injector fired.
    assert!(
        crashes >= 100,
        "only {crashes} crashes across {SEEDS} seeds"
    );
    assert!(
        acked >= 500,
        "only {acked} acked-All records across {SEEDS} seeds"
    );
    for (i, name) in ["log", "cluster", "job", "state"].iter().enumerate() {
        assert!(
            fired[i] > 0,
            "the {name} injector never fired across {SEEDS} seeds"
        );
    }
    // The batch-boundary fault sites must be both exercised and
    // actually hit by armed faults — mid-batch crashes are the point of
    // `ChaosOp::ProduceBatch`, and a sweep where no injected failure
    // ever lands on a group commit would test nothing new.
    for (i, name) in ["log.append-batch", "replication.fetch-batch"]
        .iter()
        .enumerate()
    {
        let (ops, hit) = batch_sites[i];
        assert!(
            ops > 0,
            "fault site {name} never reached across {SEEDS} seeds"
        );
        assert!(
            hit > 0,
            "no armed fault ever fired at {name} across {SEEDS} seeds \
             ({ops} ops) — torn-batch crashes are untested"
        );
    }
    // Same for the segment-lifecycle sites: whole-segment drops and
    // cache evictions must both happen and both absorb armed faults —
    // otherwise `ChaosOp::EnforceRetention` / `ChaosOp::CacheSweep`
    // would be decorative.
    for (i, name) in ["log.segment-drop", "log.cache-evict"].iter().enumerate() {
        let (ops, hit) = retention_sites[i];
        assert!(
            ops > 0,
            "fault site {name} never reached across {SEEDS} seeds"
        );
        assert!(
            hit > 0,
            "no armed fault ever fired at {name} across {SEEDS} seeds \
             ({ops} ops) — segment-lifecycle crashes are untested"
        );
    }
}

#[test]
fn chaos_runs_are_deterministic_per_seed() {
    for seed in [3, 17, 41] {
        let a = run_seed_checked(seed);
        let b = run_seed_checked(seed);
        assert_eq!(
            a, b,
            "seed {seed} produced two different runs — nondeterminism breaks \
             CHAOS_SEED replay"
        );
    }
}

#[test]
fn distinct_seeds_explore_distinct_schedules() {
    let a = run_seed_checked(1);
    let b = run_seed_checked(2);
    assert_ne!(a.trace, b.trace, "seeds 1 and 2 ran identical schedules");
}

/// A forced invariant failure must surface the registry snapshot and
/// the causal trace tail of the failing run in the panic it raises.
#[test]
fn invariant_failure_carries_observability_dump() {
    let obs = Obs::default();
    // Record some real activity into the sink first, so the dump has
    // counters and events to show.
    let mut h = Harness::new(obs.clone());
    for i in 0..5 {
        h.produce(1, i, AckChoice::All).unwrap();
    }
    let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
        check_run(9999, &obs, || panic!("forced invariant failure"))
    }))
    .expect_err("check_run must re-panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload is a formatted string");
    assert!(msg.contains("forced invariant failure"), "{msg}");
    assert!(msg.contains("CHAOS_SEED=9999"), "{msg}");
    assert!(msg.contains("registry snapshot:"), "{msg}");
    assert!(msg.contains("trace tail:"), "{msg}");
    #[cfg(not(feature = "obs-off"))]
    {
        assert!(msg.contains("cluster.messages_in"), "{msg}");
        assert!(msg.contains("\"produce\""), "{msg}");
    }
}
