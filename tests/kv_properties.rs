//! Property-based crash-recovery tests for the state substrate: the WAL
//! and the page-cache model. These are the invariants the processing
//! layer's durability story leans on.

use bytes::Bytes;
use liquid::kv::{LsmConfig, LsmStore};
use liquid::sim::clock::SimClock;
use liquid::sim::pagecache::{PageCache, PageCacheConfig};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "liquid-prop-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-drop the store at an arbitrary point: a reopened store
    /// recovers exactly the acknowledged state (WAL replay + SSTs),
    /// regardless of where flushes happened in the op sequence.
    #[test]
    fn persistent_store_recovers_exact_state(
        ops in prop::collection::vec((0u8..4, 0u8..12, prop::collection::vec(any::<u8>(), 0..6)), 1..120),
    ) {
        let dir = temp_dir("lsm");
        let cfg = LsmConfig {
            memtable_bytes: 256,
            level_limit: 2,
            max_levels: 3,
            dir: Some(dir.clone()),
            ..LsmConfig::default()
        };
        let mut model = std::collections::BTreeMap::new();
        {
            let mut store = LsmStore::open(cfg.clone()).unwrap();
            for (op, key_id, value) in &ops {
                let key = format!("k{key_id:02}");
                match op {
                    0 | 1 => {
                        store.put(key.clone(), value.clone()).unwrap();
                        model.insert(key, value.clone());
                    }
                    2 => {
                        store.delete(key.clone()).unwrap();
                        model.remove(&key);
                    }
                    _ => store.flush().unwrap(),
                }
            }
            // Crash: no flush, no clean shutdown.
        }
        let mut recovered = LsmStore::open(cfg).unwrap();
        for key_id in 0u8..12 {
            let key = format!("k{key_id:02}");
            prop_assert_eq!(
                recovered.get(key.as_bytes()).map(|b| b.to_vec()),
                model.get(&key).cloned(),
                "key {} after recovery", key
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A torn WAL tail (partial final write) never corrupts recovery:
    /// the store comes back with a prefix of the acknowledged ops.
    #[test]
    fn torn_wal_tail_recovers_a_prefix(
        n_ops in 1usize..40,
        cut in 1usize..64,
    ) {
        let dir = temp_dir("torn");
        let cfg = LsmConfig {
            // Huge memtable: everything stays in the WAL (worst case).
            memtable_bytes: 1 << 30,
            dir: Some(dir.clone()),
            ..LsmConfig::default()
        };
        {
            let mut store = LsmStore::open(cfg.clone()).unwrap();
            for i in 0..n_ops {
                store.put(format!("k{i:03}"), format!("v{i}")).unwrap();
            }
        }
        // Tear the WAL: chop `cut` bytes off the end.
        let wal = dir.join("wal.log");
        let len = std::fs::metadata(&wal).unwrap().len();
        let torn_len = len.saturating_sub(cut as u64);
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(torn_len).unwrap();
        drop(f);
        let mut recovered = LsmStore::open(cfg).unwrap();
        // Recovered keys must be a dense prefix k000..k(m) with m < n.
        let live = recovered.scan_all();
        let m = live.len();
        prop_assert!(m <= n_ops);
        for i in 0..m {
            let key = format!("k{i:03}");
            prop_assert_eq!(
                recovered.get(key.as_bytes()),
                Some(Bytes::from(format!("v{i}"))),
                "prefix broken at {}", i
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Exhaustive torn-tail coverage for the WAL frame format: for any
    /// op sequence, truncating the log at *every* byte boundary of the
    /// final record's frame drops exactly that record and nothing else,
    /// repairs the file, and leaves a WAL that accepts new appends.
    #[test]
    fn wal_truncated_at_every_byte_of_final_record_drops_only_it(
        ops in prop::collection::vec(
            (
                prop::collection::vec(any::<u8>(), 0..10),
                prop::collection::vec(any::<u8>(), 0..16),
            ),
            1..12,
        ),
    ) {
        use liquid::kv::wal::{Wal, WalOp};
        let dir = temp_dir("walcut");
        let path = dir.join("wal.log");
        // Empty value ⇒ delete, so both op kinds get boundary coverage.
        let wal_ops: Vec<WalOp> = ops
            .iter()
            .map(|(k, v)| {
                if v.is_empty() {
                    WalOp::Delete(Bytes::copy_from_slice(k))
                } else {
                    WalOp::Put(Bytes::copy_from_slice(k), Bytes::copy_from_slice(v))
                }
            })
            .collect();
        let prefix_len;
        {
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            prop_assert!(replayed.is_empty());
            for op in &wal_ops[..wal_ops.len() - 1] {
                wal.append(op).unwrap();
            }
            prefix_len = wal.size_bytes();
            wal.append(wal_ops.last().unwrap()).unwrap();
            wal.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        prop_assert!(full.len() as u64 > prefix_len);
        for torn in 0..(full.len() - prefix_len as usize) {
            let cut = prefix_len as usize + torn;
            std::fs::write(&path, &full[..cut]).unwrap();
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            prop_assert_eq!(
                &replayed[..],
                &wal_ops[..wal_ops.len() - 1],
                "replay after cutting the final frame to {} bytes", torn
            );
            prop_assert_eq!(
                wal.size_bytes(),
                prefix_len,
                "torn bytes not truncated away (cut at {})", torn
            );
            // Recovery leaves a usable WAL: re-append the lost op and
            // the full sequence replays.
            wal.append(wal_ops.last().unwrap()).unwrap();
            wal.sync().unwrap();
            drop(wal);
            let (_, healed) = Wal::open(&path).unwrap();
            prop_assert_eq!(&healed[..], &wal_ops[..], "re-append after cut {}", torn);
        }
        // The intact file replays everything.
        std::fs::write(&path, &full).unwrap();
        let (_, replayed) = Wal::open(&path).unwrap();
        prop_assert_eq!(replayed, wal_ops);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Page-cache invariants under arbitrary read/write mixes:
    /// residency never exceeds capacity, page accounting balances, and
    /// re-reading a just-touched page always hits.
    #[test]
    fn page_cache_invariants(
        ops in prop::collection::vec((0u8..2, 0u64..4, 0u64..512u64), 1..200),
        capacity in 4usize..64,
    ) {
        let clock = SimClock::new(0);
        let mut cache = PageCache::new(
            PageCacheConfig {
                page_size: 4096,
                capacity_pages: capacity,
                prefetch_pages: 4,
                ..PageCacheConfig::default()
            },
            clock.shared(),
        );
        for (op, file, page) in &ops {
            let offset = page * 4096;
            if *op == 0 {
                cache.write(*file, offset, 4096);
            } else {
                let r = cache.read(*file, offset, 4096);
                prop_assert_eq!(r.pages_hit + r.pages_missed, 1);
                // Immediately re-read: must hit (it was just installed).
                let again = cache.read(*file, offset, 4096);
                prop_assert_eq!(again.pages_missed, 0);
            }
            prop_assert!(cache.resident_pages() <= capacity,
                "{} resident > capacity {}", cache.resident_pages(), capacity);
        }
        let stats = cache.stats();
        prop_assert!(stats.total_cost_ns > 0);
    }
}

#[test]
fn wal_sync_cost_scales_with_entries_not_size() {
    // Deterministic sanity companion to the property tests: recovery
    // time is proportional to the WAL's live entries; flushing resets it.
    let dir = temp_dir("walreset");
    let cfg = LsmConfig {
        memtable_bytes: 1 << 30,
        dir: Some(dir.clone()),
        ..LsmConfig::default()
    };
    {
        let mut store = LsmStore::open(cfg.clone()).unwrap();
        for i in 0..1_000 {
            store.put(format!("k{i}"), "v").unwrap();
        }
        store.flush().unwrap(); // WAL truncated; data now in an SST.
        store.put("post-flush", "x").unwrap();
    }
    let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
    assert!(
        wal_len < 100,
        "WAL should hold only the post-flush entry, has {wal_len} bytes"
    );
    let mut recovered = LsmStore::open(cfg).unwrap();
    assert_eq!(recovered.get(b"post-flush"), Some(Bytes::from_static(b"x")));
    assert_eq!(recovered.get(b"k999"), Some(Bytes::from_static(b"v")));
    std::fs::remove_dir_all(&dir).ok();
}
