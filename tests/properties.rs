//! Property-based tests over core invariants.
//!
//! The log, the compaction pass, the LSM store and the consumer-group
//! assignment all have crisp invariants; proptest drives them with
//! arbitrary operation sequences.

use bytes::Bytes;
use liquid::kv::{LsmConfig, LsmStore};
use liquid::log::{
    Log, LogConfig, ReadCacheConfig, RecordBatch, RetentionPolicy, SegmentReadCache,
};
use liquid_messaging::consumer::StartPosition;
use liquid_messaging::{
    AssignmentStrategy, BatchConfig, Cluster, ClusterConfig, Consumer, Producer, TopicConfig,
    TopicPartition,
};
use liquid_sim::clock::SimClock;
use proptest::prelude::*;

fn small_log(segment_bytes: u64, compact: bool) -> Log {
    let cfg = LogConfig {
        segment_bytes,
        index_interval_bytes: 128,
        retention: if compact {
            RetentionPolicy::Compact {
                max_age_ms: None,
                max_bytes: None,
            }
        } else {
            RetentionPolicy::KeepAll
        },
        ..LogConfig::default()
    };
    Log::open(cfg, SimClock::new(0).shared()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Appending N records yields offsets 0..N and reading from any
    /// offset k returns exactly the records k..N in order.
    #[test]
    fn log_reads_are_contiguous_and_ordered(
        values in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..200),
        segment_bytes in 64u64..2048,
    ) {
        let mut log = small_log(segment_bytes, false);
        for (i, v) in values.iter().enumerate() {
            let off = log.append(None, Bytes::copy_from_slice(v)).unwrap();
            prop_assert_eq!(off, i as u64);
        }
        let n = values.len() as u64;
        for k in [0, n / 2, n.saturating_sub(1), n] {
            let out = log.read(k, u64::MAX).unwrap();
            prop_assert_eq!(out.records.len() as u64, n - k);
            for (j, rec) in out.records.iter().enumerate() {
                prop_assert_eq!(rec.offset, k + j as u64);
                prop_assert_eq!(&rec.value[..], &values[(k as usize) + j][..]);
            }
        }
    }

    /// After compaction, (a) the latest value of every key survives,
    /// (b) no stale duplicate of a key remains in sealed segments,
    /// (c) the log-end offset is unchanged.
    #[test]
    fn compaction_preserves_latest_values(
        ops in prop::collection::vec((0u8..8, prop::collection::vec(any::<u8>(), 1..16)), 1..300),
    ) {
        let mut log = small_log(256, true);
        let mut expect = std::collections::HashMap::new();
        for (key_id, value) in &ops {
            let key = Bytes::from(format!("k{key_id}"));
            log.append(Some(key.clone()), Bytes::copy_from_slice(value)).unwrap();
            expect.insert(key, Bytes::copy_from_slice(value));
        }
        let end_before = log.next_offset();
        log.compact().unwrap();
        prop_assert_eq!(log.next_offset(), end_before);
        let records = log.read(log.start_offset(), u64::MAX).unwrap().records;
        // Latest value per key in the whole log equals expectation.
        let mut latest = std::collections::HashMap::new();
        for rec in &records {
            if let Some(k) = &rec.key {
                latest.insert(k.clone(), rec.value.clone());
            }
        }
        for (k, v) in &expect {
            prop_assert_eq!(latest.get(k), Some(v), "key {:?}", k);
        }
    }

    /// Compaction with tombstones, for any interleaving of puts and
    /// deletes: (a) after one pass every deleted key still shows its
    /// tombstone as the newest record (lagging consumers observe the
    /// deletion); (b) after two passes live keys serve exactly their
    /// latest value and deleted keys never resurrect a stale one;
    /// (c) offsets and the log end survive, and a third pass is a
    /// fixed point.
    #[test]
    fn compaction_is_exact_latest_per_key_with_tombstones(
        ops in prop::collection::vec(
            (0u8..6, prop::collection::vec(any::<u8>(), 0..12)),
            1..300,
        ),
    ) {
        let mut log = small_log(128, true);
        let mut model: std::collections::BTreeMap<Bytes, Option<Vec<u8>>> = Default::default();
        for (key_id, value) in &ops {
            let key = Bytes::from(format!("k{key_id}"));
            // An empty value is a tombstone: it deletes the key.
            log.append(Some(key.clone()), Bytes::copy_from_slice(value)).unwrap();
            model.insert(
                key,
                if value.is_empty() { None } else { Some(value.clone()) },
            );
        }
        let end_before = log.next_offset();
        let offsets_before: std::collections::BTreeSet<u64> = log
            .read(0, u64::MAX).unwrap().records.iter().map(|r| r.offset).collect();
        // Newest readable record per key: (value, is_tombstone).
        let latest_view = |log: &Log| {
            let mut latest = std::collections::BTreeMap::new();
            for rec in log.read(log.start_offset(), u64::MAX).unwrap().records {
                if let Some(k) = rec.key.clone() {
                    latest.insert(k, (rec.value.to_vec(), rec.is_tombstone()));
                }
            }
            latest
        };

        log.compact().unwrap();
        let after_first = latest_view(&log);
        for (key, state) in &model {
            match state {
                Some(v) => {
                    let (got, tomb) = &after_first[key];
                    prop_assert!(!tomb, "live key {:?} shows a tombstone", key);
                    prop_assert_eq!(got, v, "stale value for {:?} after first pass", key);
                }
                None => {
                    let (_, tomb) = after_first
                        .get(key)
                        .unwrap_or_else(|| panic!("tombstone for {key:?} dropped too early"));
                    prop_assert!(tomb, "deleted key {:?} resurrected after first pass", key);
                }
            }
        }

        log.compact().unwrap();
        prop_assert_eq!(log.next_offset(), end_before, "log end moved");
        let offsets_after: std::collections::BTreeSet<u64> = log
            .read(log.start_offset(), u64::MAX).unwrap().records.iter().map(|r| r.offset).collect();
        prop_assert!(
            offsets_after.is_subset(&offsets_before),
            "compaction invented offsets"
        );
        let after_second = latest_view(&log);
        for (key, state) in &model {
            match state {
                Some(v) => {
                    let (got, tomb) = &after_second[key];
                    prop_assert!(!tomb);
                    prop_assert_eq!(got, v, "stale value for {:?} after second pass", key);
                }
                None => {
                    // The tombstone may linger (active segment is never
                    // compacted) but a stale value must never resurface.
                    if let Some((_, tomb)) = after_second.get(key) {
                        prop_assert!(tomb, "deleted key {:?} resurrected", key);
                    }
                }
            }
        }

        // Once tombstone dropping has stabilised, compaction is a
        // fixed point.
        let stats = log.compact().unwrap();
        prop_assert_eq!(stats.records_before, stats.records_after);
        prop_assert_eq!(stats.tombstones_removed, 0);
    }

    /// The LSM store behaves exactly like a BTreeMap under an arbitrary
    /// interleaving of puts, deletes, flushes and reopen-from-scratch
    /// scans.
    #[test]
    fn lsm_store_matches_model(
        ops in prop::collection::vec((0u8..4, 0u8..16, prop::collection::vec(any::<u8>(), 0..8)), 1..250),
    ) {
        let mut store = LsmStore::open(LsmConfig {
            memtable_bytes: 256,
            level_limit: 2,
            max_levels: 3,
            ..LsmConfig::default()
        }).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (op, key_id, value) in &ops {
            let key = format!("key-{key_id:02}");
            match op {
                0 | 1 => {
                    store.put(key.clone(), value.clone()).unwrap();
                    model.insert(key, value.clone());
                }
                2 => {
                    store.delete(key.clone()).unwrap();
                    model.remove(&key);
                }
                _ => store.flush().unwrap(),
            }
        }
        // Point reads agree.
        for key_id in 0u8..16 {
            let key = format!("key-{key_id:02}");
            let got = store.get(key.as_bytes()).map(|b| b.to_vec());
            prop_assert_eq!(got, model.get(&key).cloned(), "key {}", key);
        }
        // Full scan agrees (order and content).
        let scanned: Vec<(Vec<u8>, Vec<u8>)> = store
            .scan_all()
            .into_iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .map(|(k, v)| (k.as_bytes().to_vec(), v.clone()))
            .collect();
        prop_assert_eq!(scanned, expected);
    }

    /// Consumer-group assignment is a partition of the partition set:
    /// complete (every partition assigned) and disjoint (no partition
    /// assigned twice), for any member count and strategy.
    #[test]
    fn group_assignment_is_a_partition(
        partitions in 1u32..16,
        members in 1usize..8,
        round_robin in any::<bool>(),
    ) {
        let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        cluster.create_topic("t", TopicConfig::with_partitions(partitions)).unwrap();
        let strategy = if round_robin {
            AssignmentStrategy::RoundRobin
        } else {
            AssignmentStrategy::Range
        };
        for m in 0..members {
            cluster.join_group("g", &format!("m{m}"), &["t"], strategy).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut total = 0;
        for m in 0..members {
            let a = cluster.group_assignment("g", &format!("m{m}")).unwrap();
            for tp in &a.partitions {
                prop_assert!(seen.insert(tp.clone()), "duplicate assignment {}", tp);
                total += 1;
            }
        }
        prop_assert_eq!(total, partitions);
        // Balance: no member holds more than ceil(p/m)+... for range the
        // imbalance is at most 1.
        let max = (0..members)
            .map(|m| cluster.group_assignment("g", &format!("m{m}")).unwrap().partitions.len())
            .max()
            .unwrap();
        let min = (0..members)
            .map(|m| cluster.group_assignment("g", &format!("m{m}")).unwrap().partitions.len())
            .min()
            .unwrap();
        prop_assert!(max - min <= 1, "imbalanced: max {max} min {min}");
    }

    /// Batch-semantics: for an arbitrary message stream, producing
    /// through batch accumulation (`buffer`/`flush`, group-commit
    /// appends) is observationally identical to the unbatched seed path
    /// (`send`, one append per record) — per partition, the same
    /// offsets, the same ordering, the same key and payload bytes.
    #[test]
    fn batched_produce_equals_unbatched_seed_path(
        stream in prop::collection::vec(
            // (key id, value bytes); key id 8 means keyless.
            (0u8..9, prop::collection::vec(any::<u8>(), 0..32)),
            1..120,
        ),
        max_records in 1usize..24,
        max_bytes in 16usize..512,
    ) {
        let build = || {
            let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
            c.create_topic("t", TopicConfig::with_partitions(2)).unwrap();
            c
        };
        let seed_cluster = build();
        let batch_cluster = build();
        let seed = Producer::new(&seed_cluster, "t").unwrap();
        let batched = Producer::new(&batch_cluster, "t").unwrap().with_batching(BatchConfig {
            max_records,
            max_bytes,
            linger_ms: 0,
        });
        for (key_id, value) in &stream {
            let key = (*key_id < 8).then(|| Bytes::from(format!("k{key_id}")));
            let value = Bytes::copy_from_slice(value);
            seed.send(key.clone(), value.clone()).unwrap();
            batched.buffer(key, value).unwrap();
        }
        batched.flush().unwrap();
        prop_assert_eq!(batched.pending_records(), 0);
        for p in 0..2 {
            let tp = TopicPartition::new("t", p);
            let a = seed_cluster.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
            let b = batch_cluster.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
            prop_assert_eq!(a.len(), b.len(), "partition {} length", p);
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.offset, y.offset);
                prop_assert_eq!(&x.key, &y.key);
                prop_assert_eq!(&x.value, &y.value);
                prop_assert_eq!(x.timestamp, y.timestamp);
            }
            prop_assert_eq!(
                seed_cluster.latest_offset(&tp).unwrap(),
                batch_cluster.latest_offset(&tp).unwrap(),
                "high watermark diverged on partition {}", p
            );
        }
    }

    /// Splitting and merging batches at arbitrary boundaries is
    /// observationally a no-op: a log fed the two halves, a log fed the
    /// re-merged batch, and a log fed each record singly all end up
    /// byte-identical (offsets, keys, values, timestamps).
    #[test]
    fn batch_split_and_merge_boundaries_are_invisible(
        records in prop::collection::vec(
            (0u8..5, prop::collection::vec(any::<u8>(), 0..24)),
            1..80,
        ),
        mid_pct in 0usize..=100,
    ) {
        let pairs: Vec<(Option<Bytes>, Bytes)> = records
            .iter()
            .map(|(key_id, value)| {
                (
                    (*key_id < 4).then(|| Bytes::from(format!("k{key_id}"))),
                    Bytes::copy_from_slice(value),
                )
            })
            .collect();
        let whole = RecordBatch::from_pairs(pairs.clone(), 7);
        let mid = mid_pct * whole.len() / 100;
        let (head, tail) = whole.clone().split_at(mid);
        let merged = head.clone().merge(tail.clone());
        prop_assert_eq!(&merged, &whole, "split({}) then merge is not identity", mid);

        let mut via_halves = small_log(512, false);
        via_halves.append_record_batch(head).unwrap();
        via_halves.append_record_batch(tail).unwrap();
        let mut via_whole = small_log(512, false);
        via_whole.append_record_batch(whole).unwrap();
        let mut via_singles = small_log(512, false);
        for (key, value) in pairs {
            via_singles.append_with_timestamp(key, value, 7).unwrap();
        }
        let dump = |log: &Log| {
            log.read(0, u64::MAX)
                .unwrap()
                .records
                .into_iter()
                .map(|r| (r.offset, r.key, r.value, r.timestamp))
                .collect::<Vec<_>>()
        };
        let whole_dump = dump(&via_whole);
        prop_assert_eq!(dump(&via_halves), whole_dump.clone());
        prop_assert_eq!(dump(&via_singles), whole_dump);
    }

    /// Full round trip — accumulate → group-commit append → batch fetch
    /// → lazy delivery — returns exactly the input stream: dense
    /// offsets, input order, identical bytes, and an exact end_offset
    /// on every delivered batch.
    #[test]
    fn batch_round_trip_preserves_stream(
        values in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..150),
        max_records in 1usize..32,
    ) {
        let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        cluster.create_topic("t", TopicConfig::with_partitions(1)).unwrap();
        let producer = Producer::new(&cluster, "t").unwrap().with_batching(BatchConfig {
            max_records,
            max_bytes: usize::MAX,
            linger_ms: 0,
        });
        for v in &values {
            producer.buffer(None, Bytes::copy_from_slice(v)).unwrap();
        }
        producer.flush().unwrap();
        let tp = TopicPartition::new("t", 0);
        let consumer = Consumer::new(&cluster, "c");
        consumer.assign(tp.clone(), StartPosition::Earliest).unwrap();
        let mut delivered: Vec<(u64, Vec<u8>)> = Vec::new();
        loop {
            let polled = consumer.poll_batches().unwrap();
            if polled.is_empty() {
                break;
            }
            for (_, batch) in polled {
                prop_assert_eq!(
                    batch.end_offset(),
                    batch.records().last().unwrap().offset + 1,
                    "end_offset must be one past the last record"
                );
                for m in batch.messages() {
                    delivered.push((m.offset, m.value.to_vec()));
                }
            }
        }
        prop_assert_eq!(delivered.len(), values.len());
        for (i, ((offset, value), expect)) in delivered.iter().zip(values.iter()).enumerate() {
            prop_assert_eq!(*offset, i as u64, "offsets must be dense");
            prop_assert_eq!(value, expect, "payload {} diverged", i);
        }
        prop_assert_eq!(consumer.position(&tp), Some(values.len() as u64));
        prop_assert_eq!(consumer.lag(&tp).unwrap_or(0), 0);
    }

    /// Offset-for-timestamp returns the first record with ts >= target
    /// for arbitrary non-decreasing timestamp sequences.
    #[test]
    fn timestamp_lookup_finds_first_at_or_after(
        gaps in prop::collection::vec(0u64..50, 1..100),
        probe_idx in 0usize..100,
    ) {
        let mut log = small_log(256, false);
        let mut ts = 0;
        let mut stamps = Vec::new();
        for g in &gaps {
            ts += g;
            stamps.push(ts);
            log.append_with_timestamp(None, Bytes::from_static(b"v"), ts).unwrap();
        }
        let probe = stamps[probe_idx % stamps.len()];
        let offset = log.offset_for_timestamp(probe).unwrap();
        let expected = stamps.iter().position(|&s| s >= probe).map(|i| i as u64);
        prop_assert_eq!(offset, expected);
        // Probing past the end yields None.
        prop_assert_eq!(log.offset_for_timestamp(ts + 1).unwrap(), None);
    }

    /// Whole-segment retention commutes with reading: enforcing the
    /// policy and then reading yields exactly the records a
    /// pre-retention read contains once filtered to the new start
    /// offset — drops never rewrite, reorder or truncate survivors,
    /// with or without the segment-read cache in the path.
    #[test]
    fn retention_then_read_equals_read_then_filter(
        segment_bytes in 64u64..512,
        n in 1usize..160,
        max_bytes in 256u64..4096,
        by_age in any::<bool>(),
        with_cache in any::<bool>(),
    ) {
        let clock = SimClock::new(0);
        let retention = if by_age {
            RetentionPolicy::DropByAge { max_age_ms: 5_000, max_bytes: Some(max_bytes) }
        } else {
            RetentionPolicy::DropByBytes { max_bytes }
        };
        let cfg = LogConfig {
            segment_bytes,
            index_interval_bytes: 128,
            retention,
            ..LogConfig::default()
        };
        let mut log = Log::open(cfg, clock.shared()).unwrap();
        if with_cache {
            let cache = SegmentReadCache::new(ReadCacheConfig {
                capacity_bytes: 2_048,
                shards: 2,
                obs: liquid_obs::Obs::default(),
            });
            log.attach_read_cache(cache, 1);
        }
        for i in 0..n {
            log.append(
                Some(Bytes::from(format!("k{}", i % 7))),
                Bytes::from(format!("value-{i:05}")),
            )
            .unwrap();
            clock.advance(100);
        }
        clock.advance(3_000);
        let before = log.read(0, u64::MAX).unwrap().records;
        log.enforce_retention().unwrap();
        let start = log.start_offset();
        let after = log.read(start, u64::MAX).unwrap().records;
        let filtered: Vec<_> = before.into_iter().filter(|r| r.offset >= start).collect();
        prop_assert_eq!(after.len(), filtered.len());
        for (a, f) in after.iter().zip(&filtered) {
            prop_assert_eq!(a.offset, f.offset);
            prop_assert_eq!(&a.key, &f.key);
            prop_assert_eq!(&a.value, &f.value);
            prop_assert_eq!(a.timestamp, f.timestamp);
        }
    }
}

#[test]
fn replication_invariant_followers_prefix_of_leader() {
    // Deterministic but adversarial: after arbitrary kill/restart and
    // tick sequences, every follower's log is a prefix of the leader's
    // committed log.
    let clock = SimClock::new(0);
    let cluster = Cluster::new(ClusterConfig::with_brokers(3), clock.shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(1).replication(3))
        .unwrap();
    let tp = liquid_messaging::TopicPartition::new("t", 0);
    let mut rng_state = 88172645463325252u64;
    let mut rand = || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let mut down: Vec<u32> = Vec::new();
    for i in 0..500 {
        match rand() % 10 {
            0 if down.len() < 2 => {
                let v = (rand() % 3) as u32;
                if !down.contains(&v) {
                    cluster.kill_broker(v).unwrap();
                    down.push(v);
                }
            }
            1 => {
                if let Some(v) = down.pop() {
                    cluster.restart_broker(v).unwrap();
                }
            }
            2 | 3 => {
                cluster.replicate_tick().unwrap();
            }
            _ => {
                let _ = cluster.produce_to(
                    &tp,
                    None,
                    Bytes::from(format!("m{i}")),
                    liquid_messaging::AckLevel::Leader,
                );
            }
        }
        // Invariant: high watermark never exceeds the leader's log end.
        if let Ok(Some(_)) = cluster.leader(&tp) {
            let hw = cluster.latest_offset(&tp).unwrap();
            let end = cluster.log_end_offset(&tp).unwrap();
            assert!(hw <= end, "hw {hw} > log end {end} at step {i}");
        }
    }
    // Drain: everyone back up, fully replicated.
    for v in down {
        cluster.restart_broker(v).unwrap();
    }
    cluster.replicate_tick().unwrap();
    let isr = cluster.isr(&tp).unwrap();
    assert_eq!(isr.len(), 3, "all replicas back in sync: {isr:?}");
    // Committed data is readable from start to high watermark with
    // contiguous offsets.
    let msgs = cluster
        .fetch_batch(&tp, 0, u64::MAX)
        .unwrap()
        .into_messages();
    for (i, m) in msgs.iter().enumerate() {
        assert_eq!(m.offset, i as u64);
    }
}
