//! Cross-layer observability integration: one registry and one tracer
//! span the whole stack (log segments, LSM state stores, the cluster,
//! and jobs), so a single snapshot shows a workload's footprint at
//! every layer and a span minted at produce is visible at fetch and at
//! task delivery.
#![cfg(not(feature = "obs-off"))]

use liquid::prelude::*;
use liquid_messaging::{Cluster, ClusterConfig, TopicConfig};
use liquid_obs::{Obs, Snapshot};

fn b(s: &str) -> Bytes {
    Bytes::from(s.to_string())
}

fn stack(obs: &Obs) -> Cluster {
    let config = ClusterConfig::builder()
        .brokers(3)
        .replication(2)
        .obs(obs.clone())
        .build()
        .expect("valid cluster config");
    let tc = TopicConfig::builder()
        .partitions(2)
        .replication(2)
        .build_for(&config)
        .expect("valid topic config");
    let cluster = Cluster::new(config, SimClock::new(0).shared());
    cluster.create_topic("in", tc).unwrap();
    cluster
        .create_topic("out", TopicConfig::with_partitions(2))
        .unwrap();
    cluster
}

fn run_counting_job(cluster: &Cluster) -> Job {
    let mut job = Job::new(cluster, JobConfig::new("obs-e2e", &["in"]), |_| {
        Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
            ctx.store().add_counter(b"seen", 1)?;
            ctx.send("out", m.key.clone(), m.value.clone())?;
            Ok(())
        }))
    })
    .unwrap();
    job.run_until_idle(10).unwrap();
    job.checkpoint().unwrap();
    job
}

/// A span minted at `produce_to` is the same id the consumer-side fetch
/// reports and the same id the task sees at delivery.
#[test]
fn span_propagates_from_produce_through_fetch_to_task() {
    let obs = Obs::default();
    let cluster = stack(&obs);
    let tp = TopicPartition::new("in", 0);
    for i in 0..4 {
        cluster
            .produce_to(&tp, Some(b("k")), b(&format!("v{i}")), AckLevel::All)
            .unwrap();
    }
    let _job = run_counting_job(&cluster);
    let events = obs.tracer().tail(1024);
    let spans_of = |kind: &str| -> Vec<u64> {
        events
            .iter()
            .filter(|e| e.kind == kind && e.site == "in-0")
            .map(|e| e.span)
            .collect()
    };
    let produced = spans_of("produce");
    assert_eq!(produced.len(), 4, "one produce event per record");
    assert!(produced.iter().all(|&s| s != 0), "spans are nonzero");
    assert_eq!(
        produced,
        spans_of("fetch"),
        "fetch reports the span minted at produce"
    );
    assert_eq!(
        produced,
        spans_of("task.deliver"),
        "the task sees the span minted at produce"
    );
}

/// Every layer's instruments land in the one registry the cluster was
/// built with: log appends, kv state-store writes, cluster produce
/// counters, and job round counters are all visible in one snapshot.
#[test]
fn one_snapshot_spans_all_layers() {
    let obs = Obs::default();
    let cluster = stack(&obs);
    let tp = TopicPartition::new("in", 0);
    for i in 0..10 {
        cluster
            .produce_to(&tp, Some(b(&format!("k{i}"))), b("v"), AckLevel::All)
            .unwrap();
    }
    let job = run_counting_job(&cluster);
    let snap = job.snapshot();
    assert!(snap.counter("log.append") > 0, "log layer instrumented");
    assert!(
        snap.counter("kv.wal-append") > 0,
        "state-store layer instrumented"
    );
    // 10 input records + 10 task outputs + 10 changelog puts.
    assert_eq!(snap.counter("cluster.messages_in"), 30);
    assert!(snap.counter("job.rounds") > 0, "job layer instrumented");
    assert_eq!(snap.counter("job.messages"), 10);
    assert!(snap.counter("offsets.commit") > 0, "checkpoint committed");
    assert_eq!(
        snap.gauge("partition.high_watermark{tp=in-0}"),
        Some(10),
        "per-partition gauges carry labels"
    );
}

/// The snapshot of a real workload round-trips through its JSON form
/// without losing a counter, gauge, or histogram summary.
#[test]
fn workload_snapshot_round_trips_through_json() {
    let obs = Obs::default();
    let cluster = stack(&obs);
    let tp = TopicPartition::new("in", 1);
    for i in 0..25 {
        cluster
            .produce_to(
                &tp,
                Some(b("k")),
                b(&format!("value-{i}")),
                AckLevel::Leader,
            )
            .unwrap();
    }
    cluster.replicate_tick().unwrap();
    let snap = cluster.snapshot();
    assert!(!snap.counters.is_empty());
    assert!(!snap.histograms.is_empty(), "log.append.bytes recorded");
    let text = snap.to_json();
    let back = Snapshot::from_json(&text).expect("snapshot JSON parses");
    assert_eq!(snap, back, "JSON round-trip is lossless");
}

/// Spans are minted per *record*, not per batch: one group-committed
/// batch yields a distinct span id for every record it carries, and
/// `fetch_batch` reports exactly the spans minted at produce, in order,
/// both in the tracer and on the delivered [`MessageBatch`] itself.
#[test]
fn batch_produce_mints_distinct_spans_visible_at_batch_fetch() {
    use std::collections::BTreeSet;

    let obs = Obs::default();
    let cluster = stack(&obs);
    let tp = TopicPartition::new("in", 0);
    let mut builder = RecordBatch::builder();
    for i in 0..5 {
        builder.push(Some(b"k"), format!("v{i}").as_bytes(), 0);
    }
    cluster
        .produce_batch(&tp, builder.build(), AckLevel::All, None)
        .unwrap();
    let batch = cluster.fetch_batch(&tp, 0, u64::MAX).unwrap();
    assert_eq!(batch.len(), 5);
    let events = obs.tracer().tail(1024);
    let spans_of = |kind: &str| -> Vec<u64> {
        events
            .iter()
            .filter(|e| e.kind == kind && e.site == "in-0")
            .map(|e| e.span)
            .collect()
    };
    let produced = spans_of("produce");
    assert_eq!(
        produced.len(),
        5,
        "one produce event per record, not per batch"
    );
    let unique: BTreeSet<u64> = produced.iter().copied().collect();
    assert_eq!(
        unique.len(),
        5,
        "every record in a batch gets its own span id"
    );
    assert!(produced.iter().all(|&s| s != 0), "spans are nonzero");
    assert_eq!(
        produced,
        spans_of("fetch"),
        "fetch_batch reports the per-record spans minted at produce"
    );
    let delivered: Vec<u64> = (0..batch.len()).map(|i| batch.span_at(i)).collect();
    assert_eq!(
        delivered, produced,
        "the MessageBatch carries each record's produce span"
    );
}

/// Regression: consumer position advances by *offset*, not by record
/// count. After compaction leaves holes in the offset space, a batch
/// poll must still drive both `Consumer::lag` and the batch-aware
/// `consumer.lag{tp=..}` gauge to exactly zero — the old per-record
/// accounting over-counted lag by the width of every hole.
#[test]
fn batch_poll_keeps_lag_exact_across_compaction_holes() {
    let obs = Obs::default();
    let cluster = stack(&obs);
    // Tiny segments so sealed segments exist for the compactor; three
    // keys overwritten repeatedly so it actually drops records.
    let tc = TopicConfig::with_partitions(1)
        .compacted()
        .segment_bytes(64);
    cluster.create_topic("cmp", tc).unwrap();
    let tp = TopicPartition::new("cmp", 0);
    for i in 0..24 {
        cluster
            .produce_to(
                &tp,
                Some(b(&format!("k{}", i % 3))),
                b(&format!("v{i}")),
                AckLevel::All,
            )
            .unwrap();
    }
    let stats = cluster.compact_topic("cmp").unwrap();
    assert!(
        stats.records_after < stats.records_before,
        "compaction must drop superseded records to create offset holes: {stats:?}"
    );
    let consumer = Consumer::new(&cluster, "c-batch");
    consumer
        .assign(tp.clone(), StartPosition::Earliest)
        .unwrap();
    let mut records = 0usize;
    loop {
        let batches = consumer.poll_batches().unwrap();
        if batches.is_empty() {
            break;
        }
        for (_, batch) in &batches {
            records += batch.len();
        }
    }
    assert!(records < 24, "the poll crossed at least one hole");
    assert_eq!(
        consumer.lag(&tp),
        Some(0),
        "offset-granular advancement keeps lag exact across holes"
    );
    assert_eq!(
        obs.snapshot().gauge("consumer.lag{tp=cmp-0}"),
        Some(0),
        "the batch-aware lag gauge lands on zero too"
    );
}

/// `Consumer::lag` is derived from the registry's per-partition
/// high-watermark gauge and tracks the distance to it.
#[test]
fn consumer_lag_reads_registry_gauges() {
    let obs = Obs::default();
    let cluster = stack(&obs);
    let tp = TopicPartition::new("in", 0);
    for _ in 0..6 {
        cluster
            .produce_to(&tp, None, b("x"), AckLevel::All)
            .unwrap();
    }
    let consumer = Consumer::new(&cluster, "c0");
    consumer
        .assign(tp.clone(), StartPosition::Earliest)
        .unwrap();
    assert_eq!(consumer.lag(&tp), Some(6), "unread backlog");
    while !consumer.poll_batches().unwrap().is_empty() {}
    assert_eq!(consumer.lag(&tp), Some(0), "caught up");
}
