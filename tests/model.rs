//! liquid-check model tests: exhaustive small-configuration
//! exploration of the §4.3 concurrency scenarios.
//!
//! Each test hands a scenario closure to [`liquid_sim::sched::check`],
//! which runs it under the deterministic model-checking scheduler:
//! every ranked-lock acquire/release, fault-injection tick, channel
//! hand-off and [`Shared`] cell access is a schedule point, and the
//! DFS explorer (sleep-set partial-order reduction) enumerates every
//! distinct interleaving. A failing interleaving panics with a
//! `CHECK_SCENARIO=.. CHECK_SCHEDULE=..` line that replays the exact
//! schedule byte-for-byte.
//!
//! The configurations here are deliberately tiny (1–2 brokers, 1–2
//! messages): the point is *exhaustiveness*, not scale. The env-gated
//! `sampled_large_config_*` test covers the other end with a
//! pinned-seed random sweep.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use bytes::Bytes;
use liquid_log::{RecordBatch, RetentionPolicy};
use liquid_messaging::{
    AckLevel, AssignmentStrategy, Cluster, ClusterConfig, Message, MessagingError, TopicConfig,
    TopicPartition,
};
use liquid_processing::{FnTask, Job, JobConfig, StreamTask, TaskContext};
use liquid_sim::clock::SimClock;
use liquid_sim::sched::{self, check, Config, Report, Shared};
use liquid_sim::thread;

/// One-broker cluster with a single-partition topic `t`.
fn tiny_cluster() -> Arc<Cluster> {
    let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(1))
        .unwrap();
    Arc::new(cluster)
}

fn assert_exhaustive(report: &Report, min_interleavings: usize) {
    println!(
        "liquid-check[{}]: {} interleaving(s), {} pruned, complete={}",
        report.scenario, report.interleavings, report.pruned, report.complete
    );
    assert!(
        report.complete,
        "{}: DFS must exhaust the space (got {} interleavings, {} pruned)",
        report.scenario, report.interleavings, report.pruned
    );
    assert!(
        report.interleavings >= min_interleavings,
        "{}: expected at least {min_interleavings} distinct interleavings, saw {}",
        report.scenario,
        report.interleavings
    );
}

// ---------------------------------------------------------------------------
// Scenario 1: concurrent producers on one partition
// ---------------------------------------------------------------------------

/// Two producers race onto the same partition. In *every* interleaving
/// the broker must hand out dense, unique offsets and advance the high
/// watermark to cover both records (acks=Leader on a single-replica
/// partition commits immediately).
#[test]
fn model_concurrent_producers_one_partition() {
    let report = check("producers.one-partition", Config::default(), || {
        let cluster = tiny_cluster();
        let tp = TopicPartition::new("t", 0);
        let a = {
            let c = cluster.clone();
            thread::spawn_named("producer-a".into(), move || {
                c.produce_to(
                    &TopicPartition::new("t", 0),
                    None,
                    Bytes::from_static(b"a"),
                    AckLevel::Leader,
                )
                .unwrap()
            })
        };
        let b = {
            let c = cluster.clone();
            thread::spawn_named("producer-b".into(), move || {
                c.produce_to(
                    &TopicPartition::new("t", 0),
                    None,
                    Bytes::from_static(b"b"),
                    AckLevel::Leader,
                )
                .unwrap()
            })
        };
        let offsets: BTreeSet<u64> = [a.join(), b.join()].into_iter().collect();
        assert_eq!(
            offsets,
            BTreeSet::from([0, 1]),
            "offsets must be unique and dense"
        );
        assert_eq!(cluster.log_end_offset(&tp).unwrap(), 2);
        assert_eq!(
            cluster.latest_offset(&tp).unwrap(),
            2,
            "high watermark covers both acked records"
        );
        assert_eq!(
            cluster
                .fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .len(),
            2
        );
    });
    assert_exhaustive(&report, 2);
}

// ---------------------------------------------------------------------------
// Scenario 1b: concurrent instrument registration and updates
// ---------------------------------------------------------------------------

/// Two threads race to register the *same* named counter and bump it.
/// The registry's internals are plain std atomics (invisible to the
/// scheduler), so a lockdep-ranked turnstile mutex splits each writer
/// into modeled segments the DFS can genuinely reorder: registration
/// happens inside the critical section of one writer but outside the
/// other's, covering register-then-register and register-while-updating
/// orders. In every interleaving both writers must land on one shared
/// cell — no lost update, no duplicate registration.
#[cfg(not(feature = "obs-off"))]
#[test]
fn model_registry_concurrent_registration() {
    use liquid_obs::Obs;
    use liquid_sim::lockdep::Mutex;
    let report = check("obs.registry-races", Config::default(), || {
        let obs = Obs::default();
        let turnstile = Arc::new(Mutex::new("job.metrics", ()));
        let a = {
            let o = obs.clone();
            let t = turnstile.clone();
            thread::spawn_named("writer-a".into(), move || {
                let c = o.registry().counter("race.hits");
                let _g = t.lock();
                c.add(2);
                o.registry().gauge("race.level").set_max(5);
            })
        };
        let b = {
            let o = obs.clone();
            let t = turnstile.clone();
            thread::spawn_named("writer-b".into(), move || {
                let _g = t.lock();
                let c = o.registry().counter("race.hits");
                c.add(3);
                o.registry().gauge("race.level").set_max(7);
            })
        };
        a.join();
        b.join();
        let snap = obs.snapshot();
        assert_eq!(
            snap.counter("race.hits"),
            5,
            "concurrent adds on one named counter must not lose updates"
        );
        assert_eq!(
            snap.gauge("race.level"),
            Some(7),
            "set_max converges to the maximum in every interleaving"
        );
    });
    assert_exhaustive(&report, 2);
}

// ---------------------------------------------------------------------------
// Scenario 2: consumer-group rebalance vs. offset commit
// ---------------------------------------------------------------------------

/// A second member joins (forcing a rebalance) while the first member
/// commits an offset. Whatever the order: the commit survives, the
/// generation advances, and the rebalanced assignment covers every
/// partition exactly once.
#[test]
fn model_rebalance_vs_offset_commit() {
    let report = check("group.rebalance-vs-commit", Config::default(), || {
        let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        cluster
            .create_topic("t", TopicConfig::with_partitions(2))
            .unwrap();
        let cluster = Arc::new(cluster);
        cluster
            .join_group("g", "m1", &["t"], AssignmentStrategy::Range)
            .unwrap();
        let gen0 = cluster.group_generation("g").unwrap();
        let committer = {
            let c = cluster.clone();
            thread::spawn_named("commit".into(), move || {
                // A live consumer heartbeats between poll and commit —
                // that is what makes this race genuine: the heartbeat
                // contends on group state with the joiner's rebalance,
                // while the commit itself goes to the offset store.
                c.heartbeat_group("g", "m1").unwrap();
                c.offsets()
                    .commit("g", &TopicPartition::new("t", 0), 1, BTreeMap::new())
                    .unwrap();
            })
        };
        let joiner = {
            let c = cluster.clone();
            thread::spawn_named("rebalance".into(), move || {
                c.join_group("g", "m2", &["t"], AssignmentStrategy::Range)
                    .unwrap();
            })
        };
        committer.join();
        joiner.join();
        assert_eq!(
            cluster
                .offsets()
                .fetch_offset("g", &TopicPartition::new("t", 0)),
            Some(1),
            "the commit survives the rebalance"
        );
        assert!(
            cluster.group_generation("g").unwrap() > gen0,
            "joining bumps the generation"
        );
        let mut covered = BTreeSet::new();
        for m in ["m1", "m2"] {
            for tp in cluster.group_assignment("g", m).unwrap().partitions {
                assert!(covered.insert(tp.clone()), "{tp} assigned twice");
            }
        }
        assert_eq!(covered.len(), 2, "both partitions assigned");
    });
    assert_exhaustive(&report, 2);
}

// ---------------------------------------------------------------------------
// Scenario 3: leader election vs. catch_up
// ---------------------------------------------------------------------------

/// The leader dies while a replication tick is in flight. With acks=All
/// the surviving follower already holds the record, so in every
/// interleaving: the high watermark is monotone, a new leader exists
/// and is an ISR member, and the acked record stays readable.
#[test]
fn model_leader_election_vs_catch_up() {
    let report = check("cluster.election-vs-catchup", Config::default(), || {
        let cluster = Cluster::new(ClusterConfig::with_brokers(2), SimClock::new(0).shared());
        cluster
            .create_topic("t", TopicConfig::with_partitions(1).replication(2))
            .unwrap();
        let cluster = Arc::new(cluster);
        let tp = TopicPartition::new("t", 0);
        cluster
            .produce_to(&tp, None, Bytes::from_static(b"acked"), AckLevel::All)
            .unwrap();
        let hw0 = cluster.latest_offset(&tp).unwrap();
        assert_eq!(hw0, 1);
        let leader = cluster.leader(&tp).unwrap().unwrap();
        let killer = {
            let c = cluster.clone();
            thread::spawn_named("kill-leader".into(), move || {
                c.kill_broker(leader).unwrap();
            })
        };
        let ticker = {
            let c = cluster.clone();
            thread::spawn_named("replicate".into(), move || {
                c.replicate_tick().unwrap();
            })
        };
        killer.join();
        ticker.join();
        assert!(
            cluster.latest_offset(&tp).unwrap() >= hw0,
            "high watermark is monotone across failover"
        );
        let new_leader = cluster
            .leader(&tp)
            .unwrap()
            .expect("a caught-up ISR member takes over");
        assert_ne!(new_leader, leader, "the dead broker cannot lead");
        assert!(
            cluster.isr(&tp).unwrap().contains(&new_leader),
            "the leader is always an ISR member"
        );
        assert_eq!(
            cluster
                .fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .len(),
            1,
            "acks=All record survives losing the leader"
        );
    });
    assert_exhaustive(&report, 2);
}

// ---------------------------------------------------------------------------
// Scenario 3b: batch group commit vs. leader kill
// ---------------------------------------------------------------------------

/// Two batch producers race their group commits against a leader kill.
/// In every interleaving a batch is all-or-nothing: an acknowledged
/// batch (acks=All) occupies a contiguous offset range below the high
/// watermark and survives the failover whole; a rejected produce leaves
/// no partial batch behind; and the two batches never interleave their
/// records (the group commit holds the partition for the whole batch).
/// Failures replay via the printed `CHECK_SCHEDULE=..` line, and the
/// vector-clock detector verifies the commit path itself is race-free.
#[test]
fn model_batch_group_commit_vs_leader_kill() {
    let report = check(
        "cluster.batch-commit-vs-leader-kill",
        Config::default(),
        || {
            let cluster = Cluster::new(ClusterConfig::with_brokers(2), SimClock::new(0).shared());
            cluster
                .create_topic("t", TopicConfig::with_partitions(1).replication(2))
                .unwrap();
            let cluster = Arc::new(cluster);
            let tp = TopicPartition::new("t", 0);
            let leader = cluster.leader(&tp).unwrap().unwrap();
            let spawn_producer = |tag: &'static str| {
                let c = cluster.clone();
                thread::spawn_named(format!("batch-{tag}"), move || {
                    let mut b = RecordBatch::builder();
                    b.push(None, format!("{tag}0").as_bytes(), 0);
                    b.push(None, format!("{tag}1").as_bytes(), 0);
                    match c.produce_batch(
                        &TopicPartition::new("t", 0),
                        b.build(),
                        AckLevel::All,
                        None,
                    ) {
                        Ok(base) => Some(base),
                        // Mid-failover: the batch is rejected whole.
                        Err(MessagingError::PartitionUnavailable(_)) => None,
                        Err(e) => panic!("unexpected produce_batch error: {e}"),
                    }
                })
            };
            let a = spawn_producer("a");
            let b = spawn_producer("b");
            let killer = {
                let c = cluster.clone();
                thread::spawn_named("kill-leader".into(), move || {
                    c.kill_broker(leader).unwrap();
                })
            };
            let acked = [("a", a.join()), ("b", b.join())];
            killer.join();
            let hw = cluster.latest_offset(&tp).unwrap();
            let log: Vec<(u64, Bytes)> = cluster
                .fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .into_iter()
                .map(|m| (m.offset, m.value))
                .collect();
            for (tag, base) in acked {
                let Some(base) = base else { continue };
                assert!(
                    hw >= base + 2,
                    "acked batch {tag} torn by failover: hw {hw} splits batch at base {base}"
                );
                for i in 0..2u64 {
                    let want = Bytes::from(format!("{tag}{i}"));
                    assert!(
                        log.contains(&(base + i, want)),
                        "batch {tag} record {i} not at offset {} after failover",
                        base + i
                    );
                }
            }
            // No torn batches, acked or not: each producer's records appear
            // either in full or not at all.
            for tag in ["a", "b"] {
                let n = log
                    .iter()
                    .filter(|(_, v)| v.starts_with(tag.as_bytes()))
                    .count();
                assert!(
                    n == 0 || n == 2,
                    "batch {tag} half-committed: {n} of 2 records in the log"
                );
            }
        },
    );
    assert_exhaustive(&report, 2);
}

// ---------------------------------------------------------------------------
// Scenario 3c: sharded partition locks — producers on distinct partitions
// ---------------------------------------------------------------------------

/// Two producers group-commit to *different* partitions of the same
/// topic under the per-partition `partition.state` lock shards. The
/// exhaustive exploration checks the shard split end-to-end: every
/// interleaving acquires `cluster.state` (read) and `partition.state`
/// in rank order — a rank inversion or a same-rank double-acquire
/// panics inside lockdep and fails the run — and each partition's
/// batch lands contiguously at its own base offset, unperturbed by the
/// other partition's commit. This is the model-checked half of the
/// analyzer-driven lock split (`target/analysis/shardability.json`);
/// the E12 concurrent sweep is the throughput half.
#[test]
fn model_sharded_producers_distinct_partitions() {
    let report = check(
        "cluster.sharded-producers-distinct-partitions",
        Config::default(),
        || {
            let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
            cluster
                .create_topic("t", TopicConfig::with_partitions(2))
                .unwrap();
            let cluster = Arc::new(cluster);
            let spawn_producer = |p: u32| {
                let c = cluster.clone();
                thread::spawn_named(format!("shard-{p}"), move || {
                    let mut b = RecordBatch::builder();
                    b.push(None, format!("p{p}r0").as_bytes(), 0);
                    b.push(None, format!("p{p}r1").as_bytes(), 0);
                    c.produce_batch(
                        &TopicPartition::new("t", p),
                        b.build(),
                        AckLevel::Leader,
                        None,
                    )
                    .unwrap()
                })
            };
            let a = spawn_producer(0);
            let b = spawn_producer(1);
            let bases = [a.join(), b.join()];
            for (p, base) in bases.into_iter().enumerate() {
                let tp = TopicPartition::new("t", p as u32);
                // Single replica: the watermark covers the batch as
                // soon as the group commit returns.
                assert_eq!(base, 0, "partition {p} saw foreign records below its batch");
                assert_eq!(cluster.latest_offset(&tp).unwrap(), 2);
                let log: Vec<(u64, Bytes)> = cluster
                    .fetch_batch(&tp, 0, u64::MAX)
                    .unwrap()
                    .into_messages()
                    .into_iter()
                    .map(|m| (m.offset, m.value))
                    .collect();
                // Contiguous, fully ordered, and partition-pure.
                for i in 0..2u64 {
                    let want = Bytes::from(format!("p{p}r{i}"));
                    assert_eq!(
                        log[i as usize],
                        (base + i, want),
                        "partition {p} batch not contiguous at base {base}"
                    );
                }
            }
        },
    );
    assert_exhaustive(&report, 2);
}

// ---------------------------------------------------------------------------
// Scenario 3d: sharded offset store — commits on distinct keys vs. rebalance
// ---------------------------------------------------------------------------

/// Two consumers commit to *distinct* per-(group, partition) offset
/// shards while a third member joins and forces a rebalance. This is
/// the model-checked half of the `offsets.inner` split (the atomicity
/// pass proves the commit path's resolve→drop→lock gap validated
/// statically): in every interleaving the lock order
/// `group.groups` → `offsets.inner` → `offsets.shard` holds — any rank
/// inversion panics inside lockdep and fails the run — and neither
/// commit is lost, duplicated, or torn by the other's shard update or
/// the concurrent rebalance.
#[test]
fn model_offsets_sharded_commit_vs_rebalance() {
    let report = check(
        "offsets.sharded-commit-vs-rebalance",
        Config::default(),
        || {
            let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
            cluster
                .create_topic("t", TopicConfig::with_partitions(2))
                .unwrap();
            let cluster = Arc::new(cluster);
            cluster
                .join_group("g", "m1", &["t"], AssignmentStrategy::Range)
                .unwrap();
            let gen0 = cluster.group_generation("g").unwrap();
            let commit = |name: &'static str, p: u32, off: u64| {
                let c = cluster.clone();
                thread::spawn_named(format!("commit-{name}"), move || {
                    c.offsets()
                        .commit("g", &TopicPartition::new("t", p), off, BTreeMap::new())
                        .unwrap();
                })
            };
            let a = commit("p0", 0, 5);
            let b = commit("p1", 1, 9);
            let joiner = {
                let c = cluster.clone();
                thread::spawn_named("rebalance".into(), move || {
                    c.join_group("g", "m2", &["t"], AssignmentStrategy::Range)
                        .unwrap();
                })
            };
            a.join();
            b.join();
            joiner.join();
            // Exactly one commit per shard, at the committed offset:
            // nothing lost, nothing duplicated, in any interleaving.
            for (p, want) in [(0u32, 5u64), (1, 9)] {
                let tp = TopicPartition::new("t", p);
                assert_eq!(
                    cluster.offsets().fetch_offset("g", &tp),
                    Some(want),
                    "partition {p} commit lost or clobbered"
                );
                assert_eq!(
                    cluster.offsets().history("g", &tp).len(),
                    1,
                    "partition {p} commit duplicated"
                );
            }
            assert!(
                cluster.group_generation("g").unwrap() > gen0,
                "joining bumps the generation"
            );
            let mut covered = BTreeSet::new();
            for m in ["m1", "m2"] {
                for tp in cluster.group_assignment("g", m).unwrap().partitions {
                    assert!(covered.insert(tp.clone()), "{tp} assigned twice");
                }
            }
            assert_eq!(covered.len(), 2, "both partitions assigned");
        },
    );
    assert_exhaustive(&report, 2);
}

// ---------------------------------------------------------------------------
// Scenario 3e: concurrent fetch vs. whole-segment retention drop
// ---------------------------------------------------------------------------

/// One reader fetches the whole feed through the segment-read cache
/// while retention drops retired segments concurrently. In every
/// interleaving the read is never torn: it returns a contiguous run of
/// records whose values match their offsets — either the pre-drop view
/// or the healed post-drop view, nothing in between — and afterwards a
/// fetch from the earliest offset starts exactly there, proving the
/// cache never serves a retired segment. Lock order
/// (`partition.state` → `log.readcache` → `log.pagecache`) is enforced
/// by lockdep on every path the explorer visits.
#[test]
fn model_fetch_vs_segment_drop() {
    let report = check("log.fetch-vs-segment-drop", Config::default(), || {
        let config = ClusterConfig::builder()
            .brokers(1)
            .segment_cache_bytes(4_096)
            .segment_cache_shards(1)
            .build()
            .unwrap();
        let cluster = Cluster::new(config, SimClock::new(0).shared());
        cluster
            .create_topic(
                "t",
                TopicConfig::with_partitions(1)
                    .retention(RetentionPolicy::DropByBytes { max_bytes: 96 })
                    .segment_bytes(64),
            )
            .unwrap();
        let cluster = Arc::new(cluster);
        let tp = TopicPartition::new("t", 0);
        for i in 0..6u64 {
            cluster
                .produce_to(&tp, None, Bytes::from(format!("v{i}")), AckLevel::Leader)
                .unwrap();
        }
        // Warm the cache so the concurrent read can hit it mid-drop.
        cluster.fetch_batch(&tp, 0, u64::MAX).unwrap();
        let reader = {
            let c = cluster.clone();
            thread::spawn_named("reader".into(), move || {
                let msgs = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
                assert!(!msgs.is_empty(), "six records, active segment never drops");
                for (i, m) in msgs.iter().enumerate() {
                    assert_eq!(
                        m.offset,
                        msgs[0].offset + i as u64,
                        "read tore across the drop: offsets not contiguous"
                    );
                    assert_eq!(
                        m.value,
                        Bytes::from(format!("v{}", m.offset)),
                        "record at offset {} served foreign bytes",
                        m.offset
                    );
                }
            })
        };
        let dropper = {
            let c = cluster.clone();
            thread::spawn_named("dropper".into(), move || {
                c.enforce_retention().unwrap();
            })
        };
        reader.join();
        dropper.join();
        // The cache must not serve retired segments: a fetch from the
        // retention floor starts exactly there and stays value-exact.
        let tp = TopicPartition::new("t", 0);
        let earliest = cluster.earliest_offset(&tp).unwrap();
        assert!(earliest > 0, "retention must have dropped a segment");
        let batch = cluster.fetch_batch(&tp, earliest, u64::MAX).unwrap();
        assert_eq!(batch.base_offset(), Some(earliest));
        for m in batch.into_messages() {
            assert!(m.offset >= earliest, "served a record below the floor");
            assert_eq!(m.value, Bytes::from(format!("v{}", m.offset)));
        }
    });
    assert_exhaustive(&report, 2);
}

// ---------------------------------------------------------------------------
// Scenario 4: checkpoint vs. restore
// ---------------------------------------------------------------------------

fn counting_task(_partition: u32) -> Box<dyn StreamTask> {
    Box::new(FnTask(|_: &Message, ctx: &mut TaskContext<'_>| {
        ctx.store().add_counter(b"n", 1)?;
        Ok(())
    }))
}

/// A job incarnation checkpoints while its replacement restores. The
/// checkpoint (a single offset commit) is atomic: the restorer sees
/// either the pre-checkpoint world (replays everything, n=4 after
/// at-least-once double-counting through the changelog) or the
/// post-checkpoint world (replays nothing, n=2) — never a torn state.
#[test]
fn model_checkpoint_vs_restore() {
    let report = check("job.checkpoint-vs-restore", Config::default(), || {
        let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        cluster
            .create_topic("in", TopicConfig::with_partitions(1))
            .unwrap();
        let cluster = Arc::new(cluster);
        let tp = TopicPartition::new("in", 0);
        for i in 0..2 {
            cluster
                .produce_to(
                    &tp,
                    Some(Bytes::from_static(b"k")),
                    Bytes::from(format!("m{i}")),
                    AckLevel::Leader,
                )
                .unwrap();
        }
        let make = || JobConfig::new("ckpt", &["in"]).checkpoint_every(0);
        let mut job1 = Job::new(&cluster, make(), counting_task).unwrap();
        assert_eq!(job1.run_until_idle(4).unwrap(), 2);
        let writer = thread::spawn_named("checkpoint".into(), move || {
            job1.checkpoint().unwrap();
        });
        let restorer = {
            let c = cluster.clone();
            thread::spawn_named("restore".into(), move || {
                let mut job2 = Job::new(&c, make(), counting_task).unwrap();
                job2.run_until_idle(4).unwrap();
                job2.state(0).unwrap().get_counter(b"n")
            })
        };
        writer.join();
        let n = restorer.join();
        assert!(
            n == 2 || n == 4,
            "restore must see a consistent checkpoint: fold is 2 (post-checkpoint) \
             or 4 (full at-least-once replay), got {n}"
        );
    });
    assert_exhaustive(&report, 2);
}

// ---------------------------------------------------------------------------
// Race detector + replay acceptance
// ---------------------------------------------------------------------------

/// A deliberately racy fixture: an unlocked read-modify-write against
/// a plain [`Shared`] cell. The vector-clock detector must flag it on
/// the very first exploration (races are visible in any single
/// interleaving via happens-before, not only in the losing order),
/// name *both* sites, and print a replayable schedule.
#[test]
fn model_racy_fixture_flagged_with_both_sites() {
    let failure = racy_fixture_failure(None);
    assert!(
        failure.contains("data race on cell 'fixture.counter'"),
        "detector names the cell: {failure}"
    );
    assert_eq!(
        failure.matches("model.rs:").count(),
        2,
        "both racing sites carry this file's name: {failure}"
    );
    assert!(
        failure.contains("CHECK_SCHEDULE="),
        "failures print a replayable schedule: {failure}"
    );
}

/// Extracts the printed schedule from the racy fixture's failure and
/// replays it: the replayed run must fail with the byte-for-byte
/// identical report.
#[test]
fn model_failing_schedule_replays_byte_for_byte() {
    let original = racy_fixture_failure(None);
    let (_scenario, schedule) =
        sched::extract_schedule(&original).expect("failure text embeds its schedule");
    let replayed = racy_fixture_failure(Some(schedule));
    assert_eq!(
        original, replayed,
        "replaying the printed schedule reproduces the identical failure"
    );
}

/// Runs the racy fixture (exploring, or replaying `schedule`) and
/// returns the failure text it panics with.
fn racy_fixture_failure(schedule: Option<Vec<usize>>) -> String {
    let cfg = Config {
        replay: schedule,
        ..Config::default()
    };
    let err = catch_unwind(AssertUnwindSafe(|| {
        check("model.racy-fixture", cfg, || {
            let cell = Arc::new(Shared::new("fixture.counter", 0u64));
            let t = {
                let c = cell.clone();
                thread::spawn_named("incrementer".into(), move || {
                    let v = c.get();
                    c.set(v + 1);
                })
            };
            // Unordered with the child's accesses: no join edge yet.
            let _ = cell.get();
            t.join();
        });
    }))
    .expect_err("the racy fixture must fail");
    *err.downcast::<String>()
        .expect("failure payload is the report text")
}

/// The twin of the racy fixture with the race removed: joining the
/// child before reading creates the happens-before edge, so the same
/// access pattern explores cleanly — and still exercises more than one
/// interleaving (the child's read/write pair vs. the parent's read).
#[test]
fn model_ordered_twin_is_clean() {
    let report = check("model.ordered-twin", Config::default(), || {
        let cell = Arc::new(Shared::new("ordered.counter", 0u64));
        let t = {
            let c = cell.clone();
            thread::spawn_named("incrementer".into(), move || {
                let v = c.get();
                c.set(v + 1);
            })
        };
        t.join();
        assert_eq!(cell.get(), 1);
    });
    assert_exhaustive(&report, 1);
}

// ---------------------------------------------------------------------------
// Pinned-seed sampled large configuration (env-gated; the CI
// model-check job runs it with LIQUID_MODEL_LARGE=1)
// ---------------------------------------------------------------------------

/// Three producers against a replicated topic: too many interleavings
/// to exhaust, so a preemption-bounded DFS runs first and a pinned-seed
/// random sampler sweeps whatever the bound excluded. The seed is fixed
/// so CI failures reproduce locally without artifact archaeology.
#[test]
fn model_sampled_large_config_pinned_seed() {
    if std::env::var("LIQUID_MODEL_LARGE").is_err() {
        eprintln!("skipping sampled large-config run (set LIQUID_MODEL_LARGE=1)");
        return;
    }
    // The DFS budget is set below the bounded space's size on purpose:
    // this test is about the sampling fallback actually engaging.
    let cfg = Config {
        max_interleavings: 500,
        ..Config::bounded(1, 200, 0x11D0)
    };
    let report = check("producers.large-sampled", cfg, || {
        let cluster = Cluster::new(ClusterConfig::with_brokers(2), SimClock::new(0).shared());
        cluster
            .create_topic("t", TopicConfig::with_partitions(1).replication(2))
            .unwrap();
        let cluster = Arc::new(cluster);
        let tp = TopicPartition::new("t", 0);
        let handles: Vec<_> = (0..3)
            .map(|p| {
                let c = cluster.clone();
                thread::spawn_named(format!("producer-{p}"), move || {
                    for i in 0..2 {
                        c.produce_to(
                            &TopicPartition::new("t", 0),
                            None,
                            Bytes::from(format!("p{p}-{i}")),
                            AckLevel::All,
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(cluster.log_end_offset(&tp).unwrap(), 6);
        assert_eq!(cluster.latest_offset(&tp).unwrap(), 6);
        let msgs = cluster
            .fetch_batch(&tp, 0, u64::MAX)
            .unwrap()
            .into_messages();
        let unique: BTreeSet<_> = msgs.iter().map(|m| m.value.clone()).collect();
        assert_eq!(unique.len(), 6, "no duplicates, nothing lost");
    });
    println!(
        "liquid-check[{}]: {} interleaving(s), {} pruned, {} sampled, complete={}",
        report.scenario, report.interleavings, report.pruned, report.sampled, report.complete
    );
    assert!(
        report.interleavings + report.sampled >= 200,
        "the sampler must actually sweep: {report:?}"
    );
}
