//! Failure-injection tests: the availability story of §4.3 under
//! adversarial schedules.

use liquid::prelude::*;
use liquid_messaging::{Cluster, ClusterConfig, TopicConfig};
use liquid_sim::failure::FailureInjector;

fn b(s: &str) -> Bytes {
    Bytes::from(s.to_string())
}

#[test]
fn rolling_broker_restarts_lose_nothing_with_acks_all() {
    let clock = SimClock::new(0);
    let cluster = Cluster::new(ClusterConfig::with_brokers(3), clock.shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(2).replication(3))
        .unwrap();
    let producer = liquid_messaging::Producer::new(&cluster, "t")
        .unwrap()
        .with_acks(AckLevel::All);
    let mut sent = 0u64;
    // Rolling restart: kill and revive each broker while producing.
    for round in 0..3u32 {
        for _ in 0..50 {
            producer.send_value(format!("m{sent}")).unwrap();
            sent += 1;
        }
        cluster.kill_broker(round).unwrap();
        for _ in 0..50 {
            producer.send_value(format!("m{sent}")).unwrap();
            sent += 1;
        }
        cluster.restart_broker(round).unwrap();
        cluster.replicate_tick().unwrap();
    }
    // Every message is retrievable.
    let mut got = 0;
    for p in 0..2 {
        let tp = TopicPartition::new("t", p);
        got += cluster
            .fetch_batch(&tp, 0, u64::MAX)
            .unwrap()
            .into_messages()
            .len();
    }
    assert_eq!(got as u64, sent);
}

#[test]
fn double_failure_with_three_replicas_still_serves() {
    let clock = SimClock::new(0);
    let cluster = Cluster::new(ClusterConfig::with_brokers(3), clock.shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(1).replication(3))
        .unwrap();
    let tp = TopicPartition::new("t", 0);
    for i in 0..20 {
        cluster
            .produce_to(&tp, None, b(&format!("m{i}")), AckLevel::All)
            .unwrap();
    }
    cluster
        .kill_broker(cluster.leader(&tp).unwrap().unwrap())
        .unwrap();
    cluster
        .kill_broker(cluster.leader(&tp).unwrap().unwrap())
        .unwrap();
    // Third replica serves everything: N-1 failures tolerated.
    assert_eq!(
        cluster
            .fetch_batch(&tp, 0, u64::MAX)
            .unwrap()
            .into_messages()
            .len(),
        20
    );
}

#[test]
fn failed_task_resumes_at_least_once_with_state_intact() {
    // A stateful job crashes mid-stream *after* a checkpoint; the
    // replacement restores state from the changelog and reprocesses
    // only the uncheckpointed suffix (at-least-once).
    let clock = SimClock::new(0);
    let cluster = Cluster::new(ClusterConfig::with_brokers(1), clock.shared());
    cluster
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    let tp = TopicPartition::new("in", 0);
    for i in 0..100 {
        cluster
            .produce_to(&tp, Some(b("k")), b(&format!("m{i}")), AckLevel::Leader)
            .unwrap();
    }
    let make = || JobConfig::new("crashy", &["in"]).checkpoint_every(0);
    let counted_after_crash;
    {
        let mut job = Job::new(&cluster, make(), |_| {
            Box::new(FnTask(|_: &Message, ctx: &mut TaskContext<'_>| {
                ctx.store().add_counter(b"n", 1)?;
                Ok(())
            }))
        })
        .unwrap();
        // Process 60, checkpoint, process 40 more, crash without
        // checkpointing them.
        job.run_once_limited(60).unwrap();
        job.checkpoint().unwrap();
        job.run_once_limited(40).unwrap();
        counted_after_crash = job.state(0).unwrap().get_counter(b"n");
        assert_eq!(counted_after_crash, 100);
    }
    let mut job2 = Job::new(&cluster, make(), |_| {
        Box::new(FnTask(|_: &Message, ctx: &mut TaskContext<'_>| {
            ctx.store().add_counter(b"n", 1)?;
            Ok(())
        }))
    })
    .unwrap();
    // State restored includes the uncheckpointed updates (they reached
    // the changelog), and input replays from offset 60: duplicates.
    let replayed = job2.run_until_idle(20).unwrap();
    assert_eq!(replayed, 40, "uncheckpointed suffix reprocessed");
    let final_count = job2.state(0).unwrap().get_counter(b"n");
    assert_eq!(
        final_count, 140,
        "at-least-once: 100 + 40 duplicates (no dedup support, §4.3)"
    );
}

#[test]
fn probabilistic_broker_chaos_keeps_committed_data() {
    // Randomized (seeded) kill/restart schedule; with acks=All, every
    // acknowledged message must survive to the end.
    let clock = SimClock::new(0);
    let cluster = Cluster::new(ClusterConfig::with_brokers(3), clock.shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(1).replication(3))
        .unwrap();
    let tp = TopicPartition::new("t", 0);
    let chaos = FailureInjector::new(4242);
    chaos.set_probability(0.05);
    let mut acked = Vec::new();
    let mut down: Vec<u32> = Vec::new();
    for i in 0..300 {
        // The harness charges its coin-flips to the election site: a
        // fired tick toggles a broker, which is what forces elections.
        if chaos.tick("cluster.election") {
            // Toggle a random-ish broker, but never kill the last one.
            let victim = (i % 3) as u32;
            if down.contains(&victim) {
                cluster.restart_broker(victim).unwrap();
                down.retain(|&d| d != victim);
            } else if down.len() < 2 {
                cluster.kill_broker(victim).unwrap();
                down.push(victim);
            }
            cluster.replicate_tick().unwrap();
        }
        match cluster.produce_to(&tp, None, b(&format!("m{i}")), AckLevel::All) {
            Ok(_) => acked.push(i),
            Err(_) => { /* partition unavailable; producer would retry */ }
        }
    }
    for d in down {
        cluster.restart_broker(d).unwrap();
    }
    cluster.replicate_tick().unwrap();
    let got = cluster
        .fetch_batch(&tp, 0, u64::MAX)
        .unwrap()
        .into_messages();
    assert_eq!(got.len(), acked.len(), "every acked message survived");
    assert!(acked.len() > 250, "chaos should not block most produces");
}

#[test]
fn changelog_compaction_speeds_recovery_after_crash() {
    // §4.1: compaction "not only reduces the changelog size, but also
    // allows for faster recovery".
    let clock = SimClock::new(0);
    let cluster = Cluster::new(ClusterConfig::with_brokers(1), clock.shared());
    cluster
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    let tp = TopicPartition::new("in", 0);
    for i in 0..2_000 {
        cluster
            .produce_to(
                &tp,
                Some(b(&format!("k{}", i % 5))),
                b(&format!("m{i}")),
                AckLevel::Leader,
            )
            .unwrap();
    }
    let make = || JobConfig::new("hotkeys", &["in"]);
    {
        let mut job = Job::new(&cluster, make(), |_| {
            Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                let key = m.key.clone().unwrap_or_default();
                ctx.store().put(key, m.value.clone())?;
                Ok(())
            }))
        })
        .unwrap();
        job.run_until_idle(20).unwrap();
        job.checkpoint().unwrap();
    }
    // Recovery without compaction replays every update.
    let job_uncompacted = Job::new(&cluster, make(), |_| {
        Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(())))
    })
    .unwrap();
    let replay_before = job_uncompacted.restored_records();
    drop(job_uncompacted);
    cluster.compact_topic("__hotkeys-state").unwrap();
    let job_compacted = Job::new(&cluster, make(), |_| {
        Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(())))
    })
    .unwrap();
    let replay_after = job_compacted.restored_records();
    assert!(
        replay_after * 2 < replay_before,
        "compaction should cut replay: {replay_before} -> {replay_after}"
    );
}
