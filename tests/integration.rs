//! Cross-crate integration tests: the full stack exercised end to end,
//! mirroring Figure 2 of the paper (feeds in → jobs with tasks and
//! state → feeds out).

use liquid::prelude::*;
use liquid_processing::window::TumblingWindow;
use liquid_workloads::activity::{ActivityEvent, ActivityGen};
use liquid_workloads::rum::{RumEvent, RumGen};

fn stack() -> (Liquid, SimClock) {
    let clock = SimClock::new(0);
    (Liquid::new(LiquidConfig::default(), clock.shared()), clock)
}

#[test]
fn multi_stage_dataflow_through_the_messaging_layer() {
    // raw -> (cleaner) -> clean -> (counter) -> counts
    let (liquid, _) = stack();
    liquid
        .create_source_feed("raw", FeedConfig::default().partitions(2))
        .unwrap();
    liquid
        .create_derived_feed(
            "clean",
            FeedConfig::default().partitions(2),
            Lineage::new("cleaner", "v1", &["raw"]),
        )
        .unwrap();
    liquid
        .create_derived_feed(
            "counts",
            FeedConfig::default().partitions(2).compacted(),
            Lineage::new("counter", "v1", &["clean"]),
        )
        .unwrap();

    liquid
        .submit_job(
            JobConfig::new("cleaner", &["raw"]).stateless(),
            ContainerRequest {
                cpu_per_tick: 100_000,
                memory_mb: 128,
            },
            |_| {
                Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                    if ActivityEvent::decode(&m.value).is_some() {
                        ctx.send("clean", m.key.clone(), m.value.clone())?;
                    }
                    Ok(())
                }))
            },
        )
        .unwrap();
    liquid
        .submit_job(
            JobConfig::new("counter", &["clean"]),
            ContainerRequest {
                cpu_per_tick: 100_000,
                memory_mb: 128,
            },
            |_| {
                Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                    let key = m.key.clone().unwrap_or_default();
                    let n = ctx.store().add_counter(&key, 1)?;
                    ctx.send("counts", Some(key), Bytes::from(n.to_string()))?;
                    Ok(())
                }))
            },
        )
        .unwrap();

    let producer = liquid.producer("raw").unwrap();
    let mut gen = ActivityGen::new(1, 50, 20);
    for e in gen.batch(500) {
        producer.send(Some(e.key()), e.encode()).unwrap();
    }
    // Also inject garbage the cleaner must drop.
    for _ in 0..25 {
        producer.send_value("not-an-event").unwrap();
    }
    let processed = liquid.run_until_idle(100).unwrap();
    // cleaner sees 525, counter sees 500.
    assert_eq!(processed, 525 + 500);

    let reader = liquid.reader_from_start("counts", "check").unwrap();
    let total: usize = reader
        .poll_batches()
        .unwrap()
        .iter()
        .map(|(_, b)| b.len())
        .sum();
    assert_eq!(total, 500, "every clean event produced one count row");

    // Lineage chain resolves counts -> clean -> raw.
    let chain = liquid.lineage().provenance("counts");
    assert_eq!(chain.len(), 2);
    assert_eq!(chain[0].1.inputs, vec!["clean"]);
    assert_eq!(chain[1].1.inputs, vec!["raw"]);
}

#[test]
fn replicated_stack_survives_broker_failure_mid_pipeline() {
    let clock = SimClock::new(0);
    let liquid = Liquid::new(
        LiquidConfig {
            brokers: 3,
            ..LiquidConfig::default()
        },
        clock.shared(),
    );
    liquid
        .create_source_feed("events", FeedConfig::default().replication(3))
        .unwrap();
    liquid
        .create_derived_feed(
            "out",
            FeedConfig::default().replication(3),
            Lineage::new("fwd", "v1", &["events"]),
        )
        .unwrap();
    // acks=All so nothing is lost on failure.
    let producer = liquid.producer("events").unwrap().with_acks(AckLevel::All);
    for i in 0..100 {
        producer.send_value(format!("m{i}")).unwrap();
    }
    liquid
        .submit_job(
            JobConfig::new("fwd", &["events"]).stateless(),
            ContainerRequest {
                cpu_per_tick: 100_000,
                memory_mb: 128,
            },
            |_| {
                Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                    ctx.send("out", None, m.value.clone())?;
                    Ok(())
                }))
            },
        )
        .unwrap();
    // Process half, then kill the leader of events-0.
    let tp = TopicPartition::new("events", 0);
    let leader = liquid.cluster().leader(&tp).unwrap().unwrap();
    liquid.cluster().kill_broker(leader).unwrap();
    let processed = liquid.run_until_idle(100).unwrap();
    assert_eq!(processed, 100, "failover is transparent to the job");
    let reader = liquid.reader_from_start("out", "check").unwrap();
    let total: usize = reader
        .poll_batches()
        .unwrap()
        .iter()
        .map(|(_, b)| b.len())
        .sum();
    assert_eq!(total, 100);
}

#[test]
fn windowed_aggregation_survives_job_restart() {
    // A window aggregate mid-flight must survive a crash because its
    // state lives in the changelog.
    let (liquid, _) = stack();
    liquid
        .create_source_feed("rum", FeedConfig::default())
        .unwrap();
    liquid
        .create_derived_feed(
            "means",
            FeedConfig::default(),
            Lineage::new("agg", "v1", &["rum"]),
        )
        .unwrap();
    let producer = liquid.producer("rum").unwrap();
    let mut gen = RumGen::new(2, 10, 100);
    for e in gen.batch(2_000) {
        producer.send(Some(e.key()), e.encode()).unwrap();
    }

    let make_task = || {
        Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
            let Some(e) = RumEvent::decode(&m.value) else {
                return Ok(());
            };
            TumblingWindow::new(5_000).add(ctx.store(), e.timestamp, e.cdn.as_bytes(), 1)?;
            Ok(())
        })) as Box<dyn StreamTask>
    };

    // First instance: process everything, checkpoint, "crash".
    let cluster = liquid.cluster().clone();
    {
        let mut job = Job::new(&cluster, JobConfig::new("agg", &["rum"]), |_| make_task()).unwrap();
        job.run_until_idle(50).unwrap();
        job.checkpoint().unwrap();
        assert!(job.total_state_keys() > 0);
    }
    // Second instance restores from the changelog.
    let mut job2 = Job::new(&cluster, JobConfig::new("agg", &["rum"]), |_| make_task()).unwrap();
    assert!(job2.restored_records() > 0);
    assert!(job2.total_state_keys() > 0, "window state recovered");
    assert_eq!(
        job2.run_until_idle(50).unwrap(),
        0,
        "no reprocessing needed"
    );
}

#[test]
fn consumer_groups_fan_out_to_nearline_and_offline() {
    // The unification story: the same feed serves a nearline consumer
    // group and an "offline" batch-style group independently.
    let (liquid, _) = stack();
    liquid
        .create_source_feed("events", FeedConfig::default().partitions(4))
        .unwrap();
    let producer = liquid.producer("events").unwrap();
    for i in 0..400 {
        producer.send_value(format!("e{i}")).unwrap();
    }
    // Nearline group: two members splitting the partitions.
    let n1 = liquid.consumer_in_group("nearline", "n1");
    let n2 = liquid.consumer_in_group("nearline", "n2");
    n1.subscribe(
        &["events"],
        AssignmentStrategy::Range,
        StartPosition::Earliest,
    )
    .unwrap();
    n2.subscribe(
        &["events"],
        AssignmentStrategy::Range,
        StartPosition::Earliest,
    )
    .unwrap();
    n1.refresh_assignment().unwrap();
    let near1: usize = n1
        .poll_batches()
        .unwrap()
        .iter()
        .map(|(_, b)| b.len())
        .sum();
    let near2: usize = n2
        .poll_batches()
        .unwrap()
        .iter()
        .map(|(_, b)| b.len())
        .sum();
    assert_eq!(near1 + near2, 400);
    assert_eq!(near1, 200);

    // Offline group: one batch reader sees the full feed too.
    let batch = liquid.consumer_in_group("offline", "b1");
    batch
        .subscribe(
            &["events"],
            AssignmentStrategy::Range,
            StartPosition::Earliest,
        )
        .unwrap();
    let offline: usize = batch
        .poll_batches()
        .unwrap()
        .iter()
        .map(|(_, b)| b.len())
        .sum();
    assert_eq!(offline, 400, "pub/sub across groups");
}

#[test]
fn retention_and_rewind_interact_correctly() {
    let clock = SimClock::new(0);
    let liquid = Liquid::new(LiquidConfig::default(), clock.shared());
    liquid
        .create_source_feed(
            "short-lived",
            FeedConfig {
                retention_ms: Some(60_000),
                segment_bytes: 2_048,
                ..FeedConfig::default()
            },
        )
        .unwrap();
    let producer = liquid.producer("short-lived").unwrap();
    for i in 0..200 {
        clock.advance(1_000);
        producer.send_value(format!("old-{i:05}")).unwrap();
    }
    clock.advance(120_000);
    producer.send_value("fresh").unwrap();
    let (deleted, _) = liquid.maintenance().unwrap();
    assert!(deleted > 0, "old segments reclaimed");
    let tp = TopicPartition::new("short-lived", 0);
    let earliest = liquid.cluster().earliest_offset(&tp).unwrap();
    assert!(earliest > 0);
    // Rewinding to a time inside the retained window works…
    let target = liquid
        .cluster()
        .offset_for_timestamp(&tp, clock.now())
        .unwrap();
    assert!(target.is_some());
    // …and a consumer positioned at Earliest sees only retained data.
    let c = liquid.consumer("c");
    c.assign(tp.clone(), StartPosition::Earliest).unwrap();
    let msgs: usize = c.poll_batches().unwrap().iter().map(|(_, b)| b.len()).sum();
    assert!(msgs < 201);
    assert!(msgs > 0);
}

#[test]
fn offset_manager_annotations_drive_version_aware_resume() {
    let (liquid, _) = stack();
    liquid
        .create_source_feed("in", FeedConfig::default())
        .unwrap();
    let producer = liquid.producer("in").unwrap();
    for i in 0..50 {
        producer.send_value(format!("m{i}")).unwrap();
    }
    let cluster = liquid.cluster().clone();
    let mk = |version: &str| JobConfig::new("vjob", &["in"]).version(version).stateless();
    {
        let mut job = Job::new(&cluster, mk("v1"), |_| {
            Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(())))
        })
        .unwrap();
        job.run_until_idle(20).unwrap();
        job.checkpoint().unwrap();
    }
    for i in 0..10 {
        producer.send_value(format!("late{i}")).unwrap();
    }
    {
        let mut job = Job::new(&cluster, mk("v2"), |_| {
            Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(())))
        })
        .unwrap();
        assert_eq!(job.run_until_idle(20).unwrap(), 10);
        job.checkpoint().unwrap();
    }
    let tp = TopicPartition::new("in", 0);
    let offsets = cluster.offsets();
    assert_eq!(
        offsets
            .last_commit_with("job-vjob", &tp, "version", "v1")
            .unwrap()
            .offset,
        50
    );
    assert_eq!(
        offsets
            .last_commit_with("job-vjob", &tp, "version", "v2")
            .unwrap()
            .offset,
        60
    );
}
