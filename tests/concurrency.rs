//! Thread-safety tests: the messaging layer is a shared service, so
//! concurrent producers, consumers and maintenance must interleave
//! safely (hundreds of clients per topic, §3.1).

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use bytes::Bytes;
use liquid_messaging::consumer::StartPosition;
use liquid_messaging::{
    AssignmentStrategy, Cluster, ClusterConfig, Consumer, Producer, TopicConfig, TopicPartition,
};
use liquid_sim::clock::SimClock;

const PRODUCERS: usize = 8;
const PER_PRODUCER: usize = 2_000;

#[test]
fn concurrent_producers_interleave_without_loss() {
    let cluster = Cluster::new(ClusterConfig::with_brokers(2), SimClock::new(0).shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(4).replication(2))
        .unwrap();
    let cluster = Arc::new(cluster);
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let cluster = cluster.clone();
        handles.push(thread::spawn(move || {
            let producer = Producer::new(&cluster, "t").unwrap();
            for i in 0..PER_PRODUCER {
                producer
                    .send(None, Bytes::from(format!("p{p}-{i}")))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // acks=Leader + RF=2: the high watermark advances with replication.
    cluster.replicate_tick().unwrap();
    // Every message present exactly once, offsets dense per partition.
    let mut seen = HashSet::new();
    let mut total = 0;
    for p in 0..4 {
        let tp = TopicPartition::new("t", p);
        let msgs = cluster
            .fetch_batch(&tp, 0, u64::MAX)
            .unwrap()
            .into_messages();
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.offset, i as u64, "offsets dense on {tp}");
            assert!(seen.insert(m.value.clone()), "duplicate {:?}", m.value);
        }
        total += msgs.len();
    }
    assert_eq!(total, PRODUCERS * PER_PRODUCER);
}

#[test]
fn producers_and_consumers_race_to_a_consistent_end() {
    let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(2))
        .unwrap();
    let cluster = Arc::new(cluster);
    let writer = {
        let cluster = cluster.clone();
        thread::spawn(move || {
            let producer = Producer::new(&cluster, "t").unwrap();
            for i in 0..5_000 {
                producer.send(None, Bytes::from(format!("m{i}"))).unwrap();
            }
        })
    };
    // Two consumers in one group chase the head while it is written.
    // Rebalances mid-stream without committed offsets cause legitimate
    // reprocessing, so the contract is at-least-once: full coverage,
    // possibly with duplicates (§4.3).
    let readers: Vec<_> = (0..2)
        .map(|m| {
            let cluster = cluster.clone();
            thread::spawn(move || {
                let consumer = Consumer::in_group(&cluster, "race", &format!("m{m}"));
                consumer
                    .subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Earliest)
                    .unwrap();
                let mut got: HashSet<(u32, u64)> = HashSet::new();
                let mut deliveries = 0usize;
                let mut idle = 0;
                while idle < 50 {
                    let mut n = 0;
                    for (tp, batch) in consumer.poll_batches().unwrap() {
                        for msg in batch.records() {
                            got.insert((tp.partition, msg.offset));
                            n += 1;
                        }
                    }
                    deliveries += n;
                    idle = if n == 0 { idle + 1 } else { 0 };
                    std::thread::yield_now();
                }
                (got, deliveries)
            })
        })
        .collect();
    writer.join().unwrap();
    let mut coverage: HashSet<(u32, u64)> = HashSet::new();
    let mut deliveries = 0;
    for r in readers {
        let (got, n) = r.join().unwrap();
        coverage.extend(got);
        deliveries += n;
    }
    assert_eq!(
        coverage.len(),
        5_000,
        "every message delivered at least once"
    );
    assert!(deliveries >= 5_000);
}

#[test]
fn maintenance_runs_concurrently_with_traffic() {
    let clock = SimClock::new(0);
    let cluster = Cluster::new(ClusterConfig::with_brokers(1), clock.shared());
    cluster
        .create_topic(
            "t",
            TopicConfig::with_partitions(1)
                .compacted()
                .segment_bytes(4_096),
        )
        .unwrap();
    let cluster = Arc::new(cluster);
    let writer = {
        let cluster = cluster.clone();
        thread::spawn(move || {
            let producer = Producer::new(&cluster, "t").unwrap();
            for i in 0..20_000 {
                producer
                    .send_keyed(format!("k{}", i % 20), format!("v{i}"))
                    .unwrap();
            }
        })
    };
    let maintainer = {
        let cluster = cluster.clone();
        thread::spawn(move || {
            let mut passes = 0;
            for _ in 0..20 {
                cluster.compact_topic("t").unwrap();
                cluster.enforce_retention().unwrap();
                cluster.replicate_tick().unwrap();
                passes += 1;
                std::thread::yield_now();
            }
            passes
        })
    };
    writer.join().unwrap();
    assert_eq!(maintainer.join().unwrap(), 20);
    // After a final pass, the latest value per key is intact.
    cluster.compact_topic("t").unwrap();
    let tp = TopicPartition::new("t", 0);
    let msgs = cluster
        .fetch_batch(&tp, cluster.earliest_offset(&tp).unwrap(), u64::MAX)
        .unwrap()
        .into_messages();
    let mut latest = std::collections::HashMap::new();
    for m in &msgs {
        latest.insert(m.key.clone().unwrap(), m.value.clone());
    }
    assert_eq!(latest.len(), 20, "all 20 keys retained through compaction");
    assert_eq!(
        latest[&Bytes::from_static(b"k19")],
        Bytes::from_static(b"v19999")
    );
}

#[test]
fn concurrent_group_membership_churn_is_safe() {
    let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(8))
        .unwrap();
    let cluster = Arc::new(cluster);
    let handles: Vec<_> = (0..8)
        .map(|m| {
            let cluster = cluster.clone();
            thread::spawn(move || {
                for round in 0..20 {
                    cluster
                        .join_group("churn", &format!("m{m}"), &["t"], AssignmentStrategy::Range)
                        .unwrap();
                    if round % 3 == m % 3 {
                        cluster.leave_group("churn", &format!("m{m}")).ok();
                    }
                    std::thread::yield_now();
                }
                // Ensure membership at the end.
                cluster
                    .join_group("churn", &format!("m{m}"), &["t"], AssignmentStrategy::Range)
                    .unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Final assignment is a clean partition of the 8 partitions.
    let mut seen = HashSet::new();
    let mut total = 0;
    for m in 0..8 {
        let a = cluster.group_assignment("churn", &format!("m{m}")).unwrap();
        for tp in a.partitions {
            assert!(seen.insert(tp));
            total += 1;
        }
    }
    assert_eq!(total, 8);
}

#[test]
fn idempotent_producers_from_threads_never_duplicate() {
    let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(1))
        .unwrap();
    let cluster = Arc::new(cluster);
    let handles: Vec<_> = (0..4)
        .map(|p| {
            let cluster = cluster.clone();
            thread::spawn(move || {
                let producer = Producer::new(&cluster, "t").unwrap().idempotent();
                for i in 0..500u64 {
                    producer
                        .send(None, Bytes::from(format!("p{p}-{i}")))
                        .unwrap();
                    // Simulate an ambiguous failure + retry every 50th.
                    if i % 50 == 0 {
                        producer
                            .send_with_sequence(None, Bytes::from(format!("p{p}-{i}")), i + 1)
                            .unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let tp = TopicPartition::new("t", 0);
    let msgs = cluster
        .fetch_batch(&tp, 0, u64::MAX)
        .unwrap()
        .into_messages();
    assert_eq!(msgs.len(), 4 * 500, "retries deduplicated");
    let unique: HashSet<_> = msgs.iter().map(|m| m.value.clone()).collect();
    assert_eq!(unique.len(), 4 * 500);
}
