//! Operational analysis (paper §5.1, "Operational analysis").
//!
//! Host metrics stream into Liquid; the processing layer maintains
//! aggregate values for dashboards and raises incident reports the
//! moment a host misbehaves — instead of retrieving logs from the DFS
//! "only after a problem was detected". Integrating a brand-new metric
//! source is one `create_source_feed` call.
//!
//! Run with: `cargo run --example operational_analytics`

use liquid::prelude::*;
use liquid_workloads::metrics::{HostMetric, MetricsGen};

/// Maintains per-host aggregates and flags incidents.
struct OpsAggregator;

impl StreamTask for OpsAggregator {
    fn process(&mut self, m: &Message, ctx: &mut TaskContext<'_>) -> liquid_processing::Result<()> {
        let Some(metric) = HostMetric::decode(&m.value) else {
            return Ok(());
        };
        // Aggregates kept in changelog-backed state: total samples,
        // error sum, max cpu per host.
        let host = metric.host.clone();
        ctx.store()
            .add_counter(format!("samples|{host}").as_bytes(), 1)?;
        ctx.store()
            .add_counter(format!("errors|{host}").as_bytes(), metric.errors as u64)?;
        let max_key = format!("maxcpu|{host}");
        let prev = ctx.store().get_counter(max_key.as_bytes());
        if (metric.cpu_pct as u64) > prev {
            ctx.store().put(
                Bytes::from(max_key),
                Bytes::copy_from_slice(&(metric.cpu_pct as u64).to_le_bytes()),
            )?;
        }
        // Immediate incident detection on the raw stream.
        if metric.cpu_pct >= 95 || metric.errors >= 50 {
            ctx.send(
                "incidents",
                Some(Bytes::from(host.clone())),
                Bytes::from(format!(
                    "INCIDENT host={host} cpu={}% errors={} ts={}",
                    metric.cpu_pct, metric.errors, metric.timestamp
                )),
            )?;
        }
        Ok(())
    }
}

fn main() -> liquid::Result<()> {
    let clock = SimClock::new(0);
    let liquid = Liquid::new(LiquidConfig::default(), clock.shared());
    liquid.create_source_feed("host-metrics", FeedConfig::default().partitions(2))?;
    liquid.create_derived_feed(
        "incidents",
        FeedConfig::default(),
        Lineage::new("ops-aggregator", "v1", &["host-metrics"]),
    )?;

    let handle = liquid.submit_job(
        JobConfig::new("ops-aggregator", &["host-metrics"]),
        ContainerRequest {
            cpu_per_tick: 100_000,
            memory_mb: 512,
        },
        |_| Box::new(OpsAggregator),
    )?;

    // 30 healthy rounds from a 20-host fleet, then an incident.
    let producer = liquid.producer("host-metrics")?;
    let mut gen = MetricsGen::new(5, 20, 10_000);
    for _ in 0..30 {
        for m in gen.next_round() {
            producer.send(Some(m.key()), m.encode())?;
        }
    }
    gen.inject_incident(7);
    for _ in 0..3 {
        for m in gen.next_round() {
            producer.send(Some(m.key()), m.encode())?;
        }
    }
    let processed = liquid.run_until_idle(100)?;
    println!("aggregated {processed} metric samples from 20 hosts");

    // Incidents flagged nearline.
    let incident_reader = liquid.reader_from_start("incidents", "oncall")?;
    let incidents: Vec<String> = incident_reader
        .poll_batches()?
        .into_iter()
        .flat_map(|(_, batch)| batch.into_messages())
        .map(|m| String::from_utf8_lossy(&m.value).to_string())
        .collect();
    println!("{} incident report(s):", incidents.len());
    for i in incidents.iter().take(3) {
        println!("  {i}");
    }
    assert!(incidents.iter().all(|i| i.contains("host-0007")));
    assert_eq!(incidents.len(), 3, "one per post-injection round");

    // Dashboard values served straight from task state.
    let (samples, errors) = liquid.with_job(handle, |mj| {
        let mut samples = 0;
        let mut errors = 0;
        for p in 0..2 {
            if let Some(store) = mj.job_mut().state(p) {
                samples += store.get_counter(b"samples|host-0007");
                errors += store.get_counter(b"errors|host-0007");
            }
        }
        (samples, errors)
    })?;
    println!("host-0007 dashboard: {samples} samples, {errors} errors total");
    assert_eq!(samples, 33);
    assert!(errors >= 150, "3 incident rounds x >=50 errors");

    // "Integrating new data is straightforward": add a new source feed
    // and the same infrastructure transports it.
    liquid.create_source_feed("mobile-crash-reports", FeedConfig::default())?;
    let crash_producer = liquid.producer("mobile-crash-reports")?;
    crash_producer.send_value("app=android version=3.2 trace=...")?;
    println!(
        "new feed integrated; stack now serves feeds: {:?}",
        liquid.feeds()
    );
    println!("operational_analytics OK");
    Ok(())
}
