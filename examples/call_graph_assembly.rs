//! Call-graph assembly (paper §5.1, "Call graph assembly").
//!
//! Web pages are built from many REST calls executed by distributed
//! machines; every call emits a span event tagged with the request id.
//! Spans arrive out of order. A stateful job buffers spans per request,
//! assembles the call tree once the request is complete, and flags slow
//! calls "within seconds rather than hours".
//!
//! Run with: `cargo run --example call_graph_assembly`

use std::collections::HashMap;

use liquid::prelude::*;
use liquid_workloads::calls::{CallSpan, CallTraceGen};

/// Buffers spans per request and emits assembled call graphs.
struct CallGraphAssembler {
    /// Spans buffered per request id (in task state via keys; this map
    /// is the in-memory working set rebuilt from state on recovery).
    slow_threshold_ms: u64,
}

impl CallGraphAssembler {
    fn assemble(&self, spans: &mut [CallSpan]) -> (String, u64) {
        spans.sort_by_key(|s| s.span_id);
        // Depth-first render of the tree.
        let mut children: HashMap<Option<u32>, Vec<&CallSpan>> = HashMap::new();
        for s in spans.iter() {
            children.entry(s.parent_id).or_default().push(s);
        }
        let mut out = String::new();
        let mut stack = vec![(0u32, 0usize)];
        let mut critical_ms = 0;
        while let Some((id, depth)) = stack.pop() {
            let span = spans.iter().find(|s| s.span_id == id).expect("span exists");
            critical_ms = critical_ms.max(span.duration_ms);
            out.push_str(&format!(
                "{}{} ({}ms)\n",
                "  ".repeat(depth),
                span.service,
                span.duration_ms
            ));
            if let Some(kids) = children.get(&Some(id)) {
                for k in kids.iter().rev() {
                    stack.push((k.span_id, depth + 1));
                }
            }
        }
        (out, critical_ms)
    }
}

impl StreamTask for CallGraphAssembler {
    fn process(&mut self, m: &Message, ctx: &mut TaskContext<'_>) -> liquid_processing::Result<()> {
        let Some(span) = CallSpan::decode(&m.value) else {
            return Ok(());
        };
        // Buffer the span in state under req|<id>|<span>.
        let key = format!("req|{:020}|{:010}", span.request_id, span.span_id);
        ctx.store().put(Bytes::from(key), m.value.clone())?;

        // A request is complete when its root (span 0) and a contiguous
        // span range are present. Heuristic: recheck on every arrival.
        let lo = format!("req|{:020}|", span.request_id);
        let hi = format!("req|{:020}~", span.request_id);
        let buffered = ctx.store().range(Some(lo.as_bytes()), Some(hi.as_bytes()));
        let mut spans: Vec<CallSpan> = buffered
            .iter()
            .filter_map(|(_, v)| CallSpan::decode(v))
            .collect();
        // Complete once every span the front-end issued has arrived.
        let complete = spans.len() as u32 == span.total_spans;
        if !complete {
            return Ok(());
        }
        let request_id = span.request_id;
        let (tree, critical_ms) = self.assemble(&mut spans);
        ctx.send(
            "call-graphs",
            Some(Bytes::from(format!("req-{request_id}"))),
            Bytes::from(format!(
                "request {request_id} critical={critical_ms}ms\n{tree}"
            )),
        )?;
        if critical_ms >= self.slow_threshold_ms {
            let slowest = spans
                .iter()
                .max_by_key(|s| s.duration_ms)
                .expect("non-empty");
            ctx.send(
                "slow-calls",
                Some(Bytes::from(slowest.service.clone())),
                Bytes::from(format!(
                    "SLOW request={request_id} service={} took {}ms",
                    slowest.service, slowest.duration_ms
                )),
            )?;
        }
        // Clean the buffer for this request.
        for (k, _) in buffered {
            ctx.store().delete(k)?;
        }
        Ok(())
    }
}

fn main() -> liquid::Result<()> {
    let clock = SimClock::new(0);
    let liquid = Liquid::new(LiquidConfig::default(), clock.shared());
    // Spans are keyed by request id so one task sees a whole request.
    liquid.create_source_feed("rest-spans", FeedConfig::default().partitions(4))?;
    liquid.create_derived_feed(
        "call-graphs",
        FeedConfig::default().partitions(4),
        Lineage::new("call-graph-assembler", "v1", &["rest-spans"]),
    )?;
    liquid.create_derived_feed(
        "slow-calls",
        FeedConfig::default(),
        Lineage::new("call-graph-assembler", "v1", &["rest-spans"]),
    )?;

    liquid.submit_job(
        JobConfig::new("call-graph-assembler", &["rest-spans"]),
        ContainerRequest {
            cpu_per_tick: 100_000,
            memory_mb: 1024,
        },
        |_| {
            Box::new(CallGraphAssembler {
                slow_threshold_ms: 500,
            })
        },
    )?;

    // Emit spans for 200 requests, out of order and interleaved, keyed
    // by request id (semantic routing via key hash).
    let producer = liquid.producer("rest-spans")?;
    let mut gen = CallTraceGen::new(99).with_fanout(4, 10).with_slow_pct(5);
    let spans = gen.batch(200);
    let total_spans = spans.len();
    for span in spans {
        producer.send(Some(span.key()), span.encode())?;
    }
    let processed = liquid.run_until_idle(100)?;
    println!("assembled call graphs from {processed}/{total_spans} spans");

    let graphs_reader = liquid.reader_from_start("call-graphs", "dashboards")?;
    let graphs: Vec<String> = graphs_reader
        .poll_batches()?
        .into_iter()
        .flat_map(|(_, batch)| batch.into_messages())
        .map(|m| String::from_utf8_lossy(&m.value).to_string())
        .collect();
    println!("{} complete call graphs; first:", graphs.len());
    println!("{}", graphs.first().map(String::as_str).unwrap_or("-"));
    assert_eq!(graphs.len(), 200, "every request should assemble");

    let slow_reader = liquid.reader_from_start("slow-calls", "oncall")?;
    let slow: Vec<String> = slow_reader
        .poll_batches()?
        .into_iter()
        .flat_map(|(_, batch)| batch.into_messages())
        .map(|m| String::from_utf8_lossy(&m.value).to_string())
        .collect();
    println!("{} slow-call report(s):", slow.len());
    for s in slow.iter().take(3) {
        println!("  {s}");
    }
    println!("call_graph_assembly OK");
    Ok(())
}
