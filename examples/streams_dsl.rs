//! The declarative Stream DSL: ETL chains without hand-written tasks.
//!
//! Rebuilds the motivating pipeline of the paper's introduction — clean,
//! normalize, aggregate — as three declared chains over the same
//! source-of-truth feed, all running as ordinary Liquid jobs (stateful
//! ones get changelogs and checkpoints automatically).
//!
//! Run with: `cargo run --example streams_dsl`

use liquid::messaging::{Cluster, ClusterConfig, Producer, TopicConfig, TopicPartition};
use liquid::prelude::*;
use liquid::processing::dsl::{Record, Stream};
use liquid_workloads::activity::{ActivityEvent, ActivityGen};

fn main() -> liquid::Result<()> {
    let clock = SimClock::new(0);
    let cluster = Cluster::new(ClusterConfig::with_brokers(1), clock.shared());
    for topic in ["activity", "clean", "actions-per-user", "page-views"] {
        cluster.create_topic(topic, TopicConfig::with_partitions(2))?;
    }

    // Source data: 10,000 skewed activity events (some garbage mixed in).
    let producer = Producer::new(&cluster, "activity")?;
    let mut gen = ActivityGen::new(77, 2_000, 500);
    for event in gen.batch(10_000) {
        producer.send(Some(event.key()), event.encode())?;
    }
    for _ in 0..50 {
        producer.send(None, Bytes::from_static(b"%%corrupted%%"))?;
    }

    // Chain 1: clean + normalize (drop garbage, uppercase the action).
    let mut clean = Stream::from("activity")
        .filter(|r| ActivityEvent::decode(&r.value).is_some())
        .map(|r| {
            let e = ActivityEvent::decode(&r.value).expect("filtered");
            Record {
                key: r.key,
                value: Bytes::from(format!(
                    "user={} action={} page={}",
                    e.user_id,
                    e.action.as_str().to_uppercase(),
                    e.page_id
                )),
                timestamp: r.timestamp,
            }
        })
        .to("clean")
        .into_job(&cluster, "dsl-clean")?;

    // Chain 2: actions per user (stateful count, keyed by user).
    let mut per_user = Stream::from("activity")
        .filter(|r| ActivityEvent::decode(&r.value).is_some())
        .count_by_key()
        .to("actions-per-user")
        .into_job(&cluster, "dsl-per-user")?;

    // Chain 3: views per page. Re-keying needs a *repartition hop*:
    // the input is partitioned by user, so counting in place would give
    // per-partition partials. Stage A re-keys views by page and routes
    // them through an intermediate feed (key-hash partitioning moves
    // each page to one partition); stage B counts there. This is the
    // repartition-topic pattern the dataflow decoupling of §3.2 makes
    // cheap.
    cluster.create_topic("views-by-page", TopicConfig::with_partitions(2))?;
    let mut rekey = Stream::from("activity")
        .flat_map(|r| match ActivityEvent::decode(&r.value) {
            Some(e) if e.action.as_str() == "view" => vec![Record {
                key: Some(Bytes::from(format!("page-{}", e.page_id))),
                value: r.value,
                timestamp: r.timestamp,
            }],
            _ => vec![],
        })
        .to("views-by-page")
        .into_job(&cluster, "dsl-rekey")?;
    let mut per_page = Stream::from("views-by-page")
        .count_by_key()
        .to("page-views")
        .into_job(&cluster, "dsl-per-page")?;

    // Pump all chains (each with parallel tasks).
    loop {
        let n = clean.run_once_parallel()?
            + per_user.run_once_parallel()?
            + rekey.run_once_parallel()?
            + per_page.run_once_parallel()?;
        if n == 0 {
            break;
        }
    }

    let count = |topic: &str| -> usize {
        (0..2)
            .map(|p| {
                cluster
                    .fetch_batch(&TopicPartition::new(topic, p), 0, u64::MAX)
                    .map(|b| b.len())
                    .unwrap_or(0)
            })
            .sum()
    };
    println!(
        "clean feed:        {} records (garbage dropped)",
        count("clean")
    );
    println!(
        "actions-per-user:  {} running-count updates",
        count("actions-per-user")
    );
    println!(
        "page-views:        {} view-count updates",
        count("page-views")
    );
    assert_eq!(count("clean"), 10_000);
    assert_eq!(count("actions-per-user"), 10_000);
    assert!(count("page-views") > 0 && count("page-views") < 10_000);

    // Top pages from chain 3's state (aggregates are queryable live).
    let mut tops: Vec<(String, u64)> = Vec::new();
    for p in 0..2 {
        if let Some(store) = per_page.state(p) {
            for (k, v) in store.range(Some(b"dsl|count|"), Some(b"dsl|count~")) {
                let key = String::from_utf8_lossy(&k[b"dsl|count|".len()..]).to_string();
                // Counters are stored as u64 little-endian.
                let n = v.as_ref().try_into().map(u64::from_le_bytes).unwrap_or(0);
                tops.push((key, n));
            }
        }
    }
    tops.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("top pages by views:");
    for (page, views) in tops.iter().take(5) {
        println!("  {page}: {views}");
    }
    assert!(tops[0].1 >= tops.last().unwrap().1);
    // Thanks to the repartition hop, each page has exactly one total.
    let mut names: Vec<&String> = tops.iter().map(|(p, _)| p).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), tops.len(), "one global count per page");
    let total_views: u64 = tops.iter().map(|(_, n)| n).sum();
    println!("total views: {total_views}");
    println!("streams_dsl OK");
    Ok(())
}
