//! Site-speed monitoring (paper §5.1, "Site speed monitoring").
//!
//! Real-user-monitoring events (page loads with CDN and region
//! dimensions) flow into Liquid; a stateful job aggregates load times in
//! one-minute tumbling windows per CDN and emits alerts when a CDN's
//! mean load time spikes. A slowdown is injected into one CDN and the
//! pipeline detects it "within minutes as opposed to hours".
//!
//! Run with: `cargo run --example site_speed_monitoring`

use liquid::prelude::*;
use liquid_processing::window::TumblingWindow;
use liquid_workloads::rum::{RumEvent, RumGen, CDNS};

/// Aggregates load times per (window, cdn) and alerts on spikes.
struct SpeedMonitor {
    window: TumblingWindow,
    /// Mean load time considered healthy (ms).
    alert_threshold_ms: u64,
}

impl StreamTask for SpeedMonitor {
    fn process(&mut self, m: &Message, ctx: &mut TaskContext<'_>) -> liquid_processing::Result<()> {
        let Some(event) = RumEvent::decode(&m.value) else {
            return Ok(());
        };
        // Two aggregates per (window, cdn): total load time and count.
        let sum_key = format!("sum|{}", event.cdn);
        let cnt_key = format!("cnt|{}", event.cdn);
        self.window.add(
            ctx.store(),
            event.timestamp,
            sum_key.as_bytes(),
            event.load_time_ms,
        )?;
        self.window
            .add(ctx.store(), event.timestamp, cnt_key.as_bytes(), 1)?;
        Ok(())
    }

    fn window(&mut self, ctx: &mut TaskContext<'_>) -> liquid_processing::Result<()> {
        // Close finished windows: compute means, publish stats + alerts.
        let closed = self.window.close_ready(ctx.store())?;
        let mut sums = std::collections::HashMap::new();
        let mut counts = std::collections::HashMap::new();
        for r in closed {
            let tag = String::from_utf8_lossy(&r.key).to_string();
            if let Some(cdn) = tag.strip_prefix("sum|") {
                sums.insert((r.window_start, cdn.to_string()), r.value);
            } else if let Some(cdn) = tag.strip_prefix("cnt|") {
                counts.insert((r.window_start, cdn.to_string()), r.value);
            }
        }
        for ((start, cdn), sum) in sums {
            let count = counts.get(&(start, cdn.clone())).copied().unwrap_or(0);
            if count == 0 {
                continue;
            }
            let mean = sum / count;
            ctx.send(
                "cdn-stats",
                Some(Bytes::from(cdn.clone())),
                Bytes::from(format!("{start}|{cdn}|mean={mean}ms|n={count}")),
            )?;
            if mean > self.alert_threshold_ms {
                ctx.send(
                    "speed-alerts",
                    Some(Bytes::from(cdn.clone())),
                    Bytes::from(format!(
                        "ALERT window={start} cdn={cdn} mean={mean}ms (threshold {}ms)",
                        self.alert_threshold_ms
                    )),
                )?;
            }
        }
        Ok(())
    }
}

fn main() -> liquid::Result<()> {
    let clock = SimClock::new(0);
    let liquid = Liquid::new(LiquidConfig::default(), clock.shared());
    liquid.create_source_feed("rum-events", FeedConfig::default())?;
    liquid.create_derived_feed(
        "cdn-stats",
        FeedConfig::default(),
        Lineage::new("speed-monitor", "v1", &["rum-events"]),
    )?;
    liquid.create_derived_feed(
        "speed-alerts",
        FeedConfig::default(),
        Lineage::new("speed-monitor", "v1", &["rum-events"]),
    )?;

    let handle = liquid.submit_job(
        JobConfig::new("speed-monitor", &["rum-events"]),
        ContainerRequest {
            cpu_per_tick: 100_000,
            memory_mb: 512,
        },
        |_| {
            Box::new(SpeedMonitor {
                window: TumblingWindow::new(60_000), // 1-minute windows
                alert_threshold_ms: 800,
            })
        },
    )?;

    // Phase 1: healthy traffic (~3 windows worth).
    let producer = liquid.producer("rum-events")?;
    let mut gen = RumGen::new(7, 200, 150);
    for event in gen.batch(20_000) {
        producer.send(Some(event.key()), event.encode())?;
    }
    liquid.run_until_idle(50)?;
    liquid.with_job(handle, |mj| mj.job_mut().tick_windows())??;

    // Phase 2: cdn-eu degrades 10x.
    println!("injecting 10x slowdown into {}", CDNS[2]);
    gen.inject_cdn_slowdown(2, 10);
    for event in gen.batch(20_000) {
        producer.send(Some(event.key()), event.encode())?;
    }
    liquid.run_until_idle(50)?;
    liquid.with_job(handle, |mj| mj.job_mut().tick_windows())??;

    // Read the alerts.
    let alerts_reader = liquid.reader_from_start("speed-alerts", "oncall")?;
    let alerts: Vec<String> = alerts_reader
        .poll_batches()?
        .into_iter()
        .flat_map(|(_, batch)| batch.into_messages())
        .map(|m| String::from_utf8_lossy(&m.value).to_string())
        .collect();
    println!("{} alert(s) raised:", alerts.len());
    for a in alerts.iter().take(5) {
        println!("  {a}");
    }
    assert!(
        alerts.iter().any(|a| a.contains(CDNS[2])),
        "the degraded CDN must be flagged"
    );
    assert!(
        !alerts.iter().any(|a| a.contains(CDNS[0])),
        "healthy CDNs must not be flagged"
    );

    // And the per-window stats stream back-ends consume.
    let stats_reader = liquid.reader_from_start("cdn-stats", "dashboards")?;
    let stats: usize = stats_reader
        .poll_batches()?
        .iter()
        .map(|(_, b)| b.len())
        .sum();
    println!("{stats} per-window CDN stat rows published");
    println!("site_speed_monitoring OK");
    Ok(())
}
