//! Quickstart: the whole Liquid loop in one file.
//!
//! Publishes raw user-activity events to a source-of-truth feed, runs a
//! cleaning ETL job under a resource container, and consumes the derived
//! feed — Figure 2 of the paper, end to end.
//!
//! Run with: `cargo run --example quickstart`

use liquid::prelude::*;
use liquid_workloads::activity::ActivityGen;

fn main() -> liquid::Result<()> {
    // 1. Boot the stack: one broker, one processing node.
    let clock = SimClock::new(0);
    let liquid = Liquid::new(LiquidConfig::default(), clock.shared());

    // 2. Feeds: a source-of-truth feed for raw events and a derived
    //    feed (with lineage) for the cleaned stream.
    liquid.create_source_feed("user-activity", FeedConfig::default().partitions(2))?;
    liquid.create_derived_feed(
        "user-activity-clean",
        FeedConfig::default().partitions(2),
        Lineage::new("cleaner", "v1", &["user-activity"]),
    )?;

    // 3. Publish 1,000 synthetic activity events (Zipf-skewed users).
    let producer = liquid.producer("user-activity")?;
    let mut gen = ActivityGen::new(42, 500, 100);
    for event in gen.batch(1_000) {
        producer.send(Some(event.key()), event.encode())?;
    }
    println!("published 1000 events to 'user-activity'");

    // 4. Submit the cleaning job (ETL-as-a-service): normalize the
    //    action field and drop malformed events.
    liquid.submit_job(
        JobConfig::new("cleaner", &["user-activity"]).stateless(),
        ContainerRequest {
            cpu_per_tick: 10_000,
            memory_mb: 256,
        },
        |_| {
            Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                let Some(event) = liquid_workloads::activity::ActivityEvent::decode(&m.value)
                else {
                    return Ok(()); // drop malformed
                };
                let cleaned = format!(
                    "user={} action={} page={} ts={}",
                    event.user_id,
                    event.action.as_str().to_uppercase(),
                    event.page_id,
                    event.timestamp
                );
                ctx.send("user-activity-clean", m.key.clone(), Bytes::from(cleaned))?;
                Ok(())
            }))
        },
    )?;

    // 5. Pump the stack until the job drains its input.
    let processed = liquid.run_until_idle(100)?;
    println!("cleaning job processed {processed} events");

    // 6. Consume the derived feed.
    let reader = liquid.reader_from_start("user-activity-clean", "quickstart-reader")?;
    let batches = reader.poll_batches()?;
    let total: usize = batches.iter().map(|(_, b)| b.len()).sum();
    println!("consumed {total} cleaned events; first three:");
    if let Some((_, batch)) = batches.first() {
        for m in batch.records().iter().take(3) {
            println!(
                "  offset={} {}",
                m.offset,
                String::from_utf8_lossy(&m.value)
            );
        }
    }

    // 7. Lineage: where did the derived feed come from?
    let lineage = liquid
        .lineage()
        .get("user-activity-clean")
        .expect("derived feed");
    println!(
        "lineage: user-activity-clean <- job '{}' {} <- {:?}",
        lineage.job, lineage.version, lineage.inputs
    );

    assert_eq!(processed, 1_000);
    assert_eq!(total, 1_000);
    println!("quickstart OK");
    Ok(())
}
