//! Data cleaning and normalization with reprocessing (paper §5.1).
//!
//! The paper's flagship use case: user-generated content must be
//! cleaned (1) with low latency as new content arrives, and (2)
//! re-processed from scratch whenever the cleaning *algorithm* changes,
//! so that all data was cleaned by the same code. Before Liquid these
//! were two separate sub-systems; with Liquid they are one job plus
//! rewindability.
//!
//! This example runs cleaner v1 incrementally, then ships cleaner v2
//! (better normalization) and reprocesses the full history into a new
//! derived feed — the Kappa-style upgrade of §2.2, with lineage and
//! offset-manager annotations recording which version produced what.
//!
//! Run with: `cargo run --example data_cleaning`

use liquid::prelude::*;
use liquid_workloads::profiles::{ProfileUpdate, ProfileUpdateGen};

fn cleaner(version: &'static str, output: &'static str) -> impl FnMut(u32) -> Box<dyn StreamTask> {
    move |_| {
        Box::new(FnTask(move |m: &Message, ctx: &mut TaskContext<'_>| {
            let Some(update) = ProfileUpdate::decode(&m.value) else {
                return Ok(());
            };
            // v1 lower-cases; v2 also collapses whitespace and strips
            // the revision prefix — a realistic algorithm change.
            let cleaned = match version {
                "v1" => update.payload.to_lowercase(),
                _ => update
                    .payload
                    .to_lowercase()
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
                    .replace("headline ", ""),
            };
            ctx.send(
                output,
                Some(m.key.clone().unwrap_or_default()),
                Bytes::from(format!("{version}|{cleaned}")),
            )?;
            Ok(())
        }))
    }
}

fn main() -> liquid::Result<()> {
    let clock = SimClock::new(0);
    let liquid = Liquid::new(LiquidConfig::default(), clock.shared());
    liquid.create_source_feed("profiles-raw", FeedConfig::default())?;
    liquid.create_derived_feed(
        "profiles-clean",
        FeedConfig::default().compacted(),
        Lineage::new("profile-cleaner", "v1", &["profiles-raw"]),
    )?;

    // Phase 1: v1 cleans 5,000 historical updates incrementally.
    let producer = liquid.producer("profiles-raw")?;
    let mut gen = ProfileUpdateGen::new(3, 1_000, 1.0);
    for u in gen.batch(5_000) {
        producer.send(Some(u.key()), u.encode())?;
    }
    let v1 = liquid.submit_job(
        JobConfig::new("profile-cleaner", &["profiles-raw"])
            .version("v1")
            .stateless()
            .checkpoint_every(500),
        ContainerRequest {
            cpu_per_tick: 100_000,
            memory_mb: 256,
        },
        cleaner("v1", "profiles-clean"),
    )?;
    let cleaned_v1 = liquid.run_until_idle(100)?;
    liquid.with_job(v1, |mj| mj.job_mut().checkpoint().unwrap())?;
    println!("v1 cleaned {cleaned_v1} updates (nearline path)");

    // New content keeps arriving; v1 handles just the delta.
    for u in gen.batch(500) {
        producer.send(Some(u.key()), u.encode())?;
    }
    let delta = liquid.run_until_idle(100)?;
    liquid.with_job(v1, |mj| mj.job_mut().checkpoint().unwrap())?;
    println!("v1 cleaned {delta} new updates incrementally");
    assert_eq!(delta, 500);

    // Phase 2: the algorithm changes. Reprocess *everything* with v2
    // into a fresh derived feed, in parallel with v1 (resource
    // isolation means they don't interfere; A/B testing per §5.1).
    liquid.create_derived_feed(
        "profiles-clean-v2",
        FeedConfig::default().compacted(),
        Lineage::new("profile-cleaner", "v2", &["profiles-raw"]),
    )?;
    let _v2 = liquid.submit_job(
        JobConfig::new("profile-cleaner-v2", &["profiles-raw"])
            .version("v2")
            .stateless()
            .start_from(JobStart::Earliest),
        ContainerRequest {
            cpu_per_tick: 100_000,
            memory_mb: 256,
        },
        cleaner("v2", "profiles-clean-v2"),
    )?;
    let reprocessed = liquid.run_until_idle(100)?;
    println!("v2 reprocessed {reprocessed} updates from the beginning of the log");
    assert_eq!(reprocessed, 5_500);

    // Compare outputs: every v2 record is normalized with the new code.
    let v2_reader = liquid.reader_from_start("profiles-clean-v2", "qa")?;
    let v2_rows: Vec<String> = v2_reader
        .poll_batches()?
        .into_iter()
        .flat_map(|(_, batch)| batch.into_messages())
        .map(|m| String::from_utf8_lossy(&m.value).to_string())
        .collect();
    assert!(v2_rows.iter().all(|r| r.starts_with("v2|")));
    println!(
        "sample v2 output: {}",
        &v2_rows[0][..v2_rows[0].len().min(60)]
    );

    // Lineage records both derivations.
    let chain = liquid.lineage().provenance("profiles-clean-v2");
    println!(
        "lineage of profiles-clean-v2: job '{}' version {} over {:?}",
        chain[0].1.job, chain[0].1.version, chain[0].1.inputs
    );
    assert_eq!(chain[0].1.version, "v2");

    // The offset manager remembers which offsets each version covered —
    // back-ends can tell "cleaned by v1" from "cleaned by v2" (§4.2).
    let tp = TopicPartition::new("profiles-raw", 0);
    let v1_commit = liquid
        .cluster()
        .offsets()
        .last_commit_with("job-profile-cleaner", &tp, "version", "v1")
        .expect("v1 checkpointed");
    println!(
        "offset manager: v1 reached offset {} of profiles-raw",
        v1_commit.offset
    );
    assert_eq!(v1_commit.offset, 5_500);
    println!("data_cleaning OK");
    Ok(())
}
