//! Multi-datacenter deployment (paper §5).
//!
//! "The messaging layer … runs in 5 co-location centers, spanning
//! different geographical areas." Events are ingested in one colo and
//! mirrored to the others, so back-end systems in every region consume
//! locally. A regional outage leaves the other colos serving; when the
//! mirror resumes it catches up from its position in the source log.
//!
//! Run with: `cargo run --example multi_datacenter`

use liquid::messaging::{
    Cluster, ClusterConfig, MirrorMaker, Producer, TopicConfig, TopicPartition,
};
use liquid::prelude::*;
use liquid_workloads::activity::ActivityGen;

const COLOS: [&str; 5] = ["us-west", "us-east", "eu", "apac", "latam"];

fn main() -> liquid::Result<()> {
    let clock = SimClock::new(0);
    // One broker cluster per colo; us-west is the ingest site.
    let clusters: Vec<Cluster> = COLOS
        .iter()
        .map(|_| Cluster::new(ClusterConfig::with_brokers(2), clock.shared()))
        .collect();
    let ingest = &clusters[0];
    ingest.create_topic(
        "user-activity",
        TopicConfig::with_partitions(4).replication(2),
    )?;

    // Mirrors from the ingest colo to every other colo.
    let mut mirrors: Vec<MirrorMaker> = clusters[1..]
        .iter()
        .map(|dst| MirrorMaker::new(ingest, dst, &["user-activity"]))
        .collect::<std::result::Result<_, _>>()?;

    // Ingest 5,000 events in us-west.
    let producer = Producer::new(ingest, "user-activity")?;
    let mut gen = ActivityGen::new(11, 1_000, 200);
    for event in gen.batch(5_000) {
        producer.send(Some(event.key()), event.encode())?;
    }
    ingest.replicate_tick()?;

    // Pump the mirrors.
    for (mirror, colo) in mirrors.iter_mut().zip(&COLOS[1..]) {
        let copied = mirror.run_until_caught_up(20)?;
        println!(
            "{colo}: mirrored {copied} events (lag now {})",
            mirror.lag()?
        );
    }

    // Every colo serves the full feed locally.
    for (cluster, colo) in clusters.iter().zip(&COLOS) {
        let total: usize = (0..4)
            .map(|p| {
                cluster
                    .fetch_batch(&TopicPartition::new("user-activity", p), 0, u64::MAX)
                    .map(|b| b.len())
                    .unwrap_or(0)
            })
            .sum();
        println!("{colo}: {total} events locally readable");
        assert_eq!(total, 5_000);
    }

    // Regional incident: eu's mirror stalls while ingest continues.
    println!("\n-- eu mirror stalls; ingest continues --");
    for event in gen.batch(1_000) {
        producer.send(Some(event.key()), event.encode())?;
    }
    ingest.replicate_tick()?;
    // Other colos keep up.
    for (i, mirror) in mirrors.iter_mut().enumerate() {
        if COLOS[i + 1] == "eu" {
            continue; // stalled
        }
        mirror.run_until_caught_up(20)?;
    }
    let eu_mirror = &mut mirrors[1];
    assert_eq!(COLOS[2], "eu");
    println!("eu lag while stalled: {}", eu_mirror.lag()?);
    assert_eq!(eu_mirror.lag()?, 1_000);

    // Recovery: the mirror resumes from its offsets — no resync from
    // scratch, exactly the rewindability property (§3.1).
    let caught_up = eu_mirror.run_until_caught_up(20)?;
    println!("eu recovered by copying {caught_up} events");
    assert_eq!(caught_up, 1_000);

    // Cross-checks: every colo identical.
    let reference: u64 = (0..4)
        .map(|p| {
            ingest
                .latest_offset(&TopicPartition::new("user-activity", p))
                .unwrap()
        })
        .sum();
    for (cluster, colo) in clusters.iter().zip(&COLOS).skip(1) {
        let local: u64 = (0..4)
            .map(|p| {
                cluster
                    .latest_offset(&TopicPartition::new("user-activity", p))
                    .unwrap()
            })
            .sum();
        assert_eq!(local, reference, "{colo} diverged");
    }
    println!(
        "\nall {} colos in sync at {reference} total offsets",
        COLOS.len()
    );
    println!("multi_datacenter OK");
    Ok(())
}
