//! Data lineage for derived feeds (paper §3).
//!
//! "Derived feeds contain lineage information, i.e. annotations about
//! how the data was computed, which are stored by the messaging layer."
//! Lineage records live in the coordination service under
//! `/liquid/lineage/<feed>` so that any consumer can trace a derived
//! feed back through the jobs that produced it to the source-of-truth
//! feeds.

use liquid_coord::CoordService;

/// How a derived feed was computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lineage {
    /// Job that produces the feed.
    pub job: String,
    /// Software version of that job.
    pub version: String,
    /// Input feeds the job consumes.
    pub inputs: Vec<String>,
}

impl Lineage {
    /// Creates a lineage record.
    pub fn new(job: &str, version: &str, inputs: &[&str]) -> Self {
        Lineage {
            job: job.to_string(),
            version: version.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        format!("{}|{}|{}", self.job, self.version, self.inputs.join(",")).into_bytes()
    }

    fn decode(data: &[u8]) -> Option<Lineage> {
        let s = std::str::from_utf8(data).ok()?;
        let mut it = s.splitn(3, '|');
        let job = it.next()?.to_string();
        let version = it.next()?.to_string();
        let inputs_raw = it.next()?;
        let inputs = if inputs_raw.is_empty() {
            Vec::new()
        } else {
            inputs_raw.split(',').map(str::to_string).collect()
        };
        Some(Lineage {
            job,
            version,
            inputs,
        })
    }
}

/// Registry of lineage records, stored in the coordination service.
pub struct LineageRegistry {
    coord: CoordService,
}

impl LineageRegistry {
    /// Creates the registry over the given coordination service.
    pub fn new(coord: CoordService) -> Self {
        coord.ensure_path("/liquid/lineage").ok();
        LineageRegistry { coord }
    }

    /// Records the lineage of a derived feed (overwrites any previous
    /// record — e.g. after a reprocessing run with a new version).
    pub fn record(&self, feed: &str, lineage: &Lineage) -> crate::Result<()> {
        let path = format!("/liquid/lineage/{feed}");
        self.coord.ensure_path(&path)?;
        self.coord.set_data(&path, &lineage.encode(), None)?;
        Ok(())
    }

    /// Lineage of one feed, if it is derived.
    pub fn get(&self, feed: &str) -> Option<Lineage> {
        let (data, _) = self
            .coord
            .get_data(&format!("/liquid/lineage/{feed}"))
            .ok()?;
        Lineage::decode(&data)
    }

    /// Full provenance chain: the feed's lineage, then its inputs'
    /// lineages, transitively, in breadth-first order. Source-of-truth
    /// feeds (no lineage) terminate branches.
    pub fn provenance(&self, feed: &str) -> Vec<(String, Lineage)> {
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::from([feed.to_string()]);
        let mut seen = std::collections::HashSet::new();
        while let Some(f) = queue.pop_front() {
            if !seen.insert(f.clone()) {
                continue;
            }
            if let Some(l) = self.get(&f) {
                for input in &l.inputs {
                    queue.push_back(input.clone());
                }
                out.push((f, l));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_sim::clock::SimClock;

    fn registry() -> LineageRegistry {
        LineageRegistry::new(CoordService::new(SimClock::new(0).shared()))
    }

    #[test]
    fn encode_decode_roundtrip() {
        let l = Lineage::new("cleaner", "v2", &["raw", "profiles"]);
        assert_eq!(Lineage::decode(&l.encode()), Some(l));
        let no_inputs = Lineage::new("gen", "v1", &[]);
        assert_eq!(Lineage::decode(&no_inputs.encode()), Some(no_inputs));
    }

    #[test]
    fn record_and_get() {
        let r = registry();
        let l = Lineage::new("job", "v1", &["src"]);
        r.record("derived", &l).unwrap();
        assert_eq!(r.get("derived"), Some(l));
        assert_eq!(r.get("src"), None, "source feeds have no lineage");
    }

    #[test]
    fn record_overwrites_on_reprocess() {
        let r = registry();
        r.record("d", &Lineage::new("job", "v1", &["src"])).unwrap();
        r.record("d", &Lineage::new("job", "v2", &["src"])).unwrap();
        assert_eq!(r.get("d").unwrap().version, "v2");
    }

    #[test]
    fn provenance_walks_the_chain() {
        let r = registry();
        r.record("gold", &Lineage::new("aggregate", "v1", &["silver"]))
            .unwrap();
        r.record(
            "silver",
            &Lineage::new("clean", "v3", &["bronze", "profiles"]),
        )
        .unwrap();
        let chain = r.provenance("gold");
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].0, "gold");
        assert_eq!(chain[1].0, "silver");
        assert_eq!(chain[1].1.inputs, vec!["bronze", "profiles"]);
    }

    #[test]
    fn provenance_handles_cycles() {
        let r = registry();
        r.record("a", &Lineage::new("j1", "v1", &["b"])).unwrap();
        r.record("b", &Lineage::new("j2", "v1", &["a"])).unwrap();
        let chain = r.provenance("a");
        assert_eq!(chain.len(), 2, "cycle terminates");
    }
}
