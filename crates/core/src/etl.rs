//! ETL-as-a-service: jobs executing under container resource quotas.
//!
//! The paper (§2.1, §3.2, §4.4): the data integration stack executes
//! ETL jobs centrally for many teams and must guarantee a minimum
//! service level per job — a resource-intensive job must not degrade
//! its neighbours. Each managed job runs inside a
//! [`liquid_yarn`] container; every scheduler tick it may process at
//! most as many messages as the CPU it is granted (1 message = 1 CPU
//! work unit), so with isolation enabled a noisy job is capped at its
//! quota while without isolation it drains the node's shared pool.

use std::sync::Arc;

use liquid_processing::Job;
use liquid_sim::stats::Histogram;
use liquid_yarn::{ContainerId, ResourceManager};

/// A job running under a resource container.
pub struct ManagedJob {
    /// Job name (from its config).
    pub name: String,
    job: Job,
    container: ContainerId,
    rm: Arc<ResourceManager>,
    /// Consumer lag observed after each tick (messages): the service
    /// metric the isolation experiment reports percentiles over.
    lag_history: Histogram,
    ticks: u64,
}

impl ManagedJob {
    pub(crate) fn new(job: Job, container: ContainerId, rm: Arc<ResourceManager>) -> Self {
        ManagedJob {
            name: job.config().name.clone(),
            job,
            container,
            rm,
            lag_history: Histogram::new(),
            ticks: 0,
        }
    }

    /// Runs one service tick: asks the container for as much CPU as the
    /// job has lag, processes that many messages, and records the
    /// post-tick lag. Returns messages processed.
    pub fn tick(&mut self) -> crate::Result<u64> {
        let want = self.job.lag()?;
        let granted = if self.rm.is_running(self.container) {
            self.rm.try_consume(self.container, want)?
        } else {
            0 // container still pending placement
        };
        let n = self.job.run_once_limited(granted)?;
        let lag_after = self.job.lag()?;
        self.lag_history.record(lag_after);
        self.ticks += 1;
        Ok(n)
    }

    /// The underlying job.
    pub fn job_mut(&mut self) -> &mut Job {
        &mut self.job
    }

    /// The underlying job (read access).
    pub fn job(&self) -> &Job {
        &self.job
    }

    /// This job's container.
    pub fn container(&self) -> ContainerId {
        self.container
    }

    /// Post-tick lag distribution.
    pub fn lag_stats(&self) -> &Histogram {
        &self.lag_history
    }

    /// Ticks executed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_messaging::{
        AckLevel, Cluster, ClusterConfig, Message, TopicConfig, TopicPartition,
    };
    use liquid_processing::{FnTask, JobConfig, TaskContext};
    use liquid_sim::clock::SimClock;
    use liquid_yarn::ContainerRequest;

    fn setup() -> (Cluster, Arc<ResourceManager>) {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic("in", TopicConfig::with_partitions(1))
            .unwrap();
        let rm = Arc::new(ResourceManager::new());
        rm.add_node(100, 4096);
        (c, rm)
    }

    fn noop_job(c: &Cluster, name: &str) -> Job {
        Job::new(c, JobConfig::new(name, &["in"]).stateless(), |_| {
            Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(())))
        })
        .unwrap()
    }

    fn fill(c: &Cluster, n: u64) {
        let tp = TopicPartition::new("in", 0);
        for i in 0..n {
            c.produce_to(
                &tp,
                None,
                bytes::Bytes::from(format!("m{i}")),
                AckLevel::Leader,
            )
            .unwrap();
        }
    }

    #[test]
    fn tick_is_bounded_by_container_quota() {
        let (c, rm) = setup();
        fill(&c, 500);
        let container = rm
            .submit(
                "j",
                ContainerRequest {
                    cpu_per_tick: 50,
                    memory_mb: 128,
                },
            )
            .unwrap();
        let mut mj = ManagedJob::new(noop_job(&c, "j"), container, rm.clone());
        rm.tick();
        assert_eq!(mj.tick().unwrap(), 50, "quota caps throughput");
        assert_eq!(mj.tick().unwrap(), 0, "budget exhausted this tick");
        rm.tick();
        assert_eq!(mj.tick().unwrap(), 50);
        assert_eq!(mj.job().processed(), 100);
        assert!(mj.lag_stats().count() >= 3);
        assert_eq!(mj.ticks(), 3);
    }

    #[test]
    fn pending_container_processes_nothing() {
        let (c, rm) = setup();
        fill(&c, 10);
        // Node has 4096 MB; this container cannot place.
        let blocked = rm.submit(
            "big",
            ContainerRequest {
                cpu_per_tick: 10,
                memory_mb: 9000,
            },
        );
        assert!(blocked.is_err(), "unsatisfiable request rejected");
        // A placeable one that must wait behind another reservation.
        let hog = rm
            .submit(
                "hog",
                ContainerRequest {
                    cpu_per_tick: 10,
                    memory_mb: 4000,
                },
            )
            .unwrap();
        let waiting = rm
            .submit(
                "waiting",
                ContainerRequest {
                    cpu_per_tick: 10,
                    memory_mb: 4000,
                },
            )
            .unwrap();
        let mut mj = ManagedJob::new(noop_job(&c, "waiting"), waiting, rm.clone());
        rm.tick();
        assert_eq!(mj.tick().unwrap(), 0, "no container, no work");
        rm.release(hog).unwrap();
        rm.tick();
        assert_eq!(mj.tick().unwrap(), 10);
    }
}
