//! Access control for feeds (paper §2.1).
//!
//! "Access control is necessary to ensure that no faulty or
//! misconfigured back-end systems can compromise the data of other
//! applications." The stack tracks per-principal grants per feed;
//! principal-scoped producer/consumer constructors on
//! [`Liquid`](crate::stack::Liquid) refuse handles the principal is not
//! entitled to. Feeds with no grants at all remain open (opt-in
//! governance, matching how organizations roll ACLs out).

use std::collections::HashMap;

use liquid_sim::lockdep::RwLock;

/// What a principal may do with a feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Consume only.
    Read,
    /// Produce only.
    Write,
    /// Produce and consume.
    ReadWrite,
}

impl Access {
    fn allows_read(self) -> bool {
        matches!(self, Access::Read | Access::ReadWrite)
    }

    fn allows_write(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }
}

/// Per-feed access-control lists.
pub struct AclRegistry {
    /// feed → (principal → access)
    grants: RwLock<HashMap<String, HashMap<String, Access>>>,
}

impl Default for AclRegistry {
    fn default() -> Self {
        AclRegistry::new()
    }
}

impl AclRegistry {
    /// Creates an empty registry (everything open).
    pub fn new() -> Self {
        AclRegistry {
            grants: RwLock::new("acl.grants", HashMap::new()),
        }
    }

    /// Grants `principal` the given access to `feed`. The first grant
    /// on a feed closes it to everyone else.
    pub fn grant(&self, principal: &str, feed: &str, access: Access) {
        self.grants
            .write()
            .entry(feed.to_string())
            .or_default()
            .insert(principal.to_string(), access);
    }

    /// Revokes a principal's access to a feed.
    pub fn revoke(&self, principal: &str, feed: &str) {
        if let Some(feed_grants) = self.grants.write().get_mut(feed) {
            feed_grants.remove(principal);
        }
    }

    /// Whether `feed` is governed (has at least one grant).
    pub fn is_governed(&self, feed: &str) -> bool {
        self.grants.read().get(feed).is_some_and(|g| !g.is_empty())
    }

    /// Whether `principal` may read `feed`.
    pub fn can_read(&self, principal: &str, feed: &str) -> bool {
        let grants = self.grants.read();
        match grants.get(feed).filter(|g| !g.is_empty()) {
            None => true, // ungoverned feeds are open
            Some(g) => g.get(principal).is_some_and(|a| a.allows_read()),
        }
    }

    /// Whether `principal` may write `feed`.
    pub fn can_write(&self, principal: &str, feed: &str) -> bool {
        let grants = self.grants.read();
        match grants.get(feed).filter(|g| !g.is_empty()) {
            None => true,
            Some(g) => g.get(principal).is_some_and(|a| a.allows_write()),
        }
    }

    /// All grants for a feed, sorted by principal.
    pub fn grants_for(&self, feed: &str) -> Vec<(String, Access)> {
        let mut v: Vec<(String, Access)> = self
            .grants
            .read()
            .get(feed)
            .map(|g| g.iter().map(|(p, &a)| (p.clone(), a)).collect())
            .unwrap_or_default();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungoverned_feeds_are_open() {
        let acl = AclRegistry::new();
        assert!(acl.can_read("anyone", "events"));
        assert!(acl.can_write("anyone", "events"));
        assert!(!acl.is_governed("events"));
    }

    #[test]
    fn first_grant_closes_the_feed() {
        let acl = AclRegistry::new();
        acl.grant("team-a", "events", Access::ReadWrite);
        assert!(acl.is_governed("events"));
        assert!(acl.can_read("team-a", "events"));
        assert!(acl.can_write("team-a", "events"));
        assert!(!acl.can_read("team-b", "events"));
        assert!(!acl.can_write("team-b", "events"));
    }

    #[test]
    fn read_and_write_are_separate() {
        let acl = AclRegistry::new();
        acl.grant("producer-svc", "events", Access::Write);
        acl.grant("dashboards", "events", Access::Read);
        assert!(acl.can_write("producer-svc", "events"));
        assert!(!acl.can_read("producer-svc", "events"));
        assert!(acl.can_read("dashboards", "events"));
        assert!(!acl.can_write("dashboards", "events"));
    }

    #[test]
    fn revoke_removes_access() {
        let acl = AclRegistry::new();
        acl.grant("a", "f", Access::ReadWrite);
        acl.grant("b", "f", Access::Read);
        acl.revoke("b", "f");
        assert!(!acl.can_read("b", "f"));
        assert!(acl.can_read("a", "f"), "other grants unaffected");
    }

    #[test]
    fn revoking_all_reopens() {
        let acl = AclRegistry::new();
        acl.grant("a", "f", Access::ReadWrite);
        acl.revoke("a", "f");
        assert!(!acl.is_governed("f"));
        assert!(acl.can_read("anyone", "f"));
    }

    #[test]
    fn grants_listing_sorted() {
        let acl = AclRegistry::new();
        acl.grant("zeta", "f", Access::Read);
        acl.grant("alpha", "f", Access::Write);
        let g = acl.grants_for("f");
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].0, "alpha");
        assert_eq!(acl.grants_for("other"), vec![]);
    }

    #[test]
    fn feeds_are_independent() {
        let acl = AclRegistry::new();
        acl.grant("a", "governed", Access::Read);
        assert!(acl.can_write("b", "open"));
        assert!(!acl.can_write("b", "governed"));
    }
}
