//! The integrated Liquid stack: feeds + jobs + resources in one handle.

use std::collections::HashMap;
use std::sync::Arc;

use liquid_messaging::consumer::StartPosition;
use liquid_messaging::{Cluster, ClusterConfig, Consumer, Producer, TopicConfig, TopicPartition};
use liquid_processing::{Job, JobConfig, StreamTask};
use liquid_sim::clock::SharedClock;
use liquid_sim::failure::FailureInjector;
use liquid_sim::lockdep::Mutex;
use liquid_yarn::{ContainerRequest, ResourceManager};

use crate::acl::{Access, AclRegistry};
use crate::etl::ManagedJob;
use crate::lineage::{Lineage, LineageRegistry};
use crate::LiquidError;

/// Stack-wide configuration.
#[derive(Debug, Clone)]
pub struct LiquidConfig {
    /// Brokers in the messaging layer.
    pub brokers: u32,
    /// Follower lag tolerated inside the ISR.
    pub replica_lag_max: u64,
    /// Processing nodes as `(cpu_per_tick, memory_mb)`.
    pub nodes: Vec<(u64, u64)>,
    /// Fault injector for the cluster's replication / election / offset
    /// paths (chaos testing). Disabled by default.
    pub injector: FailureInjector,
}

impl Default for LiquidConfig {
    fn default() -> Self {
        LiquidConfig {
            brokers: 1,
            replica_lag_max: 0,
            nodes: vec![(1_000_000, 16_384)],
            injector: FailureInjector::disabled(),
        }
    }
}

/// Whether a feed is primary data or computed from other feeds (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedKind {
    /// Primary data, not generated within the system.
    SourceOfTruth,
    /// Results of processing source-of-truth or other derived feeds;
    /// carries lineage.
    Derived,
}

/// Per-feed configuration, mapped onto a topic.
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// Partitions.
    pub partitions: u32,
    /// Replication factor.
    pub replication: u32,
    /// Keep only the latest record per key.
    pub compacted: bool,
    /// Time-based retention.
    pub retention_ms: Option<u64>,
    /// Size-based retention.
    pub retention_bytes: Option<u64>,
    /// Segment roll size.
    pub segment_bytes: u64,
    /// Fault injector threaded into every replica log of the feed.
    pub log_injector: FailureInjector,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            partitions: 1,
            replication: 1,
            compacted: false,
            retention_ms: None,
            retention_bytes: None,
            segment_bytes: 1 << 20,
            log_injector: FailureInjector::disabled(),
        }
    }
}

impl FeedConfig {
    /// Sets the partition count.
    pub fn partitions(mut self, n: u32) -> Self {
        self.partitions = n;
        self
    }

    /// Sets the replication factor.
    pub fn replication(mut self, n: u32) -> Self {
        self.replication = n;
        self
    }

    /// Marks the feed compacted.
    pub fn compacted(mut self) -> Self {
        self.compacted = true;
        self
    }

    /// Sets time-based retention.
    pub fn retention_ms(mut self, ms: u64) -> Self {
        self.retention_ms = Some(ms);
        self
    }

    fn to_topic_config(&self) -> TopicConfig {
        let mut tc = TopicConfig::with_partitions(self.partitions)
            .replication(self.replication)
            .segment_bytes(self.segment_bytes);
        if self.compacted {
            tc = tc.compacted();
        }
        if let Some(ms) = self.retention_ms {
            tc = tc.retention_ms(ms);
        }
        if let Some(b) = self.retention_bytes {
            tc = tc.retention_bytes(b);
        }
        tc.log.injector = self.log_injector.clone();
        tc
    }
}

/// Handle to a submitted managed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobHandle(usize);

/// The Liquid data integration stack.
pub struct Liquid {
    cluster: Cluster,
    resources: Arc<ResourceManager>,
    clock: SharedClock,
    lineage: LineageRegistry,
    acl: AclRegistry,
    feeds: Mutex<HashMap<String, FeedKind>>,
    managed: Mutex<Vec<ManagedJob>>,
}

impl Liquid {
    /// Boots the stack: a broker cluster plus a resource-managed
    /// processing cluster.
    pub fn new(config: LiquidConfig, clock: SharedClock) -> Self {
        let cluster = Cluster::new(
            ClusterConfig {
                brokers: config.brokers,
                replica_lag_max: config.replica_lag_max,
                injector: config.injector.clone(),
                ..ClusterConfig::default()
            },
            clock.clone(),
        );
        let resources = Arc::new(ResourceManager::new());
        for (cpu, mem) in &config.nodes {
            resources.add_node(*cpu, *mem);
        }
        let lineage = LineageRegistry::new(cluster.coord().clone());
        Liquid {
            cluster,
            resources,
            clock,
            lineage,
            acl: AclRegistry::new(),
            feeds: Mutex::new("stack.feeds", HashMap::new()),
            managed: Mutex::new("stack.managed", Vec::new()),
        }
    }

    /// The messaging layer.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The resource manager.
    pub fn resources(&self) -> &Arc<ResourceManager> {
        &self.resources
    }

    /// The lineage registry.
    pub fn lineage(&self) -> &LineageRegistry {
        &self.lineage
    }

    /// The access-control registry (§2.1). Ungoverned feeds stay open;
    /// the first grant on a feed closes it to everyone else.
    pub fn acl(&self) -> &AclRegistry {
        &self.acl
    }

    /// Grants `principal` access to `feed` (convenience).
    pub fn grant(&self, principal: &str, feed: &str, access: Access) {
        self.acl.grant(principal, feed, access);
    }

    /// A producer acting as `principal`; refused unless the principal
    /// may write the feed.
    pub fn producer_as(&self, principal: &str, feed: &str) -> crate::Result<Producer> {
        if !self.acl.can_write(principal, feed) {
            return Err(LiquidError::AccessDenied {
                principal: principal.to_string(),
                feed: feed.to_string(),
            });
        }
        self.producer(feed)
    }

    /// A group consumer acting as `principal`; refused unless the
    /// principal may read the feed.
    pub fn consumer_as(&self, principal: &str, feed: &str, group: &str) -> crate::Result<Consumer> {
        if !self.acl.can_read(principal, feed) {
            return Err(LiquidError::AccessDenied {
                principal: principal.to_string(),
                feed: feed.to_string(),
            });
        }
        Ok(Consumer::in_group(&self.cluster, group, principal))
    }

    /// The shared clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Creates a source-of-truth feed (primary data).
    pub fn create_source_feed(&self, name: &str, config: FeedConfig) -> crate::Result<()> {
        self.cluster.create_topic(name, config.to_topic_config())?;
        self.feeds
            .lock()
            .insert(name.to_string(), FeedKind::SourceOfTruth);
        Ok(())
    }

    /// Creates a derived feed carrying lineage metadata.
    pub fn create_derived_feed(
        &self,
        name: &str,
        config: FeedConfig,
        lineage: Lineage,
    ) -> crate::Result<()> {
        self.cluster.create_topic(name, config.to_topic_config())?;
        self.lineage.record(name, &lineage)?;
        self.feeds
            .lock()
            .insert(name.to_string(), FeedKind::Derived);
        Ok(())
    }

    /// Kind of a feed, if registered through this stack.
    pub fn feed_kind(&self, name: &str) -> Option<FeedKind> {
        self.feeds.lock().get(name).copied()
    }

    /// Registered feed names, sorted.
    pub fn feeds(&self) -> Vec<String> {
        let mut v: Vec<String> = self.feeds.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// A producer publishing to `feed`.
    pub fn producer(&self, feed: &str) -> crate::Result<Producer> {
        Ok(Producer::new(&self.cluster, feed)?)
    }

    /// A standalone consumer.
    pub fn consumer(&self, member: &str) -> Consumer {
        Consumer::new(&self.cluster, member)
    }

    /// A group consumer.
    pub fn consumer_in_group(&self, group: &str, member: &str) -> Consumer {
        Consumer::in_group(&self.cluster, group, member)
    }

    /// Submits an ETL job with a resource request — ETL-as-a-service
    /// (§3.2). The job runs inside a container; its throughput each
    /// [`run_tick`](Self::run_tick) is bounded by the CPU it is granted.
    pub fn submit_job<F>(
        &self,
        config: JobConfig,
        request: ContainerRequest,
        factory: F,
    ) -> crate::Result<JobHandle>
    where
        F: FnMut(u32) -> Box<dyn StreamTask>,
    {
        let app = config.name.clone();
        let job = Job::new(&self.cluster, config, factory)?;
        let container = self.resources.submit(&app, request)?;
        let mut managed = self.managed.lock();
        managed.push(ManagedJob::new(job, container, self.resources.clone()));
        Ok(JobHandle(managed.len() - 1))
    }

    /// Runs one stack tick: replication, resource refill, then one
    /// service tick per managed job. Returns messages processed.
    pub fn run_tick(&self) -> crate::Result<u64> {
        self.cluster.replicate_tick()?;
        self.resources.tick();
        let mut total = 0;
        for mj in self.managed.lock().iter_mut() {
            total += mj.tick()?;
        }
        Ok(total)
    }

    /// Ticks until no managed job makes progress (or `max_ticks`).
    pub fn run_until_idle(&self, max_ticks: usize) -> crate::Result<u64> {
        let mut total = 0;
        for _ in 0..max_ticks {
            let n = self.run_tick()?;
            total += n;
            if n == 0 {
                break;
            }
        }
        Ok(total)
    }

    /// Runs a closure against a managed job (state inspection, manual
    /// checkpoints, window ticks).
    pub fn with_job<R>(
        &self,
        handle: JobHandle,
        f: impl FnOnce(&mut ManagedJob) -> R,
    ) -> crate::Result<R> {
        let mut managed = self.managed.lock();
        let mj = managed
            .get_mut(handle.0)
            .ok_or_else(|| LiquidError::Invalid(format!("unknown job handle {handle:?}")))?;
        Ok(f(mj))
    }

    /// Background maintenance: retention enforcement plus a compaction
    /// pass over every compacted topic (changelogs included). Returns
    /// `(segments_deleted, records_compacted_away)`.
    pub fn maintenance(&self) -> crate::Result<(usize, u64)> {
        let deleted = self.cluster.enforce_retention()?;
        let mut compacted = 0;
        for topic in self.cluster.compacted_topics() {
            let stats = self.cluster.compact_topic(&topic)?;
            compacted += stats.records_before - stats.records_after;
        }
        Ok((deleted, compacted))
    }

    /// Rewinds a managed job's inputs to the first record at/after
    /// `ts` and clears its checkpoints forward — the rewindability
    /// primitive (§3.1). Returns the offsets sought to per partition.
    pub fn rewind_job_to_timestamp(
        &self,
        handle: JobHandle,
        input: &str,
        ts: liquid_sim::clock::Ts,
    ) -> crate::Result<Vec<(u32, Option<u64>)>> {
        let partitions = self.cluster.partition_count(input)?;
        let mut out = Vec::new();
        for p in 0..partitions {
            let tp = TopicPartition::new(input, p);
            let target = self.cluster.offset_for_timestamp(&tp, ts)?;
            out.push((p, target));
        }
        self.with_job(handle, |mj| {
            for (p, target) in &out {
                if let Some(offset) = target {
                    mj.job_mut().seek_input(input, *p, *offset);
                }
            }
        })?;
        Ok(out)
    }

    /// Exposes a consumer positioned at a feed's start (convenience for
    /// examples reading derived feeds).
    pub fn reader_from_start(&self, feed: &str, member: &str) -> crate::Result<Consumer> {
        let consumer = self.consumer(member);
        for p in 0..self.cluster.partition_count(feed)? {
            consumer.assign(TopicPartition::new(feed, p), StartPosition::Earliest)?;
        }
        Ok(consumer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use liquid_messaging::Message;
    use liquid_processing::{FnTask, TaskContext};
    use liquid_sim::clock::SimClock;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn stack() -> (Liquid, SimClock) {
        let clock = SimClock::new(0);
        (Liquid::new(LiquidConfig::default(), clock.shared()), clock)
    }

    #[test]
    fn feeds_register_with_kinds_and_lineage() {
        let (l, _) = stack();
        l.create_source_feed("raw", FeedConfig::default()).unwrap();
        l.create_derived_feed(
            "clean",
            FeedConfig::default(),
            Lineage::new("cleaner", "v1", &["raw"]),
        )
        .unwrap();
        assert_eq!(l.feed_kind("raw"), Some(FeedKind::SourceOfTruth));
        assert_eq!(l.feed_kind("clean"), Some(FeedKind::Derived));
        assert_eq!(l.feeds(), vec!["clean", "raw"]);
        let lin = l.lineage().get("clean").unwrap();
        assert_eq!(lin.inputs, vec!["raw"]);
        assert_eq!(l.lineage().get("raw"), None);
    }

    #[test]
    fn end_to_end_produce_process_consume() {
        let (l, _) = stack();
        l.create_source_feed("events", FeedConfig::default())
            .unwrap();
        l.create_derived_feed(
            "shouted",
            FeedConfig::default(),
            Lineage::new("shouter", "v1", &["events"]),
        )
        .unwrap();
        let producer = l.producer("events").unwrap();
        for i in 0..10 {
            producer.send_value(format!("msg-{i}")).unwrap();
        }
        l.submit_job(
            JobConfig::new("shouter", &["events"]).stateless(),
            ContainerRequest {
                cpu_per_tick: 1_000,
                memory_mb: 128,
            },
            |_| {
                Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                    let v = String::from_utf8_lossy(&m.value).to_uppercase();
                    ctx.send("shouted", None, Bytes::from(v))?;
                    Ok(())
                }))
            },
        )
        .unwrap();
        let processed = l.run_until_idle(10).unwrap();
        assert_eq!(processed, 10);
        let reader = l.reader_from_start("shouted", "check").unwrap();
        let batches = reader.poll_batches().unwrap();
        assert_eq!(batches[0].1.len(), 10);
        assert_eq!(batches[0].1.records()[0].value, b("MSG-0"));
    }

    #[test]
    fn isolation_bounds_throughput_per_tick() {
        let clock = SimClock::new(0);
        let l = Liquid::new(
            LiquidConfig {
                nodes: vec![(100, 8192)],
                ..LiquidConfig::default()
            },
            clock.shared(),
        );
        l.create_source_feed("in", FeedConfig::default()).unwrap();
        let producer = l.producer("in").unwrap();
        for i in 0..500 {
            producer.send_value(format!("m{i}")).unwrap();
        }
        let h = l
            .submit_job(
                JobConfig::new("slow", &["in"]).stateless(),
                ContainerRequest {
                    cpu_per_tick: 40,
                    memory_mb: 64,
                },
                |_| Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(()))),
            )
            .unwrap();
        let n = l.run_tick().unwrap();
        assert_eq!(n, 40, "first tick bounded by quota");
        let lag = l.with_job(h, |mj| mj.job_mut().lag().unwrap()).unwrap();
        assert_eq!(lag, 460);
    }

    #[test]
    fn maintenance_compacts_changelogs() {
        let (l, _) = stack();
        l.create_source_feed("in", FeedConfig::default()).unwrap();
        let producer = l.producer("in").unwrap();
        for i in 0..4000 {
            producer
                .send_keyed(format!("k{}", i % 3), format!("v{i}"))
                .unwrap();
        }
        l.submit_job(
            JobConfig::new("counter", &["in"]),
            ContainerRequest {
                cpu_per_tick: 10_000,
                memory_mb: 64,
            },
            |_| {
                Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                    let key = m.key.clone().unwrap_or_else(|| Bytes::from_static(b"_"));
                    ctx.store().add_counter(&key, 1)?;
                    Ok(())
                }))
            },
        )
        .unwrap();
        l.run_until_idle(10).unwrap();
        let (_, compacted) = l.maintenance().unwrap();
        assert!(compacted > 0, "changelog should shrink under compaction");
    }

    #[test]
    fn acl_gates_principal_scoped_handles() {
        let (l, _) = stack();
        l.create_source_feed("events", FeedConfig::default())
            .unwrap();
        // Open until the first grant.
        assert!(l.producer_as("anyone", "events").is_ok());
        l.grant("ingest-svc", "events", crate::acl::Access::Write);
        l.grant("analytics", "events", crate::acl::Access::Read);
        assert!(l.producer_as("ingest-svc", "events").is_ok());
        assert!(matches!(
            l.producer_as("analytics", "events"),
            Err(LiquidError::AccessDenied { .. })
        ));
        assert!(l.consumer_as("analytics", "events", "g").is_ok());
        assert!(matches!(
            l.consumer_as("rogue", "events", "g"),
            Err(LiquidError::AccessDenied { .. })
        ));
    }

    #[test]
    fn unknown_feed_errors() {
        let (l, _) = stack();
        assert!(l.producer("ghost").is_err());
        assert!(l.reader_from_start("ghost", "m").is_err());
        assert_eq!(l.feed_kind("ghost"), None);
    }

    #[test]
    fn unknown_job_handle_errors() {
        let (l, _) = stack();
        assert!(l.with_job(JobHandle(99), |_| ()).is_err());
    }
}
