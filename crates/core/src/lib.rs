//! # Liquid: a nearline data integration stack
//!
//! A Rust reproduction of *"Liquid: Unifying Nearline and Offline Big
//! Data Integration"* (CIDR 2015): a data integration stack built from
//! two cooperating layers —
//!
//! * a **messaging layer** ([`liquid_messaging`], re-exported as
//!   [`messaging`]): a highly-available topic-based publish/subscribe
//!   system over distributed, replicated commit logs;
//! * a **processing layer** ([`liquid_processing`], re-exported as
//!   [`processing`]): stateful stream-processing jobs with
//!   changelog-backed state, checkpoints and incremental processing.
//!
//! This crate ties the layers into the [`stack::Liquid`] stack:
//! **feeds** (source-of-truth and derived, with [`lineage`] metadata),
//! **ETL-as-a-service** job submission under resource isolation
//! ([`etl`]), rewind/reprocessing helpers, and the [`architectures`]
//! comparators (Lambda / Kappa / Liquid) the paper positions itself
//! against.
//!
//! ## Quickstart
//!
//! ```
//! use liquid::prelude::*;
//!
//! let clock = SimClock::new(0);
//! let liquid = Liquid::new(LiquidConfig::default(), clock.shared());
//! liquid.create_source_feed("events", FeedConfig::default()).unwrap();
//!
//! // Publish.
//! let producer = liquid.producer("events").unwrap();
//! producer.send_keyed("user-1", "clicked").unwrap();
//!
//! // An ETL job: forward every event to a derived feed.
//! liquid
//!     .create_derived_feed("clean", FeedConfig::default(), Lineage::new("cleaner", "v1", &["events"]))
//!     .unwrap();
//! let handle = liquid
//!     .submit_job(
//!         JobConfig::new("cleaner", &["events"]).stateless(),
//!         ContainerRequest { cpu_per_tick: 1_000, memory_mb: 256 },
//!         |_| Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
//!             ctx.send("clean", m.key.clone(), m.value.clone())?;
//!             Ok(())
//!         })),
//!     )
//!     .unwrap();
//! liquid.run_tick().unwrap();
//!
//! // Consume the derived feed.
//! let consumer = liquid.consumer("reader");
//! consumer.assign(TopicPartition::new("clean", 0), StartPosition::Earliest).unwrap();
//! let batches = consumer.poll_batches().unwrap();
//! assert_eq!(batches[0].1.len(), 1);
//! # let _ = handle;
//! ```

#![forbid(unsafe_code)]

pub mod acl;
pub mod architectures;
pub mod etl;
pub mod lineage;
pub mod stack;

/// The simulation substrate (clocks, RNG, page cache, failure injection).
pub use liquid_sim as sim;

/// The coordination service (ZooKeeper analogue).
pub use liquid_coord as coord;

/// The commit-log implementation backing every feed.
pub use liquid_log as log;

/// The embedded LSM key-value store (RocksDB analogue).
pub use liquid_kv as kv;

/// The messaging layer (Kafka analogue).
pub use liquid_messaging as messaging;

/// The processing layer (Samza analogue).
pub use liquid_processing as processing;

/// The resource manager (YARN analogue).
pub use liquid_yarn as yarn;

/// The baseline distributed file system (HDFS analogue).
pub use liquid_dfs as dfs;

/// The baseline MapReduce engine.
pub use liquid_mr as mr;

/// Synthetic workload generators for the paper's use cases.
pub use liquid_workloads as workloads;

pub use acl::{Access, AclRegistry};
pub use lineage::Lineage;
pub use stack::{FeedConfig, FeedKind, Liquid, LiquidConfig};

/// Errors from the integrated stack (re-exported from the layers).
#[derive(Debug)]
pub enum LiquidError {
    /// Messaging layer error.
    Messaging(liquid_messaging::MessagingError),
    /// Processing layer error.
    Processing(liquid_processing::ProcessingError),
    /// Resource manager error.
    Yarn(liquid_yarn::YarnError),
    /// Coordination error.
    Coord(liquid_coord::CoordError),
    /// Stack-level misuse.
    Invalid(String),
    /// A principal attempted an operation its grants do not allow.
    AccessDenied {
        /// The requesting principal.
        principal: String,
        /// The governed feed.
        feed: String,
    },
}

impl std::fmt::Display for LiquidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiquidError::Messaging(e) => write!(f, "messaging: {e}"),
            LiquidError::Processing(e) => write!(f, "processing: {e}"),
            LiquidError::Yarn(e) => write!(f, "resources: {e}"),
            LiquidError::Coord(e) => write!(f, "coordination: {e}"),
            LiquidError::Invalid(m) => write!(f, "invalid: {m}"),
            LiquidError::AccessDenied { principal, feed } => {
                write!(f, "access denied: {principal} on feed {feed}")
            }
        }
    }
}

impl std::error::Error for LiquidError {}

impl From<liquid_messaging::MessagingError> for LiquidError {
    fn from(e: liquid_messaging::MessagingError) -> Self {
        LiquidError::Messaging(e)
    }
}

impl From<liquid_processing::ProcessingError> for LiquidError {
    fn from(e: liquid_processing::ProcessingError) -> Self {
        LiquidError::Processing(e)
    }
}

impl From<liquid_yarn::YarnError> for LiquidError {
    fn from(e: liquid_yarn::YarnError) -> Self {
        LiquidError::Yarn(e)
    }
}

impl From<liquid_coord::CoordError> for LiquidError {
    fn from(e: liquid_coord::CoordError) -> Self {
        LiquidError::Coord(e)
    }
}

/// Result alias for stack operations.
pub type Result<T> = std::result::Result<T, LiquidError>;

/// Everything needed to use the stack, in one import.
pub mod prelude {
    pub use crate::acl::Access;
    pub use crate::lineage::Lineage;
    pub use crate::stack::{FeedConfig, FeedKind, Liquid, LiquidConfig};
    pub use crate::{LiquidError, Result};
    pub use bytes::Bytes;
    pub use liquid_log::{BatchBuilder, RecordBatch};
    pub use liquid_messaging::consumer::StartPosition;
    pub use liquid_messaging::{
        AckLevel, AssignmentStrategy, BatchConfig, Consumer, Message, MessageBatch, Partitioner,
        Producer, TopicPartition,
    };
    pub use liquid_processing::{
        FnTask, Job, JobConfig, JobStart, Pipeline, StateStore, StreamTask, TaskContext,
    };
    pub use liquid_sim::clock::{Clock, SharedClock, SimClock, SystemClock};
    pub use liquid_yarn::{ContainerRequest, ResourceManager};
}
