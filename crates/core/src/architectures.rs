//! Lambda / Kappa / Liquid comparators (paper §2.2, experiment E8).
//!
//! All three architectures are run against the *same* task — maintain
//! per-key event counts over a keyed input feed, then handle a logic
//! change that requires reprocessing history — and the same data volume,
//! so their costs are directly comparable:
//!
//! * **Lambda**: the logic exists twice (a batch MapReduce job over a
//!   DFS mirror of the data and a streaming job); the batch layer
//!   recomputes *all* history every cycle.
//! * **Kappa**: one streaming code path; reprocessing replays the whole
//!   log through a second job instance while the serving layer keeps
//!   answering from the (stale) old results.
//! * **Liquid**: one code path; steady state is incremental (only new
//!   data, via offset-manager checkpoints), reprocessing is a Kappa-
//!   style replay but under resource isolation and without a second
//!   storage system, because the log *is* the source of truth.

use bytes::Bytes;
use liquid_dfs::{Dfs, DfsConfig};
use liquid_messaging::{AckLevel, Cluster, Message, TopicConfig, TopicPartition};
use liquid_mr::{Emitter, MrJobConfig};
use liquid_processing::{FnTask, Job, JobConfig, JobStart, TaskContext};

/// Cost/fidelity report for one architecture run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchReport {
    /// Distinct code paths the team must write, test and operate.
    pub code_paths: u32,
    /// Messages/records processed in steady state (per update cycle).
    pub steady_state_work: u64,
    /// Records processed to serve a logic change (reprocessing cost).
    pub reprocess_work: u64,
    /// Messages the serving layer answered from stale results while
    /// reprocessing caught up.
    pub staleness_window: u64,
    /// Storage systems holding a full copy of the data.
    pub data_copies: u32,
}

/// Builds a single-partition keyed topic with `history` + `delta`
/// messages and returns the cluster.
fn seed_cluster(history: u64, delta: u64, keys: u64) -> (Cluster, TopicPartition) {
    let clock = liquid_sim::clock::SimClock::new(0);
    let cluster = Cluster::new(
        liquid_messaging::ClusterConfig::with_brokers(1),
        clock.shared(),
    );
    cluster
        .create_topic("events", TopicConfig::with_partitions(1))
        .unwrap();
    cluster
        .create_topic("counts", TopicConfig::with_partitions(1).compacted())
        .unwrap();
    let tp = TopicPartition::new("events", 0);
    for i in 0..(history + delta) {
        cluster
            .produce_to(
                &tp,
                Some(Bytes::from(format!("k{}", i % keys))),
                Bytes::from(format!("e{i}")),
                AckLevel::Leader,
            )
            .unwrap();
    }
    (cluster, tp)
}

fn counting_job(cluster: &Cluster, name: &str, version: &str, start: JobStart) -> Job {
    Job::new(
        cluster,
        JobConfig::new(name, &["events"])
            .version(version)
            .start_from(start),
        |_| {
            Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                let key = m.key.clone().unwrap_or_else(|| Bytes::from_static(b"_"));
                let n = ctx.store().add_counter(&key, 1)?;
                ctx.send("counts", Some(key), Bytes::from(n.to_string().into_bytes()))?;
                Ok(())
            }))
        },
    )
    .unwrap()
}

/// Runs the Lambda architecture over `history` events plus `delta` new
/// ones, with `cycles` batch recomputations.
pub fn run_lambda(history: u64, delta: u64, keys: u64, cycles: u64) -> ArchReport {
    let (cluster, tp) = seed_cluster(history, delta, keys);
    // Speed layer: streaming counts (code path #1).
    let mut stream = counting_job(&cluster, "lambda-speed", "v1", JobStart::Earliest);
    stream.run_until_idle(100).unwrap();
    let stream_work = stream.processed();

    // Batch layer: MR over a DFS mirror of the data (code path #2,
    // data copy #2). Every cycle recomputes the full history.
    let dfs = Dfs::new(DfsConfig {
        replication: 1,
        datanodes: 1,
        ..DfsConfig::default()
    });
    let all = cluster
        .fetch_batch(&tp, 0, u64::MAX)
        .unwrap()
        .into_messages();
    let mut mirror = String::new();
    for m in &all {
        mirror.push_str(&format!(
            "{}\t{}\n",
            String::from_utf8_lossy(m.key.as_deref().unwrap_or(b"_")),
            String::from_utf8_lossy(&m.value)
        ));
    }
    dfs.write("/mirror/events", mirror.as_bytes()).unwrap();
    let mut batch_work = 0;
    for cycle in 0..cycles {
        let stats = liquid_mr::run_job(
            &dfs,
            &MrJobConfig::new(
                &format!("lambda-batch-{cycle}"),
                "/mirror/",
                &format!("/batch-out-{cycle}"),
            )
            .reducers(1),
            &|k: &str, v: &str, out: &mut Emitter| out.emit(k, v),
            &|k: &str, vs: &[String], out: &mut Emitter| out.emit(k, vs.len().to_string()),
        )
        .unwrap();
        batch_work += stats.records_read;
    }
    ArchReport {
        code_paths: 2,
        steady_state_work: stream_work + batch_work,
        // A logic change re-runs the batch layer once over everything.
        reprocess_work: history + delta,
        // Serving reconciles both layers; no stale window, at the price
        // of the duplicated compute above.
        staleness_window: 0,
        data_copies: 2,
    }
}

/// Runs the Kappa architecture: one streaming path; a logic change
/// spawns a second job that replays the whole log.
pub fn run_kappa(history: u64, delta: u64, keys: u64) -> ArchReport {
    let (cluster, _) = seed_cluster(history, delta, keys);
    let mut live = counting_job(&cluster, "kappa-v1", "v1", JobStart::Earliest);
    live.run_until_idle(100).unwrap();
    let steady = live.processed();
    // Logic change: replay everything from offset 0 in parallel.
    cluster
        .create_topic("counts-v2", TopicConfig::with_partitions(1).compacted())
        .unwrap();
    let mut replay = Job::new(
        &cluster,
        JobConfig::new("kappa-v2", &["events"])
            .version("v2")
            .start_from(JobStart::Earliest),
        |_| {
            Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                let key = m.key.clone().unwrap_or_else(|| Bytes::from_static(b"_"));
                let n = ctx.store().add_counter(&key, 1)?;
                ctx.send(
                    "counts-v2",
                    Some(key),
                    Bytes::from(n.to_string().into_bytes()),
                )?;
                Ok(())
            }))
        },
    )
    .unwrap();
    // While the replay runs, back-end systems read v1 output: the
    // staleness window is everything the replay has to chew through.
    let staleness = replay.lag().unwrap();
    let reprocess = replay.run_until_idle(200).unwrap();
    ArchReport {
        code_paths: 1,
        steady_state_work: steady,
        reprocess_work: reprocess,
        staleness_window: staleness,
        data_copies: 1,
    }
}

/// Runs Liquid: incremental steady state (checkpoint + delta only),
/// rewind-based reprocessing when the logic changes.
pub fn run_liquid(history: u64, delta: u64, keys: u64) -> ArchReport {
    let (cluster, tp) = seed_cluster(history, 0, keys);
    // Steady state: process history once, checkpoint.
    {
        let mut job = counting_job(&cluster, "liquid-counts", "v1", JobStart::Committed);
        job.run_until_idle(200).unwrap();
        job.checkpoint().unwrap();
    }
    // New delta arrives; a fresh instance processes only the delta —
    // the §4.2 incremental path.
    for i in 0..delta {
        cluster
            .produce_to(
                &tp,
                Some(Bytes::from(format!("k{}", i % keys))),
                Bytes::from(format!("d{i}")),
                AckLevel::Leader,
            )
            .unwrap();
    }
    let mut job = counting_job(&cluster, "liquid-counts", "v1", JobStart::Committed);
    let steady = job.run_until_idle(200).unwrap();
    job.checkpoint().unwrap();
    // Logic change: one code path; rewind and replay (same as Kappa),
    // but the offset manager records which offsets v1 covered.
    let mut replay = counting_job(&cluster, "liquid-counts-v2", "v2", JobStart::Earliest);
    let staleness = replay.lag().unwrap();
    let reprocess = replay.run_until_idle(200).unwrap();
    ArchReport {
        code_paths: 1,
        steady_state_work: steady,
        reprocess_work: reprocess,
        staleness_window: staleness,
        data_copies: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: u64 = 500;
    const D: u64 = 50;
    const K: u64 = 10;

    #[test]
    fn lambda_duplicates_code_and_data() {
        let r = run_lambda(H, D, K, 2);
        assert_eq!(r.code_paths, 2);
        assert_eq!(r.data_copies, 2);
        // Batch recomputation makes steady-state work exceed the data
        // volume: stream (H+D) + 2 full batch cycles (2 (H+D)).
        assert!(r.steady_state_work >= 3 * (H + D));
    }

    #[test]
    fn kappa_single_path_but_full_replay_and_staleness() {
        let r = run_kappa(H, D, K);
        assert_eq!(r.code_paths, 1);
        assert_eq!(r.data_copies, 1);
        assert_eq!(r.reprocess_work, H + D);
        assert_eq!(r.staleness_window, H + D, "stale until replay drains");
    }

    #[test]
    fn liquid_incremental_steady_state() {
        let r = run_liquid(H, D, K);
        assert_eq!(r.code_paths, 1);
        assert_eq!(r.data_copies, 1);
        assert_eq!(
            r.steady_state_work, D,
            "steady state processes only the delta"
        );
        assert_eq!(r.reprocess_work, H + D);
    }

    #[test]
    fn liquid_beats_lambda_on_work_and_kappa_ties_on_replay() {
        let lambda = run_lambda(H, D, K, 2);
        let kappa = run_kappa(H, D, K);
        let liquid = run_liquid(H, D, K);
        assert!(liquid.steady_state_work < kappa.steady_state_work);
        assert!(liquid.steady_state_work < lambda.steady_state_work);
        assert_eq!(liquid.reprocess_work, kappa.reprocess_work);
        assert!(liquid.code_paths < lambda.code_paths);
    }
}
