//! Counters and log-bucketed latency histograms.
//!
//! Moved here from `liquid_sim::stats` (which re-exports these types
//! for compatibility) so the registry, the benchmark harness, and the
//! fault-crate hot paths share one implementation. The histogram is
//! HDR-style: bounded relative error (~1.5% with 6 sub-bucket bits) and
//! O(1) recording.
//!
//! Everything here is panic-free in non-test code: these types sit on
//! fault-injected hot paths, so `liquid-lint`'s panic-reachability
//! proof traverses into them.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter, safe to share across threads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log-bucketed histogram for non-negative values (e.g. latency in
/// nanoseconds). Values are grouped into buckets of the form
/// `[2^e + k*2^(e-BITS), ...)`, giving a bounded relative error of
/// about 1/2^BITS (~1.5% with BITS = 6).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

const SUB_BITS: u32 = 6;
const SUB: usize = 1 << SUB_BITS;
const EXPS: usize = 64;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; EXPS * SUB],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let e = 63 - value.leading_zeros();
        let shift = e - SUB_BITS;
        let sub = ((value >> shift) as usize) & (SUB - 1);
        ((e - SUB_BITS + 1) as usize) * SUB + sub
    }

    fn bucket_low(idx: usize) -> u64 {
        let e = idx / SUB;
        let sub = (idx % SUB) as u64;
        if e == 0 {
            return sub;
        }
        let exp = (e as u32 - 1) + SUB_BITS;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        if let Some(b) = self.buckets.get_mut(Self::bucket_of(value)) {
            *b += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (lower bucket bound; ~1.5% error).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_low(idx);
            }
        }
        self.max
    }

    /// Convenience: 50th percentile.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Convenience: 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Convenience: 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all recorded data.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn single_value_everywhere() {
        let mut h = Histogram::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1000);
        // Bucketed value within ~1.6% of the true value.
        let q = h.p50();
        assert!((984..=1000).contains(&q), "p50 was {q}");
    }

    #[test]
    fn small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB as u64 - 1);
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
        // p50 of uniform 1..=10000 should be near 5000 (±2%).
        let p50 = h.p50() as f64;
        assert!((4800.0..=5200.0).contains(&p50), "p50 was {p50}");
    }

    #[test]
    fn quantile_error_is_bounded_across_magnitudes() {
        // For any single recorded value v, the reported quantile is the
        // lower bucket bound, so the relative error is at most
        // 1/2^SUB_BITS (~1.6%) once v is large enough to be bucketed.
        for shift in 6..62 {
            for delta in [0u64, 1, 17, 1000] {
                let v = (1u64 << shift) + delta;
                let mut h = Histogram::new();
                h.record(v);
                let q = h.p99();
                assert!(q <= v, "quantile {q} above recorded {v}");
                let err = (v - q) as f64 / v as f64;
                assert!(err <= 1.0 / 64.0 + 1e-9, "relative error {err} for {v}");
            }
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert!(a.max() >= 1_000_000);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn bucket_bounds_consistent() {
        // bucket_low(bucket_of(v)) <= v for a range of magnitudes.
        for shift in 0..60 {
            let v = 1u64 << shift;
            for delta in [0u64, 1, 3] {
                let val = v + delta;
                let idx = Histogram::bucket_of(val);
                assert!(Histogram::bucket_low(idx) <= val);
            }
        }
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.p99() > 0);
    }
}
