//! Minimal dependency-free JSON: an RFC 8259 string writer plus a
//! small recursive-descent parser.
//!
//! The writer backs [`crate::Snapshot::to_json`] and the trace export;
//! the parser backs the snapshot round-trip tests and the CI schema
//! check for `BENCH_*.json`. Both are panic-free: the parser returns
//! `None` on malformed input (including inputs nested deeper than
//! [`MAX_DEPTH`]) instead of recursing unboundedly or indexing out of
//! bounds.

use std::collections::BTreeMap;

/// Maximum nesting depth the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// Appends `s` as a quoted JSON string with RFC 8259 escaping.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is an exact non-negative integer.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected). Returns `None` on malformed input.
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact `u64` value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `f64` (exact integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, expected: u8) -> Option<()> {
    if bytes.get(*pos) == Some(&expected) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn eat_keyword(bytes: &[u8], pos: &mut usize, word: &str) -> Option<()> {
    let end = pos.checked_add(word.len())?;
    if bytes.get(*pos..end) == Some(word.as_bytes()) {
        *pos = end;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Json> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'n' => eat_keyword(bytes, pos, "null").map(|_| Json::Null),
        b't' => eat_keyword(bytes, pos, "true").map(|_| Json::Bool(true)),
        b'f' => eat_keyword(bytes, pos, "false").map(|_| Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => parse_array(bytes, pos, depth),
        b'{' => parse_object(bytes, pos, depth),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => None,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Json> {
    eat(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Json> {
    eat(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        eat(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(map));
            }
            _ => return None,
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    eat(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes.get(pos.checked_add(1)?..pos.checked_add(5)?)?;
                        let hex = std::str::from_utf8(hex).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        // Surrogate pairs are out of scope for the
                        // snapshot schema; reject rather than mangle.
                        let c = char::from_u32(code)?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 unit verbatim (validated at the end).
                let b = *bytes.get(*pos)?;
                if b < 0x20 {
                    return None; // unescaped control character
                }
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(bytes.get(start..*pos)?).ok()?;
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Some(Json::UInt(n));
        }
    }
    text.parse::<f64>().ok().map(Json::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_escaped_strings() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null"), Some(Json::Null));
        assert_eq!(Json::parse(" true "), Some(Json::Bool(true)));
        assert_eq!(Json::parse("42"), Some(Json::UInt(42)));
        assert_eq!(
            Json::parse("18446744073709551615"),
            Some(Json::UInt(u64::MAX))
        );
        assert_eq!(Json::parse("-1.5"), Some(Json::Num(-1.5)));
        assert_eq!(Json::parse("\"hi\""), Some(Json::Str("hi".into())));
    }

    #[test]
    fn parses_structures() {
        let doc = Json::parse("{\"a\":[1,2,{\"b\":\"c\"}],\"d\":{}}").unwrap();
        let obj = doc.as_object().unwrap();
        let arr = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(
            arr[2].as_object().unwrap().get("b").unwrap().as_str(),
            Some("c")
        );
        assert!(obj.get("d").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn escape_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t ctrl\u{2} unicode→";
        let mut encoded = String::new();
        write_str(&mut encoded, original);
        assert_eq!(Json::parse(&encoded), Some(Json::Str(original.into())));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1}extra",
            "\"bad\u{1}ctrl\"",
        ] {
            assert!(Json::parse(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_overdeep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_none());
    }

    #[test]
    fn numbers_with_huge_magnitude_fall_back_to_f64() {
        // Larger than u64::MAX: still parses, as an approximate float.
        let doc = Json::parse("999999999999999999999").unwrap();
        assert_eq!(doc.as_u64(), None);
        assert!(doc.as_f64().unwrap() > 1e20);
    }
}
