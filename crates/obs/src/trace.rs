//! The causal event tracer: span IDs plus a bounded ring of events.
//!
//! A **span** is a `u64` minted once per produced record
//! ([`Tracer::mint`]; 0 means "no span") and carried with the record
//! through replication, fetch, task delivery, and checkpoint. Each hop
//! calls [`Tracer::record`], appending an [`Event`] to a bounded
//! ring buffer — when a chaos invariant trips, the tail of that ring
//! is the causal story of the records in flight.
//!
//! Events are ordered by a deterministic sequence counter, not wall
//! time, so traced runs stay reproducible under the chaos harness's
//! seed-equality checks.
//!
//! Under the `obs-off` feature [`Tracer::mint`] returns 0 and
//! [`Tracer::record`] is a no-op.

#[cfg(not(feature = "obs-off"))]
use std::collections::VecDeque;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "obs-off"))]
use std::sync::Mutex;

use crate::json;

/// Default ring capacity (events kept before the oldest are dropped).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One hop of a span's journey through the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Deterministic sequence number (1-based, gap-free mint order).
    pub seq: u64,
    /// The span this event belongs to (0 = no span).
    pub span: u64,
    /// Hop kind: `produce`, `replicate`, `fetch`, `task.deliver`,
    /// `task.checkpoint`, …
    pub kind: &'static str,
    /// Where it happened (topic-partition, `tp@broker`, task name).
    pub site: String,
    /// Hop-specific value (usually the record offset).
    pub value: u64,
}

impl Event {
    /// Serializes one event as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str(&format!(
            "{{\"seq\":{},\"span\":{},\"kind\":",
            self.seq, self.span
        ));
        json::write_str(&mut out, self.kind);
        out.push_str(",\"site\":");
        json::write_str(&mut out, &self.site);
        out.push_str(&format!(",\"value\":{}}}", self.value));
        out
    }
}

/// Span minter + bounded event ring.
#[derive(Debug)]
pub struct Tracer {
    #[cfg(not(feature = "obs-off"))]
    next_span: AtomicU64,
    #[cfg(not(feature = "obs-off"))]
    next_seq: AtomicU64,
    #[cfg(not(feature = "obs-off"))]
    ring: Mutex<VecDeque<Event>>,
    #[cfg(not(feature = "obs-off"))]
    capacity: usize,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl Tracer {
    /// A tracer with the default ring capacity.
    pub fn new() -> Self {
        Tracer::default()
    }
}

#[cfg(not(feature = "obs-off"))]
impl Tracer {
    /// A tracer keeping at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            next_span: AtomicU64::new(1),
            next_seq: AtomicU64::new(1),
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Mints a fresh nonzero span ID.
    pub fn mint(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends one event to the ring, evicting the oldest at capacity.
    /// At steady state (ring full) the evicted event's `site` buffer is
    /// reused, so recording allocates nothing on the hot path.
    pub fn record(&self, span: u64, kind: &'static str, site: &str, value: u64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let recycled = if ring.len() >= self.capacity {
            ring.pop_front()
        } else {
            None
        };
        let mut event = recycled.unwrap_or_else(|| Event {
            seq: 0,
            span: 0,
            kind: "",
            site: String::new(),
            value: 0,
        });
        event.seq = seq;
        event.span = span;
        event.kind = kind;
        event.site.clear();
        event.site.push_str(site);
        event.value = value;
        ring.push_back(event);
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Events currently held in the ring.
    pub fn len(&self) -> usize {
        match self.ring.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(feature = "obs-off")]
impl Tracer {
    /// A tracer keeping at most `capacity` events. No-op: `obs-off`.
    pub fn with_capacity(_capacity: usize) -> Self {
        Tracer {}
    }

    /// Mints a span ID. Always 0: `obs-off`.
    pub fn mint(&self) -> u64 {
        0
    }

    /// Appends one event. No-op: `obs-off`.
    pub fn record(&self, _span: u64, _kind: &'static str, _site: &str, _value: u64) {}

    /// The most recent `n` events. Always empty: `obs-off`.
    pub fn tail(&self, _n: usize) -> Vec<Event> {
        Vec::new()
    }

    /// Events currently held. Always 0: `obs-off`.
    pub fn len(&self) -> usize {
        0
    }

    /// Whether the ring holds no events. Always true: `obs-off`.
    pub fn is_empty(&self) -> bool {
        true
    }
}

impl Tracer {
    /// The most recent `n` events as a JSON array, oldest first.
    pub fn tail_json(&self, n: usize) -> String {
        let events = self.tail(n);
        let mut out = String::with_capacity(events.len() * 64 + 2);
        out.push('[');
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push(']');
        out
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn mints_unique_nonzero_spans() {
        let t = Tracer::new();
        let a = t.mint();
        let b = t.mint();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn records_in_order_and_bounds_the_ring() {
        let t = Tracer::with_capacity(3);
        for i in 0..5u64 {
            t.record(i, "produce", "t-0", i * 10);
        }
        assert_eq!(t.len(), 3);
        let tail = t.tail(10);
        let spans: Vec<u64> = tail.iter().map(|e| e.span).collect();
        assert_eq!(spans, vec![2, 3, 4]);
        // Sequence numbers survive eviction (they count all events).
        assert_eq!(tail.last().map(|e| e.seq), Some(5));
    }

    #[test]
    fn tail_takes_newest() {
        let t = Tracer::new();
        t.record(1, "produce", "t-0", 0);
        t.record(1, "fetch", "t-0", 0);
        t.record(1, "task.deliver", "t-0", 0);
        let last2 = t.tail(2);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2.first().map(|e| e.kind), Some("fetch"));
    }

    #[test]
    fn events_export_as_json() {
        let t = Tracer::new();
        t.record(7, "produce", "orders-0", 42);
        let json = t.tail_json(8);
        assert!(json.starts_with('['));
        assert!(json.contains("\"span\":7"));
        assert!(json.contains("\"site\":\"orders-0\""));
        assert!(json.contains("\"value\":42"));
        // And it parses back with the tiny parser.
        assert!(crate::json::Json::parse(&json).is_some());
    }

    #[test]
    fn empty_tracer_is_empty() {
        let t = Tracer::new();
        assert!(t.is_empty());
        assert_eq!(t.tail_json(4), "[]");
    }
}
