//! The thread-safe instrument registry and its snapshot view.
//!
//! Instruments are addressed by `component.instrument{label=value}`
//! keys (labels sorted, rendered once at registration). Hot paths
//! resolve a handle **once** at construction time and then operate on
//! a plain atomic — registration takes a `std::sync::Mutex` over a
//! `BTreeMap`, recording does not (histograms take a per-instrument
//! leaf mutex). The three maps are only ever locked one at a time, so
//! no lock ordering arises.
//!
//! Under the `obs-off` feature every type here is a zero-sized no-op
//! with the same API.

use std::collections::BTreeMap;

use crate::json::{self, Json};
use crate::stats::Histogram;

#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "obs-off"))]
use std::sync::{Arc, Mutex, MutexGuard};

/// Recovers a poisoned mutex: instruments hold plain data, so a panic
/// elsewhere never leaves them in a state worth refusing to read.
#[cfg(not(feature = "obs-off"))]
fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Renders `name{k1=v1,k2=v2}` with labels sorted by key; just `name`
/// when there are no labels.
pub fn render_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort();
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

/// A handle to a registered counter. Cloning shares the underlying
/// cell; `Default` is a disconnected no-op (useful in config structs
/// before wiring).
#[derive(Clone, Debug, Default)]
pub struct CounterHandle {
    #[cfg(not(feature = "obs-off"))]
    cell: Option<Arc<AtomicU64>>,
}

impl CounterHandle {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Current value (0 when disconnected or compiled out).
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        if let Some(c) = &self.cell {
            return c.load(Ordering::Relaxed);
        }
        0
    }
}

/// A handle to a registered gauge (a settable `u64`).
#[derive(Clone, Debug, Default)]
pub struct GaugeHandle {
    #[cfg(not(feature = "obs-off"))]
    cell: Option<Arc<AtomicU64>>,
}

impl GaugeHandle {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        if let Some(c) = &self.cell {
            c.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Current value (0 when disconnected or compiled out).
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        if let Some(c) = &self.cell {
            return c.load(Ordering::Relaxed);
        }
        0
    }
}

/// A handle to a registered histogram.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle {
    #[cfg(not(feature = "obs-off"))]
    cell: Option<Arc<Mutex<Histogram>>>,
}

impl HistogramHandle {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        if let Some(c) = &self.cell {
            lock_plain(c).record(v);
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// A copy of the current histogram state (empty when disconnected
    /// or compiled out).
    pub fn read(&self) -> Histogram {
        #[cfg(not(feature = "obs-off"))]
        if let Some(c) = &self.cell {
            return lock_plain(c).clone();
        }
        Histogram::new()
    }
}

/// The instrument registry: three name-keyed maps of shared cells.
#[derive(Debug, Default)]
pub struct Registry {
    #[cfg(not(feature = "obs-off"))]
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    #[cfg(not(feature = "obs-off"))]
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    #[cfg(not(feature = "obs-off"))]
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or finds) the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> CounterHandle {
        self.counter_with(name, &[])
    }

    /// Registers (or finds) the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        self.gauge_with(name, &[])
    }

    /// Registers (or finds) the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.histogram_with(name, &[])
    }

    /// Current value of an unlabeled counter (0 if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter_value_with(name, &[])
    }

    /// Current value of an unlabeled gauge (`None` if never registered).
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.gauge_value_with(name, &[])
    }
}

#[cfg(not(feature = "obs-off"))]
impl Registry {
    /// Registers (or finds) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> CounterHandle {
        let key = render_key(name, labels);
        let cell = lock_plain(&self.counters).entry(key).or_default().clone();
        CounterHandle { cell: Some(cell) }
    }

    /// Registers (or finds) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        let key = render_key(name, labels);
        let cell = lock_plain(&self.gauges).entry(key).or_default().clone();
        GaugeHandle { cell: Some(cell) }
    }

    /// Registers (or finds) a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        let cell = lock_plain(&self.histograms)
            .entry(render_key(name, labels))
            .or_insert_with(|| Arc::new(Mutex::new(Histogram::new())))
            .clone();
        HistogramHandle { cell: Some(cell) }
    }

    /// Current value of a labeled counter (0 if never registered).
    pub fn counter_value_with(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        lock_plain(&self.counters)
            .get(&render_key(name, labels))
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Current value of a labeled gauge (`None` if never registered).
    pub fn gauge_value_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        lock_plain(&self.gauges)
            .get(&render_key(name, labels))
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock_plain(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = lock_plain(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = lock_plain(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), HistogramSummary::of(&lock_plain(v))))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(feature = "obs-off")]
impl Registry {
    /// Registers (or finds) a labeled counter. No-op: `obs-off`.
    pub fn counter_with(&self, _name: &str, _labels: &[(&str, &str)]) -> CounterHandle {
        CounterHandle::default()
    }

    /// Registers (or finds) a labeled gauge. No-op: `obs-off`.
    pub fn gauge_with(&self, _name: &str, _labels: &[(&str, &str)]) -> GaugeHandle {
        GaugeHandle::default()
    }

    /// Registers (or finds) a labeled histogram. No-op: `obs-off`.
    pub fn histogram_with(&self, _name: &str, _labels: &[(&str, &str)]) -> HistogramHandle {
        HistogramHandle::default()
    }

    /// Current value of a labeled counter. Always 0: `obs-off`.
    pub fn counter_value_with(&self, _name: &str, _labels: &[(&str, &str)]) -> u64 {
        0
    }

    /// Current value of a labeled gauge. Always `None`: `obs-off`.
    pub fn gauge_value_with(&self, _name: &str, _labels: &[(&str, &str)]) -> Option<u64> {
        None
    }

    /// A point-in-time copy of every instrument. Empty: `obs-off`.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}

/// Percentile summary of one histogram (all `u64`, so the JSON form
/// round-trips exactly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 if empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// 50th percentile (lower bucket bound).
    pub p50: u64,
    /// 95th percentile (lower bucket bound).
    pub p95: u64,
    /// 99th percentile (lower bucket bound).
    pub p99: u64,
}

impl HistogramSummary {
    /// Summarizes a histogram.
    pub fn of(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
        }
    }
}

/// A point-in-time view of a registry: named counters, gauges, and
/// histogram summaries. This is the one shape shared by
/// `Cluster::snapshot()`, `Job::snapshot()`, the chaos-harness failure
/// dump, and the `BENCH_*.json` files the experiment binaries write.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by rendered key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by rendered key.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by rendered key.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// Value of a counter in this snapshot (0 if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Value of a gauge in this snapshot (`None` if absent).
    pub fn gauge(&self, key: &str) -> Option<u64> {
        self.gauges.get(key).copied()
    }

    /// Serializes to a JSON object (RFC 8259 escaping, sorted keys).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99
            ));
        }
        out.push_str("}}");
        out
    }

    /// Parses the [`Snapshot::to_json`] form back. Returns `None` when
    /// the text is not a snapshot-shaped JSON object.
    pub fn from_json(text: &str) -> Option<Snapshot> {
        let doc = Json::parse(text)?;
        Snapshot::from_value(&doc)
    }

    /// Builds a snapshot from an already-parsed JSON value.
    pub fn from_value(doc: &Json) -> Option<Snapshot> {
        let obj = doc.as_object()?;
        let mut snap = Snapshot::default();
        for (k, v) in obj.get("counters")?.as_object()? {
            snap.counters.insert(k.clone(), v.as_u64()?);
        }
        for (k, v) in obj.get("gauges")?.as_object()? {
            snap.gauges.insert(k.clone(), v.as_u64()?);
        }
        for (k, v) in obj.get("histograms")?.as_object()? {
            let h = v.as_object()?;
            let field = |name: &str| h.get(name).and_then(Json::as_u64);
            snap.histograms.insert(
                k.clone(),
                HistogramSummary {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    p50: field("p50")?,
                    p95: field("p95")?,
                    p99: field("p99")?,
                },
            );
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_key_sorts_labels() {
        assert_eq!(render_key("a.b", &[]), "a.b");
        assert_eq!(render_key("a.b", &[("z", "1"), ("a", "2")]), "a.b{a=2,z=1}");
    }

    #[cfg(not(feature = "obs-off"))]
    mod enabled {
        use super::super::*;

        #[test]
        fn counters_accumulate_and_share() {
            let r = Registry::new();
            let a = r.counter("c.x");
            let b = r.counter("c.x");
            a.inc();
            b.add(4);
            assert_eq!(r.counter_value("c.x"), 5);
            assert_eq!(a.get(), 5);
        }

        #[test]
        fn labeled_instruments_are_distinct() {
            let r = Registry::new();
            r.counter_with("c", &[("tp", "t-0")]).inc();
            r.counter_with("c", &[("tp", "t-1")]).add(2);
            assert_eq!(r.counter_value_with("c", &[("tp", "t-0")]), 1);
            assert_eq!(r.counter_value_with("c", &[("tp", "t-1")]), 2);
            assert_eq!(r.counter_value("c"), 0);
        }

        #[test]
        fn gauges_set_and_max() {
            let r = Registry::new();
            let g = r.gauge("g.v");
            g.set(7);
            g.set_max(3); // lower: ignored
            assert_eq!(r.gauge_value("g.v"), Some(7));
            g.set_max(11);
            assert_eq!(g.get(), 11);
            assert_eq!(r.gauge_value("missing"), None);
        }

        #[test]
        fn snapshot_captures_everything() {
            let r = Registry::new();
            r.counter("c.one").inc();
            r.gauge_with("g.hw", &[("tp", "t-0")]).set(42);
            let h = r.histogram("h.lat");
            h.record(100);
            h.record(200);
            let snap = r.snapshot();
            assert_eq!(snap.counter("c.one"), 1);
            assert_eq!(snap.gauge("g.hw{tp=t-0}"), Some(42));
            let hs = snap.histograms.get("h.lat").copied().unwrap();
            assert_eq!(hs.count, 2);
            assert!(hs.min <= 100 && hs.max == 200);
        }

        #[test]
        fn disconnected_handles_are_noops() {
            let c = CounterHandle::default();
            c.inc();
            assert_eq!(c.get(), 0);
            let g = GaugeHandle::default();
            g.set(9);
            assert_eq!(g.get(), 0);
            let h = HistogramHandle::default();
            h.record(5);
            assert_eq!(h.read().count(), 0);
        }
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut snap = Snapshot::default();
        snap.counters.insert("cluster.messages_in".into(), 10);
        snap.counters.insert("log.append".into(), 12);
        snap.gauges
            .insert("partition.high_watermark{tp=t-0}".into(), 9);
        snap.histograms.insert(
            "produce.bytes".into(),
            HistogramSummary {
                count: 3,
                sum: 300,
                min: 50,
                max: 200,
                p50: 99,
                p95: 198,
                p99: 198,
            },
        );
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).expect("round trip parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Snapshot::from_json("").is_none());
        assert!(Snapshot::from_json("[]").is_none());
        assert!(Snapshot::from_json("{\"counters\":{}}").is_none());
        assert!(
            Snapshot::from_json("{\"counters\":{\"a\":-1},\"gauges\":{},\"histograms\":{}}")
                .is_none()
        );
    }

    #[test]
    fn keys_with_quotes_escape() {
        let mut snap = Snapshot::default();
        snap.counters.insert("weird\"key\\n".into(), 1);
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).expect("escaped key parses");
        assert_eq!(back, snap);
    }
}
