//! Unified observability: an instrument registry plus a causal tracer.
//!
//! Liquid's operational story (§5: tens of TB/day through hundreds of
//! jobs) presupposes operators can *see* the stack — per-partition lag,
//! replication progress, checkpoint cadence. This crate is the
//! measurement substrate the rest of the workspace wires through its
//! hot paths:
//!
//! * a thread-safe **instrument registry** ([`registry`]) of labeled
//!   counters, gauges, and log-bucketed histograms, addressable as
//!   `component.instrument{label=value}` and exportable as one
//!   JSON-serializable [`Snapshot`];
//! * a **causal event tracer** ([`trace`]): span IDs minted at produce
//!   time, propagated through replication, fetch, task delivery, and
//!   checkpoint, recorded into a bounded ring buffer with JSON export;
//! * the log-bucketed [`stats::Histogram`] and [`stats::Counter`]
//!   (moved here from `liquid_sim::stats`, which now re-exports them);
//! * a tiny dependency-free JSON writer/parser ([`json`]) used for
//!   snapshot export, round-trip tests, and the CI schema check.
//!
//! # Naming scheme
//!
//! Instrument names are lowercase dotted paths, `component.instrument`
//! (`cluster.messages_in`, `log.append`). Every fault-injection site in
//! `liquid_sim::failure::SITES` has a **twin counter with the exact
//! site name** (`log.append`, `replication.fetch`, …) counting attempts
//! at that site; `liquid-lint`'s `obs-instrument` rule enforces the
//! pairing. Labeled variants render sorted label pairs in braces:
//! `partition.high_watermark{tp=orders-0}`.
//!
//! # The `obs-off` feature
//!
//! With `--features obs-off` every handle is a zero-sized no-op, the
//! registry stores nothing, and [`Tracer::mint`] returns span 0. All
//! `cfg` logic lives in this crate: dependents call the same API in
//! both modes and pay (almost) nothing when it is compiled out.

#![forbid(unsafe_code)]

pub mod json;
pub mod registry;
pub mod stats;
pub mod trace;

use std::sync::Arc;

pub use registry::{
    CounterHandle, GaugeHandle, HistogramHandle, HistogramSummary, Registry, Snapshot,
};
pub use stats::{Counter, Histogram};
pub use trace::{Event, Tracer};

/// A cheap-to-clone bundle of one [`Registry`] and one [`Tracer`].
///
/// Each subsystem config (`LogConfig`, `LsmConfig`, `ClusterConfig`)
/// carries one of these; cloning shares the underlying instruments, so
/// a cluster and the per-replica logs it opens report into the same
/// registry. `Obs::default()` is a fresh, private instance — tests and
/// unrelated components never share counters by accident.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
}

impl Obs {
    /// A fresh observability domain with empty instruments.
    pub fn new() -> Self {
        Obs::default()
    }

    /// The instrument registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The causal event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Convenience: a point-in-time snapshot of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_instruments() {
        let obs = Obs::new();
        let twin = obs.clone();
        obs.registry().counter("a.b").inc();
        twin.registry().counter("a.b").add(2);
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(obs.registry().counter_value("a.b"), 3);
        #[cfg(feature = "obs-off")]
        assert_eq!(obs.registry().counter_value("a.b"), 0);
    }

    #[test]
    fn default_instances_are_isolated() {
        let a = Obs::new();
        let b = Obs::new();
        a.registry().counter("x.y").inc();
        assert_eq!(b.registry().counter_value("x.y"), 0);
    }
}
