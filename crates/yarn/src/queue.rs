//! Capacity queues.
//!
//! Multi-tenancy (§4.5): independent teams share the cluster, each
//! submitting to a queue owning a fraction of the total CPU. The
//! manager rejects submissions that would push a queue past its
//! capacity, retaining quality-of-service per application while keeping
//! utilization high.

/// A named queue owning a fraction of cluster CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueConfig {
    /// Queue name (teams submit to queues).
    pub name: String,
    /// Fraction of total cluster CPU this queue may hold (0.0–1.0].
    pub capacity_fraction: f64,
}

impl QueueConfig {
    /// Creates a queue config.
    ///
    /// # Panics
    /// Panics if the fraction is not within (0.0, 1.0].
    pub fn new(name: &str, capacity_fraction: f64) -> Self {
        assert!(
            capacity_fraction > 0.0 && capacity_fraction <= 1.0,
            "capacity fraction out of range: {capacity_fraction}"
        );
        QueueConfig {
            name: name.to_string(),
            capacity_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_fractions_accepted() {
        let q = QueueConfig::new("q", 0.5);
        assert_eq!(q.capacity_fraction, 0.5);
        QueueConfig::new("all", 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_fraction_rejected() {
        QueueConfig::new("q", 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn over_one_rejected() {
        QueueConfig::new("q", 1.5);
    }
}
