//! Resource manager simulation (paper §3.2 "ETL-as-a-service", §4.4).
//!
//! Liquid executes ETL jobs from many teams centrally, so it must
//! guarantee per-job service levels: "the processing layer uses OS-level
//! resource isolation, as realized by Linux containers in Apache YARN,
//! thus restricting the memory and CPU resources of each job."
//!
//! This crate models exactly the mechanism the isolation experiment (E7)
//! needs: a cluster of **nodes** with CPU/memory capacity, **containers**
//! holding CPU quotas refilled each scheduler tick (a token bucket, the
//! discrete analogue of cgroup CPU shares), **queues** with capacity
//! fractions, and an isolation switch — with isolation *off*, containers
//! draw from the node's shared pool first-come-first-served, letting a
//! noisy neighbour starve its peers; with isolation *on*, each container
//! is capped at its quota.

#![forbid(unsafe_code)]

pub mod manager;
pub mod queue;

pub use manager::{ContainerId, ContainerRequest, NodeId, ResourceManager, YarnError};
pub use queue::QueueConfig;

/// Result alias for resource-manager operations.
pub type Result<T> = std::result::Result<T, YarnError>;
