//! Nodes, containers, placement and CPU accounting.

use std::collections::{HashMap, VecDeque};

use liquid_sim::lockdep::Mutex;

/// Identifies a node in the cluster.
pub type NodeId = u32;

/// Identifies a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub u64);

/// Resources a container asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerRequest {
    /// CPU work units granted per scheduler tick (cgroup share
    /// analogue).
    pub cpu_per_tick: u64,
    /// Memory reservation in MB (placement constraint).
    pub memory_mb: u64,
}

/// Errors from the resource manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YarnError {
    /// No node can ever satisfy the request.
    Unsatisfiable(String),
    /// Unknown container id.
    UnknownContainer(ContainerId),
    /// Unknown queue name.
    UnknownQueue(String),
    /// Queue capacity would be exceeded.
    QueueFull {
        /// The queue that is full.
        queue: String,
        /// CPU the queue may use in total.
        queue_cpu_capacity: u64,
    },
}

impl std::fmt::Display for YarnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            YarnError::Unsatisfiable(msg) => write!(f, "unsatisfiable request: {msg}"),
            YarnError::UnknownContainer(id) => write!(f, "unknown container {id:?}"),
            YarnError::UnknownQueue(q) => write!(f, "unknown queue {q}"),
            YarnError::QueueFull {
                queue,
                queue_cpu_capacity,
            } => write!(f, "queue {queue} full (cpu capacity {queue_cpu_capacity})"),
        }
    }
}

impl std::error::Error for YarnError {}

#[derive(Debug)]
struct Node {
    cpu_per_tick: u64,
    memory_mb: u64,
    /// Memory reserved by placed containers.
    memory_reserved: u64,
    /// CPU left in the shared pool this tick.
    cpu_pool: u64,
}

#[derive(Debug)]
struct Container {
    app: String,
    queue: String,
    node: NodeId,
    request: ContainerRequest,
    /// Quota remaining this tick (isolation on).
    budget: u64,
    /// Lifetime CPU actually consumed.
    consumed_total: u64,
}

#[derive(Debug)]
struct Pending {
    app: String,
    queue: String,
    request: ContainerRequest,
    id: u64,
}

struct State {
    nodes: Vec<Node>,
    containers: HashMap<ContainerId, Container>,
    pending: VecDeque<Pending>,
    queues: HashMap<String, crate::queue::QueueConfig>,
    next_container: u64,
    isolation: bool,
}

/// The resource manager. Internally synchronized.
pub struct ResourceManager {
    state: Mutex<State>,
}

impl Default for ResourceManager {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceManager {
    /// An empty cluster with isolation enabled and a `default` queue
    /// owning all capacity.
    pub fn new() -> Self {
        let mut queues = HashMap::new();
        queues.insert(
            "default".to_string(),
            crate::queue::QueueConfig {
                name: "default".to_string(),
                capacity_fraction: 1.0,
            },
        );
        ResourceManager {
            state: Mutex::new(
                "yarn.state",
                State {
                    nodes: Vec::new(),
                    containers: HashMap::new(),
                    pending: VecDeque::new(),
                    queues,
                    next_container: 1,
                    isolation: true,
                },
            ),
        }
    }

    /// Adds a node; returns its id.
    pub fn add_node(&self, cpu_per_tick: u64, memory_mb: u64) -> NodeId {
        let mut st = self.state.lock();
        st.nodes.push(Node {
            cpu_per_tick,
            memory_mb,
            memory_reserved: 0,
            cpu_pool: cpu_per_tick,
        });
        (st.nodes.len() - 1) as NodeId
    }

    /// Registers a queue with a fraction of cluster CPU capacity.
    pub fn add_queue(&self, config: crate::queue::QueueConfig) {
        self.state.lock().queues.insert(config.name.clone(), config);
    }

    /// Enables/disables isolation enforcement (the E7 ablation switch).
    pub fn set_isolation(&self, on: bool) {
        self.state.lock().isolation = on;
    }

    /// Whether isolation is enforced.
    pub fn isolation(&self) -> bool {
        self.state.lock().isolation
    }

    /// Submits a container request to the `default` queue.
    pub fn submit(&self, app: &str, request: ContainerRequest) -> crate::Result<ContainerId> {
        self.submit_to_queue(app, "default", request)
    }

    /// Submits a container request to a queue. Placement is immediate if
    /// a node fits; otherwise the request waits in the pending queue and
    /// is retried on every [`tick`](Self::tick).
    pub fn submit_to_queue(
        &self,
        app: &str,
        queue: &str,
        request: ContainerRequest,
    ) -> crate::Result<ContainerId> {
        let mut st = self.state.lock();
        let qcfg = st
            .queues
            .get(queue)
            .ok_or_else(|| YarnError::UnknownQueue(queue.to_string()))?
            .clone();
        // Queue capacity check: total quota of the queue's containers.
        let cluster_cpu: u64 = st.nodes.iter().map(|n| n.cpu_per_tick).sum();
        let queue_cap = (cluster_cpu as f64 * qcfg.capacity_fraction) as u64;
        let queue_used: u64 = st
            .containers
            .values()
            .filter(|c| c.queue == queue)
            .map(|c| c.request.cpu_per_tick)
            .sum();
        if queue_used + request.cpu_per_tick > queue_cap {
            return Err(YarnError::QueueFull {
                queue: queue.to_string(),
                queue_cpu_capacity: queue_cap,
            });
        }
        // Any node big enough in principle?
        if !st
            .nodes
            .iter()
            .any(|n| n.memory_mb >= request.memory_mb && n.cpu_per_tick >= request.cpu_per_tick)
        {
            return Err(YarnError::Unsatisfiable(format!(
                "no node can host cpu={} mem={}",
                request.cpu_per_tick, request.memory_mb
            )));
        }
        let id = st.next_container;
        st.next_container += 1;
        match place(&mut st, &request) {
            Some(node) => {
                st.containers.insert(
                    ContainerId(id),
                    Container {
                        app: app.to_string(),
                        queue: queue.to_string(),
                        node,
                        request,
                        budget: request.cpu_per_tick,
                        consumed_total: 0,
                    },
                );
                Ok(ContainerId(id))
            }
            None => {
                st.pending.push_back(Pending {
                    app: app.to_string(),
                    queue: queue.to_string(),
                    request,
                    id,
                });
                Ok(ContainerId(id))
            }
        }
    }

    /// Whether a container is running (placed on a node).
    pub fn is_running(&self, id: ContainerId) -> bool {
        self.state.lock().containers.contains_key(&id)
    }

    /// Releases a container, freeing its memory reservation and trying
    /// pending placements.
    pub fn release(&self, id: ContainerId) -> crate::Result<()> {
        let mut st = self.state.lock();
        let c = st
            .containers
            .remove(&id)
            .ok_or(YarnError::UnknownContainer(id))?;
        st.nodes[c.node as usize].memory_reserved -= c.request.memory_mb;
        try_place_pending(&mut st);
        Ok(())
    }

    /// Advances one scheduler tick: refills every node's shared CPU pool
    /// and every container's quota, then retries pending placements.
    pub fn tick(&self) {
        let mut st = self.state.lock();
        for n in &mut st.nodes {
            n.cpu_pool = n.cpu_per_tick;
        }
        let ids: Vec<ContainerId> = st.containers.keys().copied().collect();
        for id in ids {
            let quota = st.containers[&id].request.cpu_per_tick;
            st.containers.get_mut(&id).expect("exists").budget = quota;
        }
        try_place_pending(&mut st);
    }

    /// A container asks to burn `want` CPU units; returns how much it
    /// was granted this tick.
    ///
    /// * isolation **on**: bounded by the container's remaining quota
    ///   *and* the node's pool — a greedy container cannot exceed its
    ///   share;
    /// * isolation **off**: bounded only by the node pool — first come,
    ///   first served (the misbehaving-job failure mode of §2.1/§4.4).
    pub fn try_consume(&self, id: ContainerId, want: u64) -> crate::Result<u64> {
        let mut st = self.state.lock();
        let isolation = st.isolation;
        let c = st
            .containers
            .get(&id)
            .ok_or(YarnError::UnknownContainer(id))?;
        let node = c.node as usize;
        let cap = if isolation {
            c.budget.min(st.nodes[node].cpu_pool)
        } else {
            st.nodes[node].cpu_pool
        };
        let granted = want.min(cap);
        st.nodes[node].cpu_pool -= granted;
        let c = st.containers.get_mut(&id).expect("checked above");
        c.budget = c.budget.saturating_sub(granted);
        c.consumed_total += granted;
        Ok(granted)
    }

    /// Lifetime CPU consumed by a container.
    pub fn consumed(&self, id: ContainerId) -> crate::Result<u64> {
        let st = self.state.lock();
        st.containers
            .get(&id)
            .map(|c| c.consumed_total)
            .ok_or(YarnError::UnknownContainer(id))
    }

    /// Containers currently placed per application.
    pub fn containers_of(&self, app: &str) -> Vec<ContainerId> {
        let st = self.state.lock();
        let mut v: Vec<ContainerId> = st
            .containers
            .iter()
            .filter(|(_, c)| c.app == app)
            .map(|(&id, _)| id)
            .collect();
        v.sort();
        v
    }

    /// Requests waiting for capacity.
    pub fn pending_count(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// `(reserved, total)` memory on a node.
    pub fn node_memory(&self, node: NodeId) -> (u64, u64) {
        let st = self.state.lock();
        let n = &st.nodes[node as usize];
        (n.memory_reserved, n.memory_mb)
    }
}

fn place(st: &mut State, request: &ContainerRequest) -> Option<NodeId> {
    // Best-fit by remaining memory.
    let mut best: Option<(usize, u64)> = None;
    for (i, n) in st.nodes.iter().enumerate() {
        let free = n.memory_mb.saturating_sub(n.memory_reserved);
        if free >= request.memory_mb {
            let leftover = free - request.memory_mb;
            if best.is_none_or(|(_, b)| leftover < b) {
                best = Some((i, leftover));
            }
        }
    }
    let (node, _) = best?;
    st.nodes[node].memory_reserved += request.memory_mb;
    Some(node as NodeId)
}

fn try_place_pending(st: &mut State) {
    let mut remaining = VecDeque::new();
    while let Some(p) = st.pending.pop_front() {
        match place(st, &p.request) {
            Some(node) => {
                st.containers.insert(
                    ContainerId(p.id),
                    Container {
                        app: p.app,
                        queue: p.queue,
                        node,
                        request: p.request,
                        budget: p.request.cpu_per_tick,
                        consumed_total: 0,
                    },
                );
            }
            None => remaining.push_back(p),
        }
    }
    st.pending = remaining;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cpu: u64, mem: u64) -> ContainerRequest {
        ContainerRequest {
            cpu_per_tick: cpu,
            memory_mb: mem,
        }
    }

    #[test]
    fn submit_places_on_node() {
        let rm = ResourceManager::new();
        rm.add_node(1000, 4096);
        let c = rm.submit("app", req(500, 1024)).unwrap();
        assert!(rm.is_running(c));
        assert_eq!(rm.node_memory(0), (1024, 4096));
    }

    #[test]
    fn unsatisfiable_rejected() {
        let rm = ResourceManager::new();
        rm.add_node(1000, 1024);
        assert!(matches!(
            rm.submit("app", req(500, 9999)),
            Err(YarnError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn oversubscribed_memory_queues_until_release() {
        let rm = ResourceManager::new();
        rm.add_node(1000, 1024);
        let a = rm.submit("a", req(100, 800)).unwrap();
        let b = rm.submit("b", req(100, 800)).unwrap();
        assert!(rm.is_running(a));
        assert!(!rm.is_running(b), "b must wait for memory");
        assert_eq!(rm.pending_count(), 1);
        rm.release(a).unwrap();
        assert!(rm.is_running(b), "released memory lets b place");
        assert_eq!(rm.pending_count(), 0);
    }

    #[test]
    fn isolation_caps_greedy_container() {
        let rm = ResourceManager::new();
        rm.add_node(1000, 4096);
        let greedy = rm.submit("noisy", req(500, 100)).unwrap();
        let polite = rm.submit("polite", req(500, 100)).unwrap();
        rm.tick();
        // Greedy asks for 4x its quota but gets only its share.
        assert_eq!(rm.try_consume(greedy, 2000).unwrap(), 500);
        assert_eq!(rm.try_consume(polite, 500).unwrap(), 500);
    }

    #[test]
    fn no_isolation_lets_noisy_starve_polite() {
        let rm = ResourceManager::new();
        rm.add_node(1000, 4096);
        rm.set_isolation(false);
        let greedy = rm.submit("noisy", req(500, 100)).unwrap();
        let polite = rm.submit("polite", req(500, 100)).unwrap();
        rm.tick();
        assert_eq!(rm.try_consume(greedy, 2000).unwrap(), 1000, "took the node");
        assert_eq!(rm.try_consume(polite, 500).unwrap(), 0, "starved");
    }

    #[test]
    fn tick_refills_budgets() {
        let rm = ResourceManager::new();
        rm.add_node(1000, 4096);
        let c = rm.submit("a", req(300, 100)).unwrap();
        rm.tick();
        assert_eq!(rm.try_consume(c, 300).unwrap(), 300);
        assert_eq!(rm.try_consume(c, 300).unwrap(), 0, "budget exhausted");
        rm.tick();
        assert_eq!(rm.try_consume(c, 300).unwrap(), 300, "refilled");
        assert_eq!(rm.consumed(c).unwrap(), 600);
    }

    #[test]
    fn queue_capacity_enforced() {
        let rm = ResourceManager::new();
        rm.add_node(1000, 8192);
        rm.add_queue(crate::queue::QueueConfig {
            name: "analytics".to_string(),
            capacity_fraction: 0.3,
        });
        let ok = rm.submit_to_queue("a", "analytics", req(300, 100));
        assert!(ok.is_ok());
        let too_much = rm.submit_to_queue("b", "analytics", req(100, 100));
        assert!(matches!(too_much, Err(YarnError::QueueFull { .. })));
        assert!(matches!(
            rm.submit_to_queue("c", "ghost", req(1, 1)),
            Err(YarnError::UnknownQueue(_))
        ));
    }

    #[test]
    fn containers_tracked_per_app() {
        let rm = ResourceManager::new();
        rm.add_node(1000, 8192);
        let a1 = rm.submit("job-a", req(100, 100)).unwrap();
        let _b = rm.submit("job-b", req(100, 100)).unwrap();
        let a2 = rm.submit("job-a", req(100, 100)).unwrap();
        assert_eq!(rm.containers_of("job-a"), vec![a1, a2]);
    }

    #[test]
    fn best_fit_prefers_tighter_node() {
        let rm = ResourceManager::new();
        rm.add_node(1000, 10_000);
        rm.add_node(1000, 1_000);
        // Fits both; best-fit should pick the small node.
        rm.submit("a", req(100, 900)).unwrap();
        assert_eq!(rm.node_memory(1), (900, 1000));
        assert_eq!(rm.node_memory(0), (0, 10_000));
    }

    #[test]
    fn release_unknown_errors() {
        let rm = ResourceManager::new();
        assert!(rm.release(ContainerId(77)).is_err());
        assert!(rm.try_consume(ContainerId(77), 1).is_err());
    }
}
