//! Leader election recipe.
//!
//! The standard ZooKeeper recipe: each candidate creates an ephemeral
//! sequential node under an election path; the candidate owning the
//! lowest sequence is the leader. When a leader's session expires its
//! node disappears and the next-lowest candidate takes over. The
//! messaging layer runs one election per partition to pick the lead
//! broker (paper §4.3).

use crate::session::Session;
use crate::tree::{CoordService, CreateMode};

/// A participant in a leader election.
pub struct LeaderElection {
    service: CoordService,
    session: Session,
    election_path: String,
    my_node: String,
}

impl LeaderElection {
    /// Joins the election at `election_path` (created if missing),
    /// advertising `data` (e.g. a broker id) on the candidate node.
    pub fn join(
        service: &CoordService,
        session: &Session,
        election_path: &str,
        data: &[u8],
    ) -> crate::Result<Self> {
        service.ensure_path(election_path)?;
        let my_node = service.create(
            &format!("{election_path}/candidate-"),
            data,
            CreateMode::EphemeralSequential,
            Some(session.id()),
        )?;
        Ok(LeaderElection {
            service: service.clone(),
            session: session.clone(),
            election_path: election_path.to_string(),
            my_node,
        })
    }

    /// Path of this participant's candidate node.
    pub fn candidate_path(&self) -> &str {
        &self.my_node
    }

    /// The session this candidacy is bound to.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Whether this participant currently leads.
    pub fn is_leader(&self) -> crate::Result<bool> {
        Ok(self.leader_node()? == Some(self.my_node.clone()))
    }

    /// The full path of the current leader's node, if any candidate
    /// remains.
    pub fn leader_node(&self) -> crate::Result<Option<String>> {
        let children = self.service.get_children(&self.election_path, None)?;
        Ok(children
            .into_iter()
            .min()
            .map(|name| format!("{}/{name}", self.election_path)))
    }

    /// The advertised data of the current leader, if any.
    pub fn leader_data(&self) -> crate::Result<Option<Vec<u8>>> {
        match self.leader_node()? {
            Some(path) => Ok(Some(self.service.get_data(&path)?.0)),
            None => Ok(None),
        }
    }

    /// Withdraws from the election.
    pub fn resign(self) -> crate::Result<()> {
        self.service.delete(&self.my_node, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::CoordService;
    use liquid_sim::clock::SimClock;

    fn setup() -> CoordService {
        CoordService::new(SimClock::new(0).shared())
    }

    #[test]
    fn first_joiner_leads() {
        let s = setup();
        let sess = s.create_session(1000);
        let e = LeaderElection::join(&s, &sess, "/election/p0", b"broker-1").unwrap();
        assert!(e.is_leader().unwrap());
        assert_eq!(e.leader_data().unwrap().unwrap(), b"broker-1");
    }

    #[test]
    fn second_joiner_waits() {
        let s = setup();
        let s1 = s.create_session(1000);
        let s2 = s.create_session(1000);
        let e1 = LeaderElection::join(&s, &s1, "/el", b"b1").unwrap();
        let e2 = LeaderElection::join(&s, &s2, "/el", b"b2").unwrap();
        assert!(e1.is_leader().unwrap());
        assert!(!e2.is_leader().unwrap());
    }

    #[test]
    fn leadership_hands_over_on_session_expiry() {
        let s = setup();
        let s1 = s.create_session(1000);
        let s2 = s.create_session(1000);
        let _e1 = LeaderElection::join(&s, &s1, "/el", b"b1").unwrap();
        let e2 = LeaderElection::join(&s, &s2, "/el", b"b2").unwrap();
        s.expire_session(s1.id());
        assert!(e2.is_leader().unwrap());
        assert_eq!(e2.leader_data().unwrap().unwrap(), b"b2");
    }

    #[test]
    fn resign_hands_over() {
        let s = setup();
        let s1 = s.create_session(1000);
        let s2 = s.create_session(1000);
        let e1 = LeaderElection::join(&s, &s1, "/el", b"b1").unwrap();
        let e2 = LeaderElection::join(&s, &s2, "/el", b"b2").unwrap();
        e1.resign().unwrap();
        assert!(e2.is_leader().unwrap());
    }

    #[test]
    fn no_candidates_no_leader() {
        let s = setup();
        let s1 = s.create_session(1000);
        let e1 = LeaderElection::join(&s, &s1, "/el", b"b1").unwrap();
        let probe = LeaderElection::join(&s, &s1, "/el", b"probe").unwrap();
        e1.resign().unwrap();
        probe.resign().unwrap();
        // Fresh observer sees an empty election.
        let s2 = s.create_session(1000);
        let e = LeaderElection::join(&s, &s2, "/el", b"x").unwrap();
        e.resign().unwrap();
        let remaining = s.get_children("/el", None).unwrap();
        assert!(remaining.is_empty());
    }

    #[test]
    fn elections_are_independent_per_path() {
        let s = setup();
        let sess = s.create_session(1000);
        let e1 = LeaderElection::join(&s, &sess, "/el/p0", b"b1").unwrap();
        let s2 = s.create_session(1000);
        let e2 = LeaderElection::join(&s, &s2, "/el/p1", b"b2").unwrap();
        assert!(e1.is_leader().unwrap());
        assert!(e2.is_leader().unwrap());
    }
}
