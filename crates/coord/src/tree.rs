//! The znode tree: hierarchical namespace, versions, watches.

use liquid_sim::sched::Sender;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use liquid_sim::clock::{SharedClock, Ts};
use liquid_sim::lockdep::Mutex;

use crate::session::SessionId;

/// How a znode is created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    /// Survives session expiry.
    Persistent,
    /// Deleted when the owning session expires.
    Ephemeral,
    /// Persistent, with a monotonically increasing suffix appended.
    PersistentSequential,
    /// Ephemeral and sequential.
    EphemeralSequential,
}

impl CreateMode {
    fn is_ephemeral(self) -> bool {
        matches!(
            self,
            CreateMode::Ephemeral | CreateMode::EphemeralSequential
        )
    }

    fn is_sequential(self) -> bool {
        matches!(
            self,
            CreateMode::PersistentSequential | CreateMode::EphemeralSequential
        )
    }
}

/// Metadata returned with reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stat {
    /// Data version, bumped on every `set_data`.
    pub version: u64,
    /// Transaction id that created the node.
    pub czxid: u64,
    /// Transaction id of the last modification.
    pub mzxid: u64,
    /// Owning session for ephemeral nodes.
    pub ephemeral_owner: Option<SessionId>,
    /// Number of direct children.
    pub num_children: usize,
}

/// Errors from coordination operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// Path does not exist.
    NoNode(String),
    /// Path already exists.
    NodeExists(String),
    /// Conditional update failed.
    BadVersion {
        /// The path being updated.
        path: String,
        /// Version the caller expected.
        expected: u64,
        /// Version actually present.
        actual: u64,
    },
    /// Delete of a node that still has children.
    NotEmpty(String),
    /// Operation used an expired or unknown session.
    SessionExpired(SessionId),
    /// Malformed path.
    InvalidPath(String),
    /// Ephemeral nodes may not have children.
    NoChildrenForEphemerals(String),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::NoNode(p) => write!(f, "no node: {p}"),
            CoordError::NodeExists(p) => write!(f, "node exists: {p}"),
            CoordError::BadVersion {
                path,
                expected,
                actual,
            } => write!(
                f,
                "bad version on {path}: expected {expected}, actual {actual}"
            ),
            CoordError::NotEmpty(p) => write!(f, "node not empty: {p}"),
            CoordError::SessionExpired(s) => write!(f, "session expired: {s:?}"),
            CoordError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            CoordError::NoChildrenForEphemerals(p) => {
                write!(f, "ephemeral nodes cannot have children: {p}")
            }
        }
    }
}

impl std::error::Error for CoordError {}

/// What a watch observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Path the event concerns.
    pub path: String,
    /// Kind of change.
    pub kind: WatchKind,
}

/// Kinds of watch events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    /// Node was created (fires for watches set on a then-missing path).
    Created,
    /// Node data changed.
    DataChanged,
    /// Node was deleted.
    Deleted,
    /// The node's child list changed.
    ChildrenChanged,
}

#[derive(Debug)]
struct Znode {
    data: Vec<u8>,
    version: u64,
    czxid: u64,
    mzxid: u64,
    ephemeral_owner: Option<SessionId>,
    children: BTreeSet<String>,
    seq_counter: u64,
}

#[derive(Debug, Default)]
struct SessionState {
    last_heartbeat: Ts,
    timeout_ms: u64,
    ephemerals: BTreeSet<String>,
}

struct State {
    nodes: HashMap<String, Znode>,
    next_zxid: u64,
    next_session: u64,
    sessions: HashMap<SessionId, SessionState>,
    data_watches: HashMap<String, Vec<Sender<WatchEvent>>>,
    child_watches: HashMap<String, Vec<Sender<WatchEvent>>>,
}

/// The coordination service. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct CoordService {
    state: Arc<Mutex<State>>,
    clock: SharedClock,
}

impl CoordService {
    /// Creates a service with a root node `/`.
    pub fn new(clock: SharedClock) -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(
            "/".to_string(),
            Znode {
                data: Vec::new(),
                version: 0,
                czxid: 0,
                mzxid: 0,
                ephemeral_owner: None,
                children: BTreeSet::new(),
                seq_counter: 0,
            },
        );
        CoordService {
            state: Arc::new(Mutex::new(
                "coord.tree",
                State {
                    nodes,
                    next_zxid: 1,
                    next_session: 1,
                    sessions: HashMap::new(),
                    data_watches: HashMap::new(),
                    child_watches: HashMap::new(),
                },
            )),
            clock,
        }
    }

    /// Opens a new session with the given timeout.
    pub fn create_session(&self, timeout_ms: u64) -> crate::Session {
        let id = {
            let mut st = self.state.lock();
            let id = SessionId(st.next_session);
            st.next_session += 1;
            st.sessions.insert(
                id,
                SessionState {
                    last_heartbeat: self.clock.now(),
                    timeout_ms,
                    ephemerals: BTreeSet::new(),
                },
            );
            id
        };
        crate::Session::new(id, self.clone())
    }

    /// Records a heartbeat for `session`.
    pub fn heartbeat(&self, session: SessionId) -> crate::Result<()> {
        let mut st = self.state.lock();
        let now = self.clock.now();
        match st.sessions.get_mut(&session) {
            Some(s) => {
                s.last_heartbeat = now;
                Ok(())
            }
            None => Err(CoordError::SessionExpired(session)),
        }
    }

    /// Whether `session` is still live.
    pub fn session_alive(&self, session: SessionId) -> bool {
        self.state.lock().sessions.contains_key(&session)
    }

    /// Forcibly expires a session, deleting its ephemeral nodes and firing
    /// the corresponding watches. Used for failure injection and by
    /// [`expire_stale_sessions`](Self::expire_stale_sessions).
    pub fn expire_session(&self, session: SessionId) {
        let mut st = self.state.lock();
        let Some(sess) = st.sessions.remove(&session) else {
            return;
        };
        // Delete deepest-first so parents are empty by the time we reach
        // them (ephemerals cannot have children, but be defensive).
        let mut paths: Vec<String> = sess.ephemerals.into_iter().collect();
        paths.sort_by_key(|p| std::cmp::Reverse(p.len()));
        for path in paths {
            Self::delete_locked(&mut st, &path, None).ok();
        }
    }

    /// Expires every session whose heartbeat is older than its timeout;
    /// returns the expired session ids.
    pub fn expire_stale_sessions(&self) -> Vec<SessionId> {
        let now = self.clock.now();
        let stale: Vec<SessionId> = {
            let st = self.state.lock();
            st.sessions
                .iter()
                .filter(|(_, s)| s.last_heartbeat + s.timeout_ms <= now)
                .map(|(&id, _)| id)
                .collect()
        };
        for id in &stale {
            self.expire_session(*id);
        }
        stale
    }

    /// Creates a znode. For sequential modes the actual path (with the
    /// appended 10-digit suffix) is returned.
    pub fn create(
        &self,
        path: &str,
        data: &[u8],
        mode: CreateMode,
        session: Option<SessionId>,
    ) -> crate::Result<String> {
        validate_path(path)?;
        if path == "/" {
            return Err(CoordError::NodeExists("/".into()));
        }
        let mut st = self.state.lock();
        if mode.is_ephemeral() {
            let sid = session.ok_or(CoordError::InvalidPath(
                "ephemeral create requires a session".into(),
            ))?;
            if !st.sessions.contains_key(&sid) {
                return Err(CoordError::SessionExpired(sid));
            }
        }
        let parent = parent_path(path);
        let name = node_name(path);
        let actual_name;
        {
            let parent_node = st
                .nodes
                .get_mut(&parent)
                .ok_or_else(|| CoordError::NoNode(parent.clone()))?;
            if parent_node.ephemeral_owner.is_some() {
                return Err(CoordError::NoChildrenForEphemerals(parent.clone()));
            }
            actual_name = if mode.is_sequential() {
                let n = parent_node.seq_counter;
                parent_node.seq_counter += 1;
                format!("{name}{n:010}")
            } else {
                name.to_string()
            };
            if parent_node.children.contains(&actual_name) {
                return Err(CoordError::NodeExists(join(&parent, &actual_name)));
            }
            parent_node.children.insert(actual_name.clone());
        }
        let actual_path = join(&parent, &actual_name);
        let zxid = st.next_zxid;
        st.next_zxid += 1;
        st.nodes.insert(
            actual_path.clone(),
            Znode {
                data: data.to_vec(),
                version: 0,
                czxid: zxid,
                mzxid: zxid,
                ephemeral_owner: if mode.is_ephemeral() { session } else { None },
                children: BTreeSet::new(),
                seq_counter: 0,
            },
        );
        if mode.is_ephemeral() {
            if let Some(sid) = session {
                if let Some(s) = st.sessions.get_mut(&sid) {
                    s.ephemerals.insert(actual_path.clone());
                }
            }
        }
        fire(&mut st.data_watches, &actual_path, WatchKind::Created);
        fire(&mut st.child_watches, &parent, WatchKind::ChildrenChanged);
        Ok(actual_path)
    }

    /// Reads a znode's data and stat.
    pub fn get_data(&self, path: &str) -> crate::Result<(Vec<u8>, Stat)> {
        validate_path(path)?;
        let st = self.state.lock();
        let node = st
            .nodes
            .get(path)
            .ok_or_else(|| CoordError::NoNode(path.into()))?;
        Ok((node.data.clone(), stat_of(node)))
    }

    /// Updates a znode's data. `expected_version` of `None` is an
    /// unconditional write; `Some(v)` fails with
    /// [`CoordError::BadVersion`] unless the current version is `v`.
    /// Returns the new stat.
    pub fn set_data(
        &self,
        path: &str,
        data: &[u8],
        expected_version: Option<u64>,
    ) -> crate::Result<Stat> {
        validate_path(path)?;
        let mut st = self.state.lock();
        let zxid = st.next_zxid;
        let node = st
            .nodes
            .get_mut(path)
            .ok_or_else(|| CoordError::NoNode(path.into()))?;
        if let Some(v) = expected_version {
            if node.version != v {
                return Err(CoordError::BadVersion {
                    path: path.into(),
                    expected: v,
                    actual: node.version,
                });
            }
        }
        st.next_zxid += 1;
        let node = match st.nodes.get_mut(path) {
            Some(n) => n,
            None => return Err(CoordError::NoNode(path.into())),
        };
        node.data = data.to_vec();
        node.version += 1;
        node.mzxid = zxid;
        let stat = stat_of(node);
        fire(&mut st.data_watches, path, WatchKind::DataChanged);
        Ok(stat)
    }

    /// Deletes a childless znode, with optional version check.
    pub fn delete(&self, path: &str, expected_version: Option<u64>) -> crate::Result<()> {
        validate_path(path)?;
        if path == "/" {
            return Err(CoordError::InvalidPath("cannot delete root".into()));
        }
        let mut st = self.state.lock();
        Self::delete_locked(&mut st, path, expected_version)
    }

    fn delete_locked(
        st: &mut State,
        path: &str,
        expected_version: Option<u64>,
    ) -> crate::Result<()> {
        let node = st
            .nodes
            .get(path)
            .ok_or_else(|| CoordError::NoNode(path.into()))?;
        if !node.children.is_empty() {
            return Err(CoordError::NotEmpty(path.into()));
        }
        if let Some(v) = expected_version {
            if node.version != v {
                return Err(CoordError::BadVersion {
                    path: path.into(),
                    expected: v,
                    actual: node.version,
                });
            }
        }
        let owner = node.ephemeral_owner;
        st.nodes.remove(path);
        let parent = parent_path(path);
        if let Some(p) = st.nodes.get_mut(&parent) {
            p.children.remove(node_name(path));
        }
        if let Some(sid) = owner {
            if let Some(s) = st.sessions.get_mut(&sid) {
                s.ephemerals.remove(path);
            }
        }
        fire(&mut st.data_watches, path, WatchKind::Deleted);
        fire(&mut st.child_watches, &parent, WatchKind::ChildrenChanged);
        Ok(())
    }

    /// Whether a node exists; optionally registers a one-shot watch that
    /// fires on creation, data change or deletion of `path`.
    pub fn exists(&self, path: &str, watch: Option<Sender<WatchEvent>>) -> crate::Result<bool> {
        validate_path(path)?;
        let mut st = self.state.lock();
        let present = st.nodes.contains_key(path);
        if let Some(w) = watch {
            st.data_watches.entry(path.into()).or_default().push(w);
        }
        Ok(present)
    }

    /// Lists a node's children (names, sorted); optionally registers a
    /// one-shot watch on the child list.
    pub fn get_children(
        &self,
        path: &str,
        watch: Option<Sender<WatchEvent>>,
    ) -> crate::Result<Vec<String>> {
        validate_path(path)?;
        let mut st = self.state.lock();
        let node = st
            .nodes
            .get(path)
            .ok_or_else(|| CoordError::NoNode(path.into()))?;
        let children: Vec<String> = node.children.iter().cloned().collect();
        if let Some(w) = watch {
            st.child_watches.entry(path.into()).or_default().push(w);
        }
        Ok(children)
    }

    /// Registers a one-shot data watch without reading.
    pub fn watch_data(&self, path: &str, watch: Sender<WatchEvent>) -> crate::Result<()> {
        validate_path(path)?;
        self.state
            .lock()
            .data_watches
            .entry(path.into())
            .or_default()
            .push(watch);
        Ok(())
    }

    /// Creates all missing ancestors of `path` (persistent, empty data),
    /// then `path` itself if missing. Returns whether `path` was created.
    pub fn ensure_path(&self, path: &str) -> crate::Result<bool> {
        validate_path(path)?;
        if path == "/" {
            return Ok(false);
        }
        let mut prefix = String::new();
        let mut created = false;
        for part in path.trim_start_matches('/').split('/') {
            prefix.push('/');
            prefix.push_str(part);
            match self.create(&prefix, &[], CreateMode::Persistent, None) {
                Ok(_) => created = true,
                Err(CoordError::NodeExists(_)) => created = false,
                Err(e) => return Err(e),
            }
        }
        Ok(created)
    }

    /// Number of znodes (including the root).
    pub fn node_count(&self) -> usize {
        self.state.lock().nodes.len()
    }
}

fn stat_of(node: &Znode) -> Stat {
    Stat {
        version: node.version,
        czxid: node.czxid,
        mzxid: node.mzxid,
        ephemeral_owner: node.ephemeral_owner,
        num_children: node.children.len(),
    }
}

fn fire(watches: &mut HashMap<String, Vec<Sender<WatchEvent>>>, path: &str, kind: WatchKind) {
    if let Some(list) = watches.remove(path) {
        for w in list {
            // Receiver may be gone; that watcher simply misses the event.
            w.send(WatchEvent {
                path: path.to_string(),
                kind,
            })
            .ok();
        }
    }
}

fn validate_path(path: &str) -> crate::Result<()> {
    if path.is_empty() || !path.starts_with('/') {
        return Err(CoordError::InvalidPath(path.into()));
    }
    if path != "/" && path.ends_with('/') {
        return Err(CoordError::InvalidPath(path.into()));
    }
    if path.contains("//") {
        return Err(CoordError::InvalidPath(path.into()));
    }
    Ok(())
}

fn parent_path(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => path.get(..i).unwrap_or("/").to_string(),
    }
}

fn node_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn join(parent: &str, name: &str) -> String {
    if parent == "/" {
        format!("/{name}")
    } else {
        format!("{parent}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_sim::clock::SimClock;
    use liquid_sim::sched::chan as channel;

    fn svc() -> (CoordService, SimClock) {
        let clock = SimClock::new(0);
        (CoordService::new(clock.shared()), clock)
    }

    #[test]
    fn create_and_read() {
        let (s, _) = svc();
        s.create("/a", b"hello", CreateMode::Persistent, None)
            .unwrap();
        let (data, stat) = s.get_data("/a").unwrap();
        assert_eq!(data, b"hello");
        assert_eq!(stat.version, 0);
        assert_eq!(stat.num_children, 0);
    }

    #[test]
    fn create_duplicate_fails() {
        let (s, _) = svc();
        s.create("/a", b"", CreateMode::Persistent, None).unwrap();
        assert!(matches!(
            s.create("/a", b"", CreateMode::Persistent, None),
            Err(CoordError::NodeExists(_))
        ));
    }

    #[test]
    fn create_without_parent_fails() {
        let (s, _) = svc();
        assert!(matches!(
            s.create("/a/b", b"", CreateMode::Persistent, None),
            Err(CoordError::NoNode(_))
        ));
    }

    #[test]
    fn nested_create_and_children() {
        let (s, _) = svc();
        s.create("/a", b"", CreateMode::Persistent, None).unwrap();
        s.create("/a/x", b"", CreateMode::Persistent, None).unwrap();
        s.create("/a/y", b"", CreateMode::Persistent, None).unwrap();
        assert_eq!(s.get_children("/a", None).unwrap(), vec!["x", "y"]);
    }

    #[test]
    fn set_data_bumps_version() {
        let (s, _) = svc();
        s.create("/a", b"1", CreateMode::Persistent, None).unwrap();
        let stat = s.set_data("/a", b"2", None).unwrap();
        assert_eq!(stat.version, 1);
        assert_eq!(s.get_data("/a").unwrap().0, b"2");
    }

    #[test]
    fn conditional_set_enforces_version() {
        let (s, _) = svc();
        s.create("/a", b"1", CreateMode::Persistent, None).unwrap();
        s.set_data("/a", b"2", Some(0)).unwrap();
        let err = s.set_data("/a", b"3", Some(0)).unwrap_err();
        assert!(matches!(err, CoordError::BadVersion { actual: 1, .. }));
    }

    #[test]
    fn delete_requires_empty() {
        let (s, _) = svc();
        s.create("/a", b"", CreateMode::Persistent, None).unwrap();
        s.create("/a/b", b"", CreateMode::Persistent, None).unwrap();
        assert!(matches!(s.delete("/a", None), Err(CoordError::NotEmpty(_))));
        s.delete("/a/b", None).unwrap();
        s.delete("/a", None).unwrap();
        assert!(!s.exists("/a", None).unwrap());
    }

    #[test]
    fn sequential_names_increase() {
        let (s, _) = svc();
        s.create("/q", b"", CreateMode::Persistent, None).unwrap();
        let a = s
            .create("/q/n-", b"", CreateMode::PersistentSequential, None)
            .unwrap();
        let b = s
            .create("/q/n-", b"", CreateMode::PersistentSequential, None)
            .unwrap();
        assert_eq!(a, "/q/n-0000000000");
        assert_eq!(b, "/q/n-0000000001");
        assert!(a < b);
    }

    #[test]
    fn ephemeral_requires_session_and_dies_with_it() {
        let (s, _) = svc();
        let sess = s.create_session(1000);
        s.create("/e", b"", CreateMode::Ephemeral, Some(sess.id()))
            .unwrap();
        assert!(s.exists("/e", None).unwrap());
        s.expire_session(sess.id());
        assert!(!s.exists("/e", None).unwrap());
    }

    #[test]
    fn ephemeral_without_session_rejected() {
        let (s, _) = svc();
        assert!(s.create("/e", b"", CreateMode::Ephemeral, None).is_err());
    }

    #[test]
    fn ephemeral_cannot_have_children() {
        let (s, _) = svc();
        let sess = s.create_session(1000);
        s.create("/e", b"", CreateMode::Ephemeral, Some(sess.id()))
            .unwrap();
        assert!(matches!(
            s.create("/e/c", b"", CreateMode::Persistent, None),
            Err(CoordError::NoChildrenForEphemerals(_))
        ));
    }

    #[test]
    fn stale_sessions_expire_on_timeout() {
        let (s, clock) = svc();
        let sess = s.create_session(100);
        s.create("/e", b"", CreateMode::Ephemeral, Some(sess.id()))
            .unwrap();
        clock.advance(50);
        s.heartbeat(sess.id()).unwrap();
        clock.advance(99);
        assert!(s.expire_stale_sessions().is_empty());
        clock.advance(1);
        assert_eq!(s.expire_stale_sessions(), vec![sess.id()]);
        assert!(!s.exists("/e", None).unwrap());
    }

    #[test]
    fn data_watch_fires_once_on_change() {
        let (s, _) = svc();
        s.create("/w", b"", CreateMode::Persistent, None).unwrap();
        let (tx, rx) = channel();
        s.watch_data("/w", tx).unwrap();
        s.set_data("/w", b"x", None).unwrap();
        let ev = rx.try_recv().unwrap();
        assert_eq!(ev.kind, WatchKind::DataChanged);
        // One-shot: second change does not fire.
        s.set_data("/w", b"y", None).unwrap();
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn exists_watch_fires_on_creation() {
        let (s, _) = svc();
        let (tx, rx) = channel();
        assert!(!s.exists("/later", Some(tx)).unwrap());
        s.create("/later", b"", CreateMode::Persistent, None)
            .unwrap();
        assert_eq!(rx.try_recv().unwrap().kind, WatchKind::Created);
    }

    #[test]
    fn child_watch_fires_on_create_and_delete() {
        let (s, _) = svc();
        s.create("/p", b"", CreateMode::Persistent, None).unwrap();
        let (tx, rx) = channel();
        s.get_children("/p", Some(tx)).unwrap();
        s.create("/p/c", b"", CreateMode::Persistent, None).unwrap();
        assert_eq!(rx.try_recv().unwrap().kind, WatchKind::ChildrenChanged);
        // Re-register and delete.
        let (tx2, rx2) = channel();
        s.get_children("/p", Some(tx2)).unwrap();
        s.delete("/p/c", None).unwrap();
        assert_eq!(rx2.try_recv().unwrap().kind, WatchKind::ChildrenChanged);
    }

    #[test]
    fn delete_fires_data_watch() {
        let (s, _) = svc();
        s.create("/d", b"", CreateMode::Persistent, None).unwrap();
        let (tx, rx) = channel();
        s.watch_data("/d", tx).unwrap();
        s.delete("/d", None).unwrap();
        assert_eq!(rx.try_recv().unwrap().kind, WatchKind::Deleted);
    }

    #[test]
    fn ensure_path_creates_chain() {
        let (s, _) = svc();
        assert!(s.ensure_path("/a/b/c").unwrap());
        assert!(s.exists("/a/b/c", None).unwrap());
        assert!(!s.ensure_path("/a/b/c").unwrap());
    }

    #[test]
    fn invalid_paths_rejected() {
        let (s, _) = svc();
        for bad in ["", "a", "/a/", "//a", "/a//b"] {
            assert!(
                matches!(
                    s.create(bad, b"", CreateMode::Persistent, None),
                    Err(CoordError::InvalidPath(_)) | Err(CoordError::NodeExists(_))
                ),
                "path {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn session_expiry_affects_only_own_ephemerals() {
        let (s, _) = svc();
        let s1 = s.create_session(1000);
        let s2 = s.create_session(1000);
        s.create("/e1", b"", CreateMode::Ephemeral, Some(s1.id()))
            .unwrap();
        s.create("/e2", b"", CreateMode::Ephemeral, Some(s2.id()))
            .unwrap();
        s.expire_session(s1.id());
        assert!(!s.exists("/e1", None).unwrap());
        assert!(s.exists("/e2", None).unwrap());
    }

    #[test]
    fn node_count_tracks_tree() {
        let (s, _) = svc();
        assert_eq!(s.node_count(), 1);
        s.create("/a", b"", CreateMode::Persistent, None).unwrap();
        assert_eq!(s.node_count(), 2);
        s.delete("/a", None).unwrap();
        assert_eq!(s.node_count(), 1);
    }
}
