//! ZooKeeper-like coordination service.
//!
//! Liquid's messaging layer uses a coordination service for broker
//! membership, in-sync-replica (ISR) tracking and leader election
//! (paper §4.3). This crate provides the same wait-free primitives as
//! Apache ZooKeeper, in process:
//!
//! * a hierarchical namespace of **znodes** holding small byte payloads
//!   with per-node versions ([`tree`]);
//! * **ephemeral** nodes bound to client sessions, removed when the
//!   session expires ([`session`]);
//! * **sequential** nodes with monotonically increasing suffixes;
//! * one-shot **watches** on data changes, deletions and child lists;
//! * the standard **leader election** recipe built from ephemeral
//!   sequential nodes ([`election`]).

#![forbid(unsafe_code)]

pub mod election;
pub mod session;
pub mod tree;

pub use election::LeaderElection;
pub use session::{Session, SessionId};
pub use tree::{CoordError, CoordService, CreateMode, Stat, WatchEvent, WatchKind};

/// Result alias for coordination operations.
pub type Result<T> = std::result::Result<T, CoordError>;
