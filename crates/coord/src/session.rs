//! Client sessions.
//!
//! A session owns ephemeral znodes; when it expires (explicitly, or
//! because heartbeats stop arriving within the timeout) those nodes are
//! deleted and watches fire. Brokers and processing tasks each hold a
//! session, so "kill the broker" in an experiment is simply "expire its
//! session".

use crate::tree::CoordService;

/// Opaque session identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub(crate) u64);

impl SessionId {
    /// Raw numeric id (for logging).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A live session handle.
///
/// Dropping the handle does **not** expire the session (mirroring a
/// client crash, where the server notices only via missed heartbeats);
/// call [`Session::close`] for a clean shutdown.
#[derive(Clone)]
pub struct Session {
    id: SessionId,
    service: CoordService,
}

impl Session {
    pub(crate) fn new(id: SessionId, service: CoordService) -> Self {
        Session { id, service }
    }

    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Sends a heartbeat, keeping the session alive.
    pub fn heartbeat(&self) -> crate::Result<()> {
        self.service.heartbeat(self.id)
    }

    /// Whether the server still considers this session live.
    pub fn is_alive(&self) -> bool {
        self.service.session_alive(self.id)
    }

    /// Cleanly closes the session, removing its ephemeral nodes.
    pub fn close(self) {
        self.service.expire_session(self.id);
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::{CoordService, CreateMode};
    use liquid_sim::clock::SimClock;

    #[test]
    fn close_removes_ephemerals() {
        let s = CoordService::new(SimClock::new(0).shared());
        let sess = s.create_session(1000);
        s.create("/e", b"", CreateMode::Ephemeral, Some(sess.id()))
            .unwrap();
        assert!(sess.is_alive());
        sess.close();
        assert!(!s.exists("/e", None).unwrap());
    }

    #[test]
    fn drop_does_not_expire() {
        let s = CoordService::new(SimClock::new(0).shared());
        let sess = s.create_session(1000);
        let id = sess.id();
        s.create("/e", b"", CreateMode::Ephemeral, Some(id))
            .unwrap();
        drop(sess);
        assert!(s.session_alive(id));
        assert!(s.exists("/e", None).unwrap());
    }

    #[test]
    fn heartbeat_on_expired_session_errors() {
        let s = CoordService::new(SimClock::new(0).shared());
        let sess = s.create_session(1000);
        s.expire_session(sess.id());
        assert!(sess.heartbeat().is_err());
        assert!(!sess.is_alive());
    }
}
