//! Administrative introspection.
//!
//! The paper argues a pub/sub messaging layer "allows the messaging
//! layer to be operated as a service, e.g. identifying misbehaving
//! applications or deciding which data is requested more for
//! load-balancing purposes" (§3.1). This module provides the operator
//! view: a structured description of brokers, topics, partitions,
//! leaders, ISRs, sizes and offsets, plus a human-readable rendering.

use crate::cluster::Cluster;
use crate::ids::{BrokerId, TopicPartition};

/// One partition's operator-visible state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Partition index.
    pub partition: u32,
    /// Current leader, if any.
    pub leader: Option<BrokerId>,
    /// In-sync replicas.
    pub isr: Vec<BrokerId>,
    /// First retained offset.
    pub earliest: u64,
    /// High watermark.
    pub latest: u64,
    /// Leader log-end offset (≥ latest when followers lag).
    pub log_end: u64,
}

/// One topic's operator-visible state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicInfo {
    /// Topic name.
    pub name: String,
    /// Per-partition details.
    pub partitions: Vec<PartitionInfo>,
    /// Total log bytes across all replicas.
    pub size_bytes: u64,
}

/// Whole-cluster description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterDescription {
    /// `(broker id, online)` pairs.
    pub brokers: Vec<(BrokerId, bool)>,
    /// Topics, sorted by name.
    pub topics: Vec<TopicInfo>,
}

impl ClusterDescription {
    /// Total partitions across all topics.
    pub fn partition_count(&self) -> usize {
        self.topics.iter().map(|t| t.partitions.len()).sum()
    }

    /// Partitions currently without a live leader.
    pub fn offline_partitions(&self) -> Vec<TopicPartition> {
        self.topics
            .iter()
            .flat_map(|t| {
                t.partitions
                    .iter()
                    .filter(|p| p.leader.is_none())
                    .map(|p| TopicPartition::new(t.name.clone(), p.partition))
            })
            .collect()
    }

    /// Partitions whose ISR has shrunk below the assignment size is not
    /// knowable from here; under-replicated = ISR of one while others
    /// exist is approximated by `isr.len() < replicas_hint`. Exposed as
    /// partitions with a leader but a single-member ISR.
    pub fn single_isr_partitions(&self) -> usize {
        self.topics
            .iter()
            .flat_map(|t| &t.partitions)
            .filter(|p| p.leader.is_some() && p.isr.len() == 1)
            .count()
    }

    /// Renders a `kafka-topics --describe`-style report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("brokers:\n");
        for (id, online) in &self.brokers {
            out.push_str(&format!(
                "  broker {id}: {}\n",
                if *online { "online" } else { "OFFLINE" }
            ));
        }
        for t in &self.topics {
            out.push_str(&format!("topic {} ({} bytes):\n", t.name, t.size_bytes));
            for p in &t.partitions {
                out.push_str(&format!(
                    "  partition {}: leader={} isr={:?} offsets=[{}, {}) log_end={}\n",
                    p.partition,
                    p.leader
                        .map(|l| l.to_string())
                        .unwrap_or_else(|| "-".into()),
                    p.isr,
                    p.earliest,
                    p.latest,
                    p.log_end,
                ));
            }
        }
        out
    }
}

impl Cluster {
    /// Builds the operator view of the whole cluster.
    pub fn describe(&self) -> crate::Result<ClusterDescription> {
        let mut topics = Vec::new();
        for name in self.topic_names() {
            let mut partitions = Vec::new();
            for p in 0..self.partition_count(&name)? {
                let tp = TopicPartition::new(name.clone(), p);
                let leader = self.leader(&tp)?;
                let (earliest, latest, log_end) = match leader {
                    Some(_) => (
                        self.earliest_offset(&tp)?,
                        self.latest_offset(&tp)?,
                        self.log_end_offset(&tp)?,
                    ),
                    None => (0, self.latest_offset(&tp)?, 0),
                };
                partitions.push(PartitionInfo {
                    partition: p,
                    leader,
                    isr: self.isr(&tp)?,
                    earliest,
                    latest,
                    log_end,
                });
            }
            let size_bytes = self.topic_size_bytes(&name)?;
            topics.push(TopicInfo {
                name,
                partitions,
                size_bytes,
            });
        }
        Ok(ClusterDescription {
            brokers: self
                .broker_ids()
                .into_iter()
                .map(|b| (b, self.broker_online(b)))
                .collect(),
            topics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::config::{AckLevel, TopicConfig};
    use bytes::Bytes;
    use liquid_sim::clock::SimClock;

    fn setup() -> Cluster {
        let c = Cluster::new(ClusterConfig::with_brokers(3), SimClock::new(0).shared());
        c.create_topic("a", TopicConfig::with_partitions(2).replication(3))
            .unwrap();
        c.create_topic("b", TopicConfig::with_partitions(1))
            .unwrap();
        c
    }

    #[test]
    fn describe_reports_structure() {
        let c = setup();
        let d = c.describe().unwrap();
        assert_eq!(d.brokers.len(), 3);
        assert!(d.brokers.iter().all(|(_, online)| *online));
        assert_eq!(d.topics.len(), 2);
        assert_eq!(d.partition_count(), 3);
        assert!(d.offline_partitions().is_empty());
        let render = d.render();
        assert!(render.contains("topic a"));
        assert!(render.contains("partition 1"));
    }

    #[test]
    fn describe_tracks_offsets_and_failures() {
        let c = setup();
        let tp = TopicPartition::new("a", 0);
        for i in 0..5 {
            c.produce_to(&tp, None, Bytes::from(format!("m{i}")), AckLevel::All)
                .unwrap();
        }
        c.kill_broker(0).unwrap();
        let d = c.describe().unwrap();
        assert!(d.brokers.iter().any(|&(id, online)| id == 0 && !online));
        let a = d.topics.iter().find(|t| t.name == "a").unwrap();
        let p0 = &a.partitions[0];
        assert_eq!(p0.latest, 5);
        assert!(a.size_bytes > 0);
        assert!(d.render().contains("OFFLINE"));
    }

    #[test]
    fn offline_partition_detected_after_total_failure() {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic("solo", TopicConfig::with_partitions(1))
            .unwrap();
        c.kill_broker(0).unwrap();
        let d = c.describe().unwrap();
        assert_eq!(d.offline_partitions(), vec![TopicPartition::new("solo", 0)]);
    }
}
