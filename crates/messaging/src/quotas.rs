//! Client quotas.
//!
//! Operating the messaging layer "as a service" (§3.1) means
//! "identifying misbehaving applications": a client that floods a
//! shared broker degrades every other team's feeds. Brokers therefore
//! enforce per-client produce-byte quotas over a rolling window —
//! clients that exceed theirs are throttled until the window turns
//! over. (CPU isolation for *jobs* is the resource manager's business,
//! §4.4; quotas protect the brokers themselves.)

use std::collections::HashMap;

use liquid_sim::clock::{SharedClock, Ts};
use liquid_sim::lockdep::Mutex;

/// Outcome of a quota check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaDecision {
    /// Under quota: proceed.
    Allow,
    /// Over quota: the client should back off for roughly this long.
    Throttle {
        /// Suggested back-off (ms) until the window turns over.
        retry_after_ms: u64,
    },
}

struct ClientUsage {
    window_start: Ts,
    bytes_in_window: u64,
}

/// Per-client produce-byte quota enforcement over rolling windows.
pub struct QuotaManager {
    clock: SharedClock,
    window_ms: u64,
    /// client id → bytes allowed per window.
    limits: Mutex<HashMap<String, u64>>,
    usage: Mutex<HashMap<String, ClientUsage>>,
    throttled_total: Mutex<HashMap<String, u64>>,
}

impl QuotaManager {
    /// A manager with 1-second windows.
    pub fn new(clock: SharedClock) -> Self {
        QuotaManager {
            clock,
            window_ms: 1_000,
            limits: Mutex::new("quota.limits", HashMap::new()),
            usage: Mutex::new("quota.usage", HashMap::new()),
            throttled_total: Mutex::new("quota.throttled", HashMap::new()),
        }
    }

    /// Sets the quota window length.
    pub fn with_window_ms(mut self, window_ms: u64) -> Self {
        self.window_ms = window_ms.max(1);
        self
    }

    /// Sets a client's produce quota (bytes per window). Clients
    /// without a limit are unthrottled.
    pub fn set_limit(&self, client: &str, bytes_per_window: u64) {
        self.limits
            .lock()
            .insert(client.to_string(), bytes_per_window);
    }

    /// Removes a client's quota.
    pub fn clear_limit(&self, client: &str) {
        self.limits.lock().remove(client);
    }

    /// Accounts `bytes` for `client` and decides whether to throttle.
    /// The bytes are charged even when throttled (the request already
    /// hit the broker), matching Kafka's behaviour.
    ///
    /// Errors with [`MessagingError::QuotaOverflow`] if the usage
    /// counter would overflow — wrapping would reset the window and
    /// hand the client a fresh quota it did not earn.
    ///
    /// [`MessagingError::QuotaOverflow`]: crate::MessagingError::QuotaOverflow
    pub fn check(&self, client: &str, bytes: u64) -> crate::Result<QuotaDecision> {
        let Some(&limit) = self.limits.lock().get(client) else {
            return Ok(QuotaDecision::Allow);
        };
        let now = self.clock.now();
        let mut usage = self.usage.lock();
        let u = usage.entry(client.to_string()).or_insert(ClientUsage {
            window_start: now,
            bytes_in_window: 0,
        });
        if now.saturating_sub(u.window_start) >= self.window_ms {
            u.window_start = now;
            u.bytes_in_window = 0;
        }
        u.bytes_in_window = u.bytes_in_window.checked_add(bytes).ok_or_else(|| {
            crate::MessagingError::QuotaOverflow {
                client: client.to_string(),
            }
        })?;
        if u.bytes_in_window > limit {
            *self
                .throttled_total
                .lock()
                .entry(client.to_string())
                .or_default() += 1;
            Ok(QuotaDecision::Throttle {
                retry_after_ms: (u.window_start + self.window_ms).saturating_sub(now).max(1),
            })
        } else {
            Ok(QuotaDecision::Allow)
        }
    }

    /// How often a client has been throttled (misbehaving-application
    /// detection, §3.1).
    pub fn throttle_count(&self, client: &str) -> u64 {
        self.throttled_total
            .lock()
            .get(client)
            .copied()
            .unwrap_or(0)
    }

    /// Clients ranked by throttle count, descending (the operator's
    /// "who is misbehaving" view).
    pub fn worst_offenders(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .throttled_total
            .lock()
            .iter()
            .map(|(k, &n)| (k.clone(), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_sim::clock::SimClock;

    fn mgr() -> (QuotaManager, SimClock) {
        let clock = SimClock::new(0);
        (
            QuotaManager::new(clock.shared()).with_window_ms(1_000),
            clock,
        )
    }

    #[test]
    fn unlimited_clients_always_allowed() {
        let (q, _) = mgr();
        for _ in 0..100 {
            assert_eq!(q.check("free", 1 << 20).unwrap(), QuotaDecision::Allow);
        }
        assert_eq!(q.throttle_count("free"), 0);
    }

    #[test]
    fn limit_throttles_within_window() {
        let (q, _) = mgr();
        q.set_limit("noisy", 1_000);
        assert_eq!(q.check("noisy", 600).unwrap(), QuotaDecision::Allow);
        assert_eq!(q.check("noisy", 300).unwrap(), QuotaDecision::Allow);
        match q.check("noisy", 300).unwrap() {
            QuotaDecision::Throttle { retry_after_ms } => {
                assert!((1..=1_000).contains(&retry_after_ms))
            }
            other => panic!("expected throttle, got {other:?}"),
        }
        assert_eq!(q.throttle_count("noisy"), 1);
    }

    #[test]
    fn window_turnover_resets_usage() {
        let (q, clock) = mgr();
        q.set_limit("c", 100);
        assert_eq!(q.check("c", 100).unwrap(), QuotaDecision::Allow);
        assert!(matches!(
            q.check("c", 1).unwrap(),
            QuotaDecision::Throttle { .. }
        ));
        clock.advance(1_000);
        assert_eq!(q.check("c", 100).unwrap(), QuotaDecision::Allow);
    }

    #[test]
    fn clients_are_independent() {
        let (q, _) = mgr();
        q.set_limit("a", 100);
        q.set_limit("b", 100);
        assert!(matches!(
            q.check("a", 200).unwrap(),
            QuotaDecision::Throttle { .. }
        ));
        assert_eq!(q.check("b", 50).unwrap(), QuotaDecision::Allow);
    }

    #[test]
    fn clear_limit_unthrottles() {
        let (q, _) = mgr();
        q.set_limit("c", 1);
        assert!(matches!(
            q.check("c", 10).unwrap(),
            QuotaDecision::Throttle { .. }
        ));
        q.clear_limit("c");
        assert_eq!(q.check("c", 1 << 30).unwrap(), QuotaDecision::Allow);
    }

    #[test]
    fn usage_overflow_is_an_error_not_a_reset() {
        let (q, _) = mgr();
        q.set_limit("huge", u64::MAX);
        assert!(matches!(
            q.check("huge", u64::MAX).unwrap(),
            QuotaDecision::Allow
        ));
        // A second charge in the same window would wrap the counter —
        // silently wrapping would grant a fresh quota mid-window.
        assert!(matches!(
            q.check("huge", 1),
            Err(crate::MessagingError::QuotaOverflow { client }) if client == "huge"
        ));
    }

    #[test]
    fn worst_offenders_ranked() {
        let (q, _) = mgr();
        q.set_limit("a", 1);
        q.set_limit("b", 1);
        for _ in 0..3 {
            q.check("a", 10).unwrap();
        }
        q.check("b", 10).unwrap();
        let worst = q.worst_offenders();
        assert_eq!(worst[0], ("a".to_string(), 3));
        assert_eq!(worst[1], ("b".to_string(), 1));
    }
}
