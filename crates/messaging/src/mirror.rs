//! Cross-cluster mirroring.
//!
//! The paper's deployment (§5) spans "5 co-location centers, spanning
//! different geographical areas" — topics produced in one data center
//! are mirrored into the clusters of the others so every colo serves
//! local reads. A mirror is just a consumer of the source cluster
//! chained to a producer into the destination cluster, with its own
//! positions; it preserves keys (and therefore semantic partitioning)
//! and timestamps.

use std::collections::HashMap;

use crate::cluster::Cluster;
use crate::config::AckLevel;
use crate::error::MessagingError;
use crate::ids::TopicPartition;

/// Copies topics from a source cluster into a destination cluster.
pub struct MirrorMaker {
    source: Cluster,
    destination: Cluster,
    /// Topics to mirror.
    topics: Vec<String>,
    /// Mirror position per source partition.
    positions: HashMap<TopicPartition, u64>,
    /// Messages copied over the mirror's lifetime.
    mirrored: u64,
}

impl MirrorMaker {
    /// Creates a mirror for `topics`. Every topic must exist in the
    /// source; missing destination topics are created with the same
    /// partition count (replication 1 — the destination cluster's own
    /// policy decision).
    pub fn new(source: &Cluster, destination: &Cluster, topics: &[&str]) -> crate::Result<Self> {
        let mut positions = HashMap::new();
        for topic in topics {
            let partitions = source.partition_count(topic)?;
            match destination.create_topic(
                topic,
                crate::config::TopicConfig::with_partitions(partitions),
            ) {
                Ok(()) => {}
                Err(MessagingError::TopicExists(_)) => {
                    if destination.partition_count(topic)? != partitions {
                        return Err(MessagingError::InvalidConfig(format!(
                            "partition count mismatch for mirrored topic {topic}"
                        )));
                    }
                }
                Err(e) => return Err(e),
            }
            for p in 0..partitions {
                let tp = TopicPartition::new(*topic, p);
                let start = source.earliest_offset(&tp)?;
                positions.insert(tp, start);
            }
        }
        Ok(MirrorMaker {
            source: source.clone(),
            destination: destination.clone(),
            topics: topics.iter().map(|s| s.to_string()).collect(),
            positions,
            mirrored: 0,
        })
    }

    /// Topics being mirrored.
    pub fn topics(&self) -> &[String] {
        &self.topics
    }

    /// Copies one batch per source partition; returns messages copied.
    pub fn run_once(&mut self) -> crate::Result<u64> {
        let mut copied = 0;
        let tps: Vec<TopicPartition> = self.positions.keys().cloned().collect();
        for tp in tps {
            let Some(&pos) = self.positions.get(&tp) else {
                continue; // partition no longer mirrored
            };
            let batch = self.source.fetch_batch(&tp, pos, 1 << 20)?.into_messages();
            for msg in batch {
                let next =
                    msg.offset
                        .checked_add(1)
                        .ok_or(crate::MessagingError::OffsetOverflow {
                            what: "advancing the mirror position past a message",
                            value: msg.offset,
                        })?;
                self.positions.insert(tp.clone(), next);
                // Preserve key and partition so semantic routing holds
                // in the destination colo.
                self.destination
                    .produce_to(&tp, msg.key, msg.value, AckLevel::Leader)?;
                copied += 1;
            }
        }
        self.mirrored += copied;
        Ok(copied)
    }

    /// Pumps until the mirror is fully caught up (or `max_rounds`).
    pub fn run_until_caught_up(&mut self, max_rounds: usize) -> crate::Result<u64> {
        let mut total = 0;
        for _ in 0..max_rounds {
            let n = self.run_once()?;
            total += n;
            if n == 0 {
                break;
            }
        }
        Ok(total)
    }

    /// Messages this mirror still has to copy.
    pub fn lag(&self) -> crate::Result<u64> {
        let mut lag = 0u64;
        for (tp, &pos) in &self.positions {
            lag = lag.saturating_add(self.source.latest_offset(tp)?.saturating_sub(pos));
        }
        Ok(lag)
    }

    /// Messages copied so far.
    pub fn mirrored(&self) -> u64 {
        self.mirrored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::config::TopicConfig;
    use bytes::Bytes;
    use liquid_sim::clock::SimClock;

    fn colo() -> Cluster {
        Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared())
    }

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    #[test]
    fn mirrors_existing_and_new_data() {
        let west = colo();
        let east = colo();
        west.create_topic("events", TopicConfig::with_partitions(2))
            .unwrap();
        for p in 0..2 {
            let tp = TopicPartition::new("events", p);
            for i in 0..10 {
                west.produce_to(&tp, Some(b("k")), b(&format!("w{p}-{i}")), AckLevel::Leader)
                    .unwrap();
            }
        }
        let mut mirror = MirrorMaker::new(&west, &east, &["events"]).unwrap();
        assert_eq!(mirror.lag().unwrap(), 20);
        assert_eq!(mirror.run_until_caught_up(10).unwrap(), 20);
        assert_eq!(mirror.lag().unwrap(), 0);
        // New data flows on the next pump.
        west.produce_to(
            &TopicPartition::new("events", 0),
            None,
            b("late"),
            AckLevel::Leader,
        )
        .unwrap();
        assert_eq!(mirror.run_once().unwrap(), 1);
        assert_eq!(mirror.mirrored(), 21);
        // Destination has everything, same partitions.
        let got: usize = (0..2)
            .map(|p| {
                east.fetch_batch(&TopicPartition::new("events", p), 0, u64::MAX)
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(got, 21);
    }

    #[test]
    fn preserves_keys_and_partition_assignment() {
        let west = colo();
        let east = colo();
        west.create_topic("t", TopicConfig::with_partitions(4))
            .unwrap();
        let tp = TopicPartition::new("t", 3);
        west.produce_to(&tp, Some(b("user-9")), b("v"), AckLevel::Leader)
            .unwrap();
        let mut mirror = MirrorMaker::new(&west, &east, &["t"]).unwrap();
        mirror.run_until_caught_up(5).unwrap();
        let msgs = east.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].key.as_deref(), Some(b"user-9".as_ref()));
    }

    #[test]
    fn partition_count_mismatch_rejected() {
        let west = colo();
        let east = colo();
        west.create_topic("t", TopicConfig::with_partitions(4))
            .unwrap();
        east.create_topic("t", TopicConfig::with_partitions(2))
            .unwrap();
        assert!(MirrorMaker::new(&west, &east, &["t"]).is_err());
    }

    #[test]
    fn unknown_source_topic_rejected() {
        let west = colo();
        let east = colo();
        assert!(MirrorMaker::new(&west, &east, &["ghost"]).is_err());
    }

    #[test]
    fn five_colo_fanout() {
        // The paper's topology in miniature: one ingest colo mirrored to
        // four others.
        let ingest = colo();
        ingest
            .create_topic("activity", TopicConfig::with_partitions(1))
            .unwrap();
        let tp = TopicPartition::new("activity", 0);
        for i in 0..50 {
            ingest
                .produce_to(&tp, None, b(&format!("e{i}")), AckLevel::Leader)
                .unwrap();
        }
        let colos: Vec<Cluster> = (0..4).map(|_| colo()).collect();
        let mut mirrors: Vec<MirrorMaker> = colos
            .iter()
            .map(|c| MirrorMaker::new(&ingest, c, &["activity"]).unwrap())
            .collect();
        for m in &mut mirrors {
            m.run_until_caught_up(5).unwrap();
        }
        for c in &colos {
            assert_eq!(
                c.fetch_batch(&tp, 0, u64::MAX)
                    .unwrap()
                    .into_messages()
                    .len(),
                50
            );
        }
    }
}
