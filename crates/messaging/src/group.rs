//! Consumer groups (paper §3.1, Figure 3).
//!
//! Within a group the messaging layer behaves as a **queue**: each
//! partition is assigned to exactly one member, so a given message is
//! processed by one consumer of the group. Across groups it behaves as
//! **publish/subscribe**: every subscribed group sees every message.
//!
//! Joining or leaving triggers a **rebalance**: partitions of the
//! subscribed topics are redistributed over the members and the group
//! generation is bumped; consumers detect the bump and refresh their
//! assignments.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use liquid_sim::clock::Ts;
use liquid_sim::lockdep::Mutex;

use crate::cluster::Cluster;
use crate::error::MessagingError;
use crate::ids::TopicPartition;

/// Partition assignment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignmentStrategy {
    /// Contiguous ranges of each topic's partitions per member.
    #[default]
    Range,
    /// All partitions dealt round-robin across members.
    RoundRobin,
}

/// The partitions a member owns in a given group generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAssignment {
    /// Rebalance generation this assignment belongs to.
    pub generation: u64,
    /// Partitions owned by the member.
    pub partitions: Vec<TopicPartition>,
}

#[derive(Debug, Default)]
pub(crate) struct GroupState {
    members: BTreeSet<String>,
    topics: BTreeSet<String>,
    strategy: AssignmentStrategy,
    generation: u64,
    assignments: BTreeMap<String, Vec<TopicPartition>>,
    /// Last heartbeat per member (ms); members silent past the session
    /// timeout are evicted by [`Cluster::expire_stale_members`].
    heartbeats: BTreeMap<String, Ts>,
}

/// Group-coordination state, owned by the [`Cluster`].
pub struct GroupRegistry {
    pub(crate) groups: Mutex<HashMap<String, GroupState>>,
}

impl Default for GroupRegistry {
    fn default() -> Self {
        GroupRegistry {
            groups: Mutex::new("group.groups", HashMap::new()),
        }
    }
}

impl Cluster {
    /// Joins `member` to `group`, subscribing it to `topics`. Triggers a
    /// rebalance; returns the member's new assignment.
    pub fn join_group(
        &self,
        group: &str,
        member: &str,
        topics: &[&str],
        strategy: AssignmentStrategy,
    ) -> crate::Result<GroupAssignment> {
        // Validate topics exist before touching group state.
        let mut partition_counts = BTreeMap::new();
        for t in topics {
            partition_counts.insert(t.to_string(), self.partition_count(t)?);
        }
        let registry = self.group_registry();
        let mut groups = registry.groups.lock();
        let state = groups.entry(group.to_string()).or_default();
        state.members.insert(member.to_string());
        state.heartbeats.insert(member.to_string(), self.now_ms());
        for t in topics {
            state.topics.insert(t.to_string());
        }
        state.strategy = strategy;
        // Refresh counts for all subscribed topics (earlier joiners may
        // have subscribed to others).
        for t in state.topics.clone() {
            partition_counts
                .entry(t.clone())
                .or_insert(self.partition_count(&t)?);
        }
        rebalance(state, &partition_counts);
        Ok(GroupAssignment {
            generation: state.generation,
            partitions: state.assignments.get(member).cloned().unwrap_or_default(),
        })
    }

    /// Removes `member` from `group`, rebalancing the remainder.
    pub fn leave_group(&self, group: &str, member: &str) -> crate::Result<()> {
        let registry = self.group_registry();
        let mut groups = registry.groups.lock();
        let state = groups
            .get_mut(group)
            .ok_or_else(|| MessagingError::Group(format!("unknown group {group}")))?;
        if !state.members.remove(member) {
            return Err(MessagingError::Group(format!(
                "member {member} not in group {group}"
            )));
        }
        state.heartbeats.remove(member);
        let mut counts = BTreeMap::new();
        for t in state.topics.clone() {
            counts.insert(t.clone(), self.partition_count(&t)?);
        }
        rebalance(state, &counts);
        Ok(())
    }

    /// Current assignment for a member, if the group and member exist.
    pub fn group_assignment(&self, group: &str, member: &str) -> Option<GroupAssignment> {
        let registry = self.group_registry();
        let groups = registry.groups.lock();
        let state = groups.get(group)?;
        state.assignments.get(member).map(|parts| GroupAssignment {
            generation: state.generation,
            partitions: parts.clone(),
        })
    }

    /// Current generation of a group (bumped on each rebalance).
    pub fn group_generation(&self, group: &str) -> Option<u64> {
        let registry = self.group_registry();
        let groups = registry.groups.lock();
        groups.get(group).map(|s| s.generation)
    }

    /// Records a liveness heartbeat for a group member. Consumers call
    /// this implicitly on every poll.
    pub fn heartbeat_group(&self, group: &str, member: &str) -> crate::Result<()> {
        let registry = self.group_registry();
        let mut groups = registry.groups.lock();
        let state = groups
            .get_mut(group)
            .ok_or_else(|| MessagingError::Group(format!("unknown group {group}")))?;
        if !state.members.contains(member) {
            return Err(MessagingError::Group(format!(
                "member {member} not in group {group}"
            )));
        }
        state.heartbeats.insert(member.to_string(), self.now_ms());
        Ok(())
    }

    /// Evicts group members whose last heartbeat is older than
    /// `session_timeout_ms`, rebalancing affected groups — how the
    /// coordinator detects crashed consumers (their partitions move to
    /// surviving members; uncommitted work is reprocessed, §4.3).
    /// Returns `(group, member)` pairs evicted.
    pub fn expire_stale_members(
        &self,
        session_timeout_ms: u64,
    ) -> crate::Result<Vec<(String, String)>> {
        let now = self.now_ms();
        let registry = self.group_registry();
        let mut groups = registry.groups.lock();
        let mut evicted = Vec::new();
        let mut dirty_groups = Vec::new();
        for (gname, state) in groups.iter_mut() {
            let stale: Vec<String> = state
                .members
                .iter()
                .filter(|m| {
                    state
                        .heartbeats
                        .get(*m)
                        .is_none_or(|&hb| hb + session_timeout_ms <= now)
                })
                .cloned()
                .collect();
            for m in stale {
                state.members.remove(&m);
                state.heartbeats.remove(&m);
                evicted.push((gname.clone(), m));
                if !dirty_groups.contains(gname) {
                    dirty_groups.push(gname.clone());
                }
            }
        }
        // Rebalance groups that lost members.
        for gname in dirty_groups {
            let Some(state) = groups.get_mut(&gname) else {
                continue;
            };
            let mut counts = BTreeMap::new();
            for t in state.topics.clone() {
                counts.insert(t.clone(), self.partition_count(&t)?);
            }
            rebalance(state, &counts);
        }
        Ok(evicted)
    }

    fn now_ms(&self) -> Ts {
        self.clock().now()
    }

    /// Members of a group, sorted.
    pub fn group_members(&self, group: &str) -> Vec<String> {
        let registry = self.group_registry();
        let groups = registry.groups.lock();
        groups
            .get(group)
            .map(|s| s.members.iter().cloned().collect())
            .unwrap_or_default()
    }
}

fn rebalance(state: &mut GroupState, partition_counts: &BTreeMap<String, u32>) {
    state.generation += 1;
    state.assignments.clear();
    let members: Vec<&String> = state.members.iter().collect();
    if members.is_empty() {
        return;
    }
    for m in &members {
        state.assignments.insert((*m).clone(), Vec::new());
    }
    match state.strategy {
        AssignmentStrategy::Range => {
            // Per topic: contiguous chunks, earlier members get the
            // remainder.
            for (topic, &count) in partition_counts {
                if !state.topics.contains(topic) {
                    continue;
                }
                let n = members.len() as u32;
                let per = count / n;
                let extra = count % n;
                let mut next = 0u32;
                for (i, m) in members.iter().enumerate() {
                    let take = per + u32::from((i as u32) < extra);
                    if let Some(assigned) = state.assignments.get_mut(*m) {
                        for p in next..next + take {
                            assigned.push(TopicPartition::new(topic.clone(), p));
                        }
                    }
                    next += take;
                }
            }
        }
        AssignmentStrategy::RoundRobin => {
            let mut all: Vec<TopicPartition> = Vec::new();
            for (topic, &count) in partition_counts {
                if !state.topics.contains(topic) {
                    continue;
                }
                for p in 0..count {
                    all.push(TopicPartition::new(topic.clone(), p));
                }
            }
            for (i, tp) in all.into_iter().enumerate() {
                let m = members[i % members.len()];
                if let Some(assigned) = state.assignments.get_mut(m) {
                    assigned.push(tp);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::config::TopicConfig;
    use liquid_sim::clock::SimClock;

    fn setup() -> Cluster {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic("a", TopicConfig::with_partitions(4))
            .unwrap();
        c.create_topic("b", TopicConfig::with_partitions(3))
            .unwrap();
        c
    }

    #[test]
    fn single_member_owns_everything() {
        let c = setup();
        let a = c
            .join_group("g", "m1", &["a", "b"], AssignmentStrategy::Range)
            .unwrap();
        assert_eq!(a.partitions.len(), 7);
        assert_eq!(a.generation, 1);
    }

    #[test]
    fn partitions_split_without_overlap() {
        let c = setup();
        c.join_group("g", "m1", &["a"], AssignmentStrategy::Range)
            .unwrap();
        c.join_group("g", "m2", &["a"], AssignmentStrategy::Range)
            .unwrap();
        let a1 = c.group_assignment("g", "m1").unwrap();
        let a2 = c.group_assignment("g", "m2").unwrap();
        assert_eq!(a1.partitions.len() + a2.partitions.len(), 4);
        for tp in &a1.partitions {
            assert!(!a2.partitions.contains(tp), "overlap on {tp}");
        }
    }

    #[test]
    fn join_bumps_generation_and_rebalances() {
        let c = setup();
        let a1 = c
            .join_group("g", "m1", &["a"], AssignmentStrategy::Range)
            .unwrap();
        assert_eq!(a1.partitions.len(), 4);
        c.join_group("g", "m2", &["a"], AssignmentStrategy::Range)
            .unwrap();
        let refreshed = c.group_assignment("g", "m1").unwrap();
        assert_eq!(refreshed.generation, 2);
        assert_eq!(refreshed.partitions.len(), 2);
    }

    #[test]
    fn leave_redistributes() {
        let c = setup();
        c.join_group("g", "m1", &["a"], AssignmentStrategy::Range)
            .unwrap();
        c.join_group("g", "m2", &["a"], AssignmentStrategy::Range)
            .unwrap();
        c.leave_group("g", "m2").unwrap();
        let a = c.group_assignment("g", "m1").unwrap();
        assert_eq!(a.partitions.len(), 4);
        assert_eq!(c.group_members("g"), vec!["m1"]);
    }

    #[test]
    fn round_robin_interleaves_topics() {
        let c = setup();
        c.join_group("g", "m1", &["a", "b"], AssignmentStrategy::RoundRobin)
            .unwrap();
        c.join_group("g", "m2", &["a", "b"], AssignmentStrategy::RoundRobin)
            .unwrap();
        let a1 = c.group_assignment("g", "m1").unwrap().partitions;
        let a2 = c.group_assignment("g", "m2").unwrap().partitions;
        assert_eq!(a1.len() + a2.len(), 7);
        assert!((a1.len() as i64 - a2.len() as i64).abs() <= 1, "balanced");
    }

    #[test]
    fn more_members_than_partitions_leaves_idle_members() {
        let c = setup();
        for m in ["m1", "m2", "m3", "m4", "m5"] {
            c.join_group("g", m, &["b"], AssignmentStrategy::Range)
                .unwrap();
        }
        let total: usize = (1..=5)
            .map(|i| {
                c.group_assignment("g", &format!("m{i}"))
                    .unwrap()
                    .partitions
                    .len()
            })
            .sum();
        assert_eq!(total, 3);
        let idle = (1..=5)
            .filter(|i| {
                c.group_assignment("g", &format!("m{i}"))
                    .unwrap()
                    .partitions
                    .is_empty()
            })
            .count();
        assert_eq!(idle, 2);
    }

    #[test]
    fn groups_are_independent() {
        let c = setup();
        let a1 = c
            .join_group("g1", "m", &["a"], AssignmentStrategy::Range)
            .unwrap();
        let a2 = c
            .join_group("g2", "m", &["a"], AssignmentStrategy::Range)
            .unwrap();
        // Both groups see all four partitions — pub/sub across groups.
        assert_eq!(a1.partitions.len(), 4);
        assert_eq!(a2.partitions.len(), 4);
    }

    #[test]
    fn unknown_topic_rejected() {
        let c = setup();
        assert!(c
            .join_group("g", "m", &["nope"], AssignmentStrategy::Range)
            .is_err());
    }

    #[test]
    fn stale_members_evicted_and_partitions_move() {
        use liquid_sim::clock::SimClock;
        let clock = SimClock::new(0);
        let c = Cluster::new(
            crate::cluster::ClusterConfig::with_brokers(1),
            clock.shared(),
        );
        c.create_topic("t", TopicConfig::with_partitions(4))
            .unwrap();
        c.join_group("g", "alive", &["t"], AssignmentStrategy::Range)
            .unwrap();
        c.join_group("g", "dead", &["t"], AssignmentStrategy::Range)
            .unwrap();
        clock.advance(5_000);
        c.heartbeat_group("g", "alive").unwrap();
        clock.advance(6_000);
        // "dead" has been silent for 11s; "alive" for 6s.
        let evicted = c.expire_stale_members(10_000).unwrap();
        assert_eq!(evicted, vec![("g".to_string(), "dead".to_string())]);
        assert_eq!(c.group_members("g"), vec!["alive"]);
        let a = c.group_assignment("g", "alive").unwrap();
        assert_eq!(a.partitions.len(), 4, "orphaned partitions reassigned");
        assert!(c.group_assignment("g", "dead").is_none());
    }

    #[test]
    fn heartbeat_requires_membership() {
        let c = setup();
        c.join_group("g", "m", &["a"], AssignmentStrategy::Range)
            .unwrap();
        assert!(c.heartbeat_group("g", "m").is_ok());
        assert!(c.heartbeat_group("g", "ghost").is_err());
        assert!(c.heartbeat_group("nope", "m").is_err());
    }

    #[test]
    fn leave_errors() {
        let c = setup();
        assert!(c.leave_group("ghost", "m").is_err());
        c.join_group("g", "m", &["a"], AssignmentStrategy::Range)
            .unwrap();
        assert!(c.leave_group("g", "other").is_err());
    }
}
