//! The offset manager (paper §3.1 "Metadata-based access", §4.2).
//!
//! A logically-centralized, highly-available service that maps consumed
//! offsets to arbitrary metadata annotations — timestamps, software
//! versions, anything a back-end system wants to attach. Consumers
//! checkpoint their positions here and, after a failure or an algorithm
//! change, query for "the last offset my version processed" to resume or
//! rewind.
//!
//! Faithful to the paper, commits are *themselves* stored in a keyed,
//! compacted commit log (key = group + partition), so the manager's own
//! durability and bounded size come from log compaction (§4.1) rather
//! than an external database.
//!
//! # Lock layout (ROADMAP item 4 split, analyzer-proven)
//!
//! The in-memory view is sharded per `(group, topic-partition)`: the
//! manager holds only the backing log and a shard directory behind the
//! `offsets.inner` `RwLock`, and each key's committed-offset slot sits
//! behind its own `offsets.shard` mutex inside an [`OffsetShard`].
//! Commits serialize on the *log append* (the durability authority,
//! §4.2) under a brief `inner` write guard, then update their slot
//! under the shard lock alone — slot entries are keyed by the record's
//! log offset, so in-memory state converges to log order no matter how
//! slot-lock acquisitions interleave. Reads (`fetch`, `history`,
//! version queries) resolve the shard under a shared read guard, drop
//! it, and consult only the slot — two consumers touching different
//! keys no longer contend. The `atomicity` lint proves the
//! resolve→drop→lock gaps validated (the carried `Arc` is the
//! revalidation), and the `shard` lint classifies the slot rank
//! partition-local.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use liquid_log::{Log, LogConfig, RetentionPolicy};
use liquid_obs::{CounterHandle, Obs};
use liquid_sim::clock::{SharedClock, Ts};
use liquid_sim::failure::FailureInjector;
use liquid_sim::lockdep::{Mutex, RwLock};

use crate::ids::TopicPartition;

/// A committed position plus annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffsetCommit {
    /// Next offset the consumer will process (i.e. everything below is
    /// done).
    pub offset: u64,
    /// When the commit was made.
    pub committed_at: Ts,
    /// Arbitrary annotations: timestamps, software versions, …
    pub metadata: BTreeMap<String, String>,
}

/// The offset manager. Internally synchronized; cheap to share.
pub struct OffsetManager {
    inner: RwLock<Inner>,
    clock: SharedClock,
    injector: FailureInjector,
    /// Twin counter for the `offsets.commit` fault site.
    commits: CounterHandle,
}

struct Inner {
    /// Backing compacted log (the "__consumer_offsets" analogue).
    log: Log,
    /// Shard directory: one committed-offset slot per key. The
    /// directory itself only grows; per-key state lives in the shard.
    shards: HashMap<(String, TopicPartition), Arc<OffsetShard>>,
}

/// One `(group, topic-partition)` offset shard: the key's commit
/// history behind its own lock.
struct OffsetShard {
    slot: Mutex<Slot>,
}

/// Commit history for one key, ordered by backing-log offset. The log
/// append (under the `inner` write guard) is the single serialization
/// point; slot updates carry the record's log offset and insert in log
/// order, so the in-memory view converges to the log regardless of how
/// the post-append slot-lock acquisitions interleave.
#[derive(Default)]
struct Slot {
    entries: Vec<(u64, OffsetCommit)>,
}

impl Slot {
    /// Inserts `commit` at its log position (almost always the tail).
    fn insert(&mut self, log_offset: u64, commit: OffsetCommit) {
        let pos = self.entries.partition_point(|(o, _)| *o < log_offset);
        self.entries.insert(pos, (log_offset, commit));
    }

    /// The latest commit (highest log offset).
    fn latest(&self) -> Option<&OffsetCommit> {
        self.entries.last().map(|(_, c)| c)
    }
}

impl OffsetShard {
    fn new() -> Arc<OffsetShard> {
        Arc::new(OffsetShard {
            slot: Mutex::new("offsets.shard", Slot::default()),
        })
    }
}

impl OffsetManager {
    /// Creates an offset manager with an in-memory compacted backing
    /// log.
    pub fn new(clock: SharedClock) -> Self {
        OffsetManager::with_injector(clock, FailureInjector::disabled())
    }

    /// Like [`new`](Self::new) but with a fault injector on the commit
    /// path (chaos testing).
    pub fn with_injector(clock: SharedClock, injector: FailureInjector) -> Self {
        OffsetManager::with_obs(clock, injector, &Obs::default())
    }

    /// Full constructor: fault injector plus the observability sink the
    /// commit counter registers into.
    pub fn with_obs(clock: SharedClock, injector: FailureInjector, obs: &Obs) -> Self {
        let cfg = LogConfig {
            retention: RetentionPolicy::Compact {
                max_age_ms: None,
                max_bytes: None,
            },
            segment_bytes: 64 * 1024,
            ..LogConfig::default()
        };
        OffsetManager {
            inner: RwLock::new(
                "offsets.inner",
                Inner {
                    // lint:allow(panic-reachability, reason=the config above uses in-memory storage with a disabled injector; open has no fallible step on that path)
                    log: Log::open(cfg, clock.clone()).expect("memory log"),
                    shards: HashMap::new(),
                },
            ),
            clock,
            injector,
            commits: obs.registry().counter("offsets.commit"),
        }
    }

    /// Resolves the shard for `(group, tp)` if it exists, under a
    /// shared directory read guard.
    fn shard_if_exists(&self, group: &str, tp: &TopicPartition) -> Option<Arc<OffsetShard>> {
        let inner = self.inner.read();
        let shard = inner.shards.get(&(group.to_string(), tp.clone())).cloned();
        drop(inner);
        shard
    }

    /// Checkpoints `offset` for `(group, tp)` with annotations.
    pub fn commit(
        &self,
        group: &str,
        tp: &TopicPartition,
        offset: u64,
        metadata: BTreeMap<String, String>,
    ) -> crate::Result<()> {
        self.commits.inc();
        if self.injector.tick("offsets.commit") {
            // Crash before the commit reaches the backing log: the
            // consumer resumes from its previous checkpoint.
            return Err(crate::MessagingError::Injected("offsets.commit"));
        }
        let commit = OffsetCommit {
            offset,
            committed_at: self.clock.now(),
            metadata,
        };
        let key = commit_key(group, tp);
        let value = encode_commit(&commit);
        // Durability first: the append under the directory write guard
        // is the single serialization point, and the returned log
        // offset carries that order into the slot below.
        let mut inner = self.inner.write();
        let log_offset = inner.log.append(Some(key), value)?;
        let shard = inner
            .shards
            .entry((group.to_string(), tp.clone()))
            .or_insert_with(OffsetShard::new)
            .clone();
        drop(inner);
        let mut slot = shard.slot.lock();
        slot.insert(log_offset, commit);
        Ok(())
    }

    /// Latest commit for `(group, tp)`, if any.
    pub fn fetch(&self, group: &str, tp: &TopicPartition) -> Option<OffsetCommit> {
        let shard = self.shard_if_exists(group, tp)?;
        let slot = shard.slot.lock();
        slot.latest().cloned()
    }

    /// Latest committed offset (shorthand).
    pub fn fetch_offset(&self, group: &str, tp: &TopicPartition) -> Option<u64> {
        self.fetch(group, tp).map(|c| c.offset)
    }

    /// The most recent commit whose annotation `key` equals `value` —
    /// e.g. "last offset processed by software version v1" (§4.2).
    pub fn last_commit_with(
        &self,
        group: &str,
        tp: &TopicPartition,
        key: &str,
        value: &str,
    ) -> Option<OffsetCommit> {
        let shard = self.shard_if_exists(group, tp)?;
        let slot = shard.slot.lock();
        slot.entries
            .iter()
            .rev()
            .find(|(_, c)| c.metadata.get(key).map(String::as_str) == Some(value))
            .map(|(_, c)| c.clone())
    }

    /// Full commit history for `(group, tp)` in commit order.
    pub fn history(&self, group: &str, tp: &TopicPartition) -> Vec<OffsetCommit> {
        let Some(shard) = self.shard_if_exists(group, tp) else {
            return Vec::new();
        };
        let slot = shard.slot.lock();
        slot.entries.iter().map(|(_, c)| c.clone()).collect()
    }

    /// Groups with at least one commit.
    pub fn groups(&self) -> Vec<String> {
        let inner = self.inner.read();
        let mut gs: Vec<String> = inner.shards.keys().map(|(g, _)| g.clone()).collect();
        drop(inner);
        gs.sort();
        gs.dedup();
        gs
    }

    /// Compacts the backing log (bounded size, §4.1); returns the
    /// dedup ratio achieved.
    pub fn compact_backing_log(&self) -> f64 {
        let mut inner = self.inner.write();
        inner.log.compact().map(|s| s.dedup_ratio()).unwrap_or(0.0)
    }

    /// Size of the backing log in bytes.
    pub fn backing_log_bytes(&self) -> u64 {
        self.inner.read().log.size_bytes()
    }

    /// Rebuilds the in-memory shards purely from the backing log
    /// (recovery path: proves commits survive in the log itself).
    /// Returns the number of `(group, partition)` entries recovered.
    ///
    /// Slot locks nest under the directory write guard here —
    /// `offsets.inner` (30) → `offsets.shard` (28), descending, so
    /// lockdep stays happy — and the exclusive directory guard keeps
    /// concurrent commits out while the view is swapped.
    pub fn recover_index_from_log(&self) -> crate::Result<usize> {
        let mut inner = self.inner.write();
        let start = inner.log.start_offset();
        let records = inner.log.read(start, u64::MAX)?.records;
        let mut rebuilt: HashMap<(String, TopicPartition), Vec<(u64, OffsetCommit)>> =
            HashMap::new();
        for rec in records {
            let Some(key) = &rec.key else { continue };
            let Some((group, tp)) = decode_commit_key(key) else {
                continue;
            };
            if let Some(commit) = decode_commit(&rec.value) {
                rebuilt
                    .entry((group, tp))
                    .or_default()
                    .push((rec.offset, commit));
            }
        }
        let n = rebuilt.len();
        inner.shards.clear();
        for (key, mut entries) in rebuilt {
            entries.sort_by_key(|(o, _)| *o);
            let shard = OffsetShard::new();
            shard.slot.lock().entries = entries;
            inner.shards.insert(key, shard);
        }
        Ok(n)
    }
}

fn commit_key(group: &str, tp: &TopicPartition) -> Bytes {
    Bytes::from(format!("{group}\u{0}{}\u{0}{}", tp.topic, tp.partition))
}

fn decode_commit_key(key: &[u8]) -> Option<(String, TopicPartition)> {
    let s = std::str::from_utf8(key).ok()?;
    let mut parts = s.split('\u{0}');
    let group = parts.next()?.to_string();
    let topic = parts.next()?.to_string();
    let partition: u32 = parts.next()?.parse().ok()?;
    Some((group, TopicPartition { topic, partition }))
}

fn encode_commit(c: &OffsetCommit) -> Bytes {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&c.offset.to_le_bytes());
    out.extend_from_slice(&c.committed_at.to_le_bytes());
    out.extend_from_slice(&(c.metadata.len() as u32).to_le_bytes());
    for (k, v) in &c.metadata {
        out.extend_from_slice(&(k.len() as u32).to_le_bytes());
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(v.as_bytes());
    }
    Bytes::from(out)
}

fn decode_commit(data: &[u8]) -> Option<OffsetCommit> {
    if data.len() < 20 {
        return None;
    }
    let offset = u64::from_le_bytes(data[0..8].try_into().ok()?);
    let committed_at = u64::from_le_bytes(data[8..16].try_into().ok()?);
    let count = u32::from_le_bytes(data[16..20].try_into().ok()?) as usize;
    let mut pos = 20;
    let mut metadata = BTreeMap::new();
    for _ in 0..count {
        if data.len() < pos + 4 {
            return None;
        }
        let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().ok()?) as usize;
        pos += 4;
        if data.len() < pos + klen + 4 {
            return None;
        }
        let k = String::from_utf8(data[pos..pos + klen].to_vec()).ok()?;
        pos += klen;
        let vlen = u32::from_le_bytes(data[pos..pos + 4].try_into().ok()?) as usize;
        pos += 4;
        if data.len() < pos + vlen {
            return None;
        }
        let v = String::from_utf8(data[pos..pos + vlen].to_vec()).ok()?;
        pos += vlen;
        metadata.insert(k, v);
    }
    Some(OffsetCommit {
        offset,
        committed_at,
        metadata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_sim::clock::SimClock;

    fn mgr() -> (OffsetManager, SimClock) {
        let clock = SimClock::new(0);
        (OffsetManager::new(clock.shared()), clock)
    }

    fn meta(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn commit_and_fetch() {
        let (m, _) = mgr();
        let tp = TopicPartition::new("t", 0);
        assert_eq!(m.fetch("g", &tp), None);
        m.commit("g", &tp, 42, meta(&[("version", "v1")])).unwrap();
        let c = m.fetch("g", &tp).unwrap();
        assert_eq!(c.offset, 42);
        assert_eq!(c.metadata["version"], "v1");
        assert_eq!(m.fetch_offset("g", &tp), Some(42));
    }

    #[test]
    fn latest_commit_wins() {
        let (m, clock) = mgr();
        let tp = TopicPartition::new("t", 0);
        m.commit("g", &tp, 10, meta(&[])).unwrap();
        clock.advance(5);
        m.commit("g", &tp, 20, meta(&[])).unwrap();
        let c = m.fetch("g", &tp).unwrap();
        assert_eq!(c.offset, 20);
        assert_eq!(c.committed_at, 5);
    }

    #[test]
    fn groups_are_isolated() {
        let (m, _) = mgr();
        let tp = TopicPartition::new("t", 0);
        m.commit("g1", &tp, 1, meta(&[])).unwrap();
        m.commit("g2", &tp, 2, meta(&[])).unwrap();
        assert_eq!(m.fetch_offset("g1", &tp), Some(1));
        assert_eq!(m.fetch_offset("g2", &tp), Some(2));
        assert_eq!(m.groups(), vec!["g1", "g2"]);
    }

    #[test]
    fn partitions_are_isolated() {
        let (m, _) = mgr();
        m.commit("g", &TopicPartition::new("t", 0), 5, meta(&[]))
            .unwrap();
        m.commit("g", &TopicPartition::new("t", 1), 9, meta(&[]))
            .unwrap();
        assert_eq!(m.fetch_offset("g", &TopicPartition::new("t", 0)), Some(5));
        assert_eq!(m.fetch_offset("g", &TopicPartition::new("t", 1)), Some(9));
    }

    #[test]
    fn version_annotation_rewind() {
        // §4.2: find where the old software version stopped, to
        // re-process from there with the new algorithm.
        let (m, _) = mgr();
        let tp = TopicPartition::new("t", 0);
        m.commit("job", &tp, 100, meta(&[("sw", "v1")])).unwrap();
        m.commit("job", &tp, 200, meta(&[("sw", "v1")])).unwrap();
        m.commit("job", &tp, 300, meta(&[("sw", "v2")])).unwrap();
        let last_v1 = m.last_commit_with("job", &tp, "sw", "v1").unwrap();
        assert_eq!(last_v1.offset, 200);
        assert_eq!(m.last_commit_with("job", &tp, "sw", "v3"), None);
        assert_eq!(m.history("job", &tp).len(), 3);
    }

    #[test]
    fn index_recovers_from_backing_log() {
        let (m, _) = mgr();
        let tp = TopicPartition::new("t", 3);
        m.commit("g", &tp, 7, meta(&[("a", "b")])).unwrap();
        m.commit("g", &tp, 8, meta(&[("a", "c")])).unwrap();
        let n = m.recover_index_from_log().unwrap();
        assert_eq!(n, 1);
        let c = m.fetch("g", &tp).unwrap();
        assert_eq!(c.offset, 8);
        assert_eq!(c.metadata["a"], "c");
    }

    #[test]
    fn backing_log_compacts() {
        let (m, _) = mgr();
        let tp = TopicPartition::new("t", 0);
        // Enough commits to roll segments (64 KiB each).
        for i in 0..5000 {
            m.commit("g", &tp, i, meta(&[("pad", "xxxxxxxxxxxxxxxx")]))
                .unwrap();
        }
        let before = m.backing_log_bytes();
        let ratio = m.compact_backing_log();
        assert!(ratio > 0.5, "dedup ratio {ratio}");
        assert!(m.backing_log_bytes() < before);
        // Latest commit still recoverable from the compacted log.
        m.recover_index_from_log().unwrap();
        assert_eq!(m.fetch_offset("g", &tp), Some(4999));
    }

    #[test]
    fn commit_encoding_roundtrip() {
        let c = OffsetCommit {
            offset: 123,
            committed_at: 456,
            metadata: meta(&[("k1", "v1"), ("k2", "")]),
        };
        let enc = encode_commit(&c);
        assert_eq!(decode_commit(&enc), Some(c));
        assert_eq!(decode_commit(b"short"), None);
    }

    #[test]
    fn key_encoding_roundtrip() {
        let tp = TopicPartition::new("topic-with-dashes", 42);
        let k = commit_key("my-group", &tp);
        let (g, tp2) = decode_commit_key(&k).unwrap();
        assert_eq!(g, "my-group");
        assert_eq!(tp2, tp);
    }
}
