//! Error type for the messaging layer.

use crate::ids::{BrokerId, TopicPartition};

/// Errors surfaced by the messaging layer.
#[derive(Debug)]
pub enum MessagingError {
    /// Topic does not exist.
    UnknownTopic(String),
    /// Topic exists but the partition index is out of range.
    UnknownPartition(TopicPartition),
    /// Topic already exists.
    TopicExists(String),
    /// Broker id is not part of the cluster.
    UnknownBroker(BrokerId),
    /// No in-sync replica is available to lead the partition; produces
    /// and fetches fail until a replica returns.
    PartitionUnavailable(TopicPartition),
    /// The underlying log failed.
    Log(liquid_log::LogError),
    /// Consumer group / membership error.
    Group(String),
    /// Invalid configuration.
    InvalidConfig(String),
    /// A topic was configured with zero partitions.
    ZeroPartitions,
    /// A cluster was configured with zero brokers.
    ZeroBrokers,
    /// A topic's retention policy failed validation (a zero bound would
    /// drop every sealed segment on every retention pass).
    InvalidRetention {
        /// Which bound was rejected, and why.
        reason: &'static str,
    },
    /// The replication factor is zero or exceeds the broker count, so
    /// the assignment cannot place that many replicas.
    ReplicationOutOfRange {
        /// Requested replication factor.
        replication: u32,
        /// Brokers available to host replicas.
        brokers: u32,
    },
    /// A client exceeded its produce quota.
    Throttled {
        /// The offending client id.
        client: String,
        /// Suggested back-off before retrying (ms).
        retry_after_ms: u64,
    },
    /// A quota usage counter would overflow `u64` — the client has
    /// recorded an impossible volume of traffic inside one window.
    /// Surfaced as an error instead of wrapping silently (which would
    /// reset the counter and let the client bypass its quota).
    QuotaOverflow {
        /// The offending client id.
        client: String,
    },
    /// Offset-domain arithmetic overflowed; continuing would silently
    /// corrupt offsets or high watermarks, so the operation is refused.
    OffsetOverflow {
        /// What the arithmetic was computing when it overflowed.
        what: &'static str,
        /// The operand that could not be advanced.
        value: u64,
    },
    /// A fault injector fired at the named operation (simulated crash).
    Injected(&'static str),
}

impl std::fmt::Display for MessagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessagingError::UnknownTopic(t) => write!(f, "unknown topic: {t}"),
            MessagingError::UnknownPartition(tp) => write!(f, "unknown partition: {tp}"),
            MessagingError::TopicExists(t) => write!(f, "topic exists: {t}"),
            MessagingError::UnknownBroker(b) => write!(f, "unknown broker: {b}"),
            MessagingError::PartitionUnavailable(tp) => {
                write!(f, "partition unavailable (no live ISR): {tp}")
            }
            MessagingError::Log(e) => write!(f, "log error: {e}"),
            MessagingError::Group(msg) => write!(f, "consumer group error: {msg}"),
            MessagingError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            MessagingError::ZeroPartitions => write!(f, "invalid config: partitions must be > 0"),
            MessagingError::ZeroBrokers => write!(f, "invalid config: brokers must be > 0"),
            MessagingError::InvalidRetention { reason } => {
                write!(f, "invalid config: retention policy: {reason}")
            }
            MessagingError::ReplicationOutOfRange {
                replication,
                brokers,
            } => write!(
                f,
                "invalid config: replication {replication} out of range 1..={brokers}"
            ),
            MessagingError::Throttled {
                client,
                retry_after_ms,
            } => write!(f, "client {client} throttled; retry in {retry_after_ms}ms"),
            MessagingError::QuotaOverflow { client } => {
                write!(f, "quota usage counter overflow for client {client}")
            }
            MessagingError::OffsetOverflow { what, value } => {
                write!(f, "offset arithmetic overflow: {what} (operand {value})")
            }
            MessagingError::Injected(op) => write!(f, "injected fault at {op}"),
        }
    }
}

impl std::error::Error for MessagingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MessagingError::Log(e) => Some(e),
            _ => None,
        }
    }
}

impl From<liquid_log::LogError> for MessagingError {
    fn from(e: liquid_log::LogError) -> Self {
        MessagingError::Log(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let tp = TopicPartition::new("t", 0);
        assert!(MessagingError::PartitionUnavailable(tp)
            .to_string()
            .contains("t-0"));
        assert!(MessagingError::UnknownTopic("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn offset_overflow_names_the_computation_and_operand() {
        let e = MessagingError::OffsetOverflow {
            what: "advancing past the appended record",
            value: u64::MAX,
        };
        let msg = e.to_string();
        assert!(msg.contains("offset arithmetic overflow"), "{msg}");
        assert!(msg.contains("appended record"), "{msg}");
        assert!(msg.contains(&u64::MAX.to_string()), "{msg}");
    }
}
