//! Topic and durability configuration.

use liquid_log::{CleanupPolicy, LogConfig, RetentionPolicy};

/// How many acknowledgements a produce waits for (paper §4.3: the
/// durability/latency trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckLevel {
    /// Fire and forget: the producer does not wait at all. Highest
    /// throughput; messages are lost if the leader dies before
    /// replication.
    None,
    /// Acknowledged once the leader has appended. Messages not yet
    /// replicated are lost on leader failure.
    Leader,
    /// Acknowledged only after every in-sync replica has appended —
    /// maximum durability: tolerates N−1 failures with N ISRs.
    All,
}

/// Per-topic configuration.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Number of partitions.
    pub partitions: u32,
    /// Replication factor (1 = leader only).
    pub replication: u32,
    /// Log tuning (segment size, retention, cleanup policy).
    pub log: LogConfig,
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig {
            partitions: 1,
            replication: 1,
            log: LogConfig::default(),
        }
    }
}

impl TopicConfig {
    /// A validating builder; prefer this over struct literals so
    /// impossible combinations are rejected before the topic exists.
    pub fn builder() -> TopicConfigBuilder {
        TopicConfigBuilder::default()
    }

    /// `partitions` partitions, replication factor 1, default log.
    pub fn with_partitions(partitions: u32) -> Self {
        TopicConfig {
            partitions,
            ..TopicConfig::default()
        }
    }

    /// Sets the replication factor.
    pub fn replication(mut self, replication: u32) -> Self {
        self.replication = replication;
        self
    }

    /// Marks the topic compacted (changelog topics, §4.1).
    pub fn compacted(mut self) -> Self {
        self.log.cleanup = CleanupPolicy::Compact;
        self
    }

    /// Sets time-based retention.
    pub fn retention_ms(mut self, ms: u64) -> Self {
        self.log.retention = RetentionPolicy {
            max_age_ms: Some(ms),
            ..self.log.retention
        };
        self
    }

    /// Sets size-based retention.
    pub fn retention_bytes(mut self, bytes: u64) -> Self {
        self.log.retention = RetentionPolicy {
            max_bytes: Some(bytes),
            ..self.log.retention
        };
        self
    }

    /// Sets the segment roll size.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.log.segment_bytes = bytes;
        self
    }
}

/// Builder for [`TopicConfig`] that validates at
/// [`build`](TopicConfigBuilder::build) time with typed errors instead
/// of letting an impossible config reach the cluster.
#[derive(Debug, Clone, Default)]
pub struct TopicConfigBuilder {
    config: TopicConfig,
}

impl TopicConfigBuilder {
    /// Sets the partition count (must end up > 0).
    pub fn partitions(mut self, partitions: u32) -> Self {
        self.config.partitions = partitions;
        self
    }

    /// Sets the replication factor (must end up > 0).
    pub fn replication(mut self, replication: u32) -> Self {
        self.config.replication = replication;
        self
    }

    /// Marks the topic compacted (changelog topics, §4.1).
    pub fn compacted(mut self) -> Self {
        self.config.log.cleanup = CleanupPolicy::Compact;
        self
    }

    /// Sets time-based retention.
    pub fn retention_ms(mut self, ms: u64) -> Self {
        self.config = self.config.retention_ms(ms);
        self
    }

    /// Sets size-based retention.
    pub fn retention_bytes(mut self, bytes: u64) -> Self {
        self.config = self.config.retention_bytes(bytes);
        self
    }

    /// Sets the segment roll size.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.config = self.config.segment_bytes(bytes);
        self
    }

    /// Replaces the whole log config.
    pub fn log(mut self, log: LogConfig) -> Self {
        self.config.log = log;
        self
    }

    fn validate(&self) -> crate::Result<()> {
        if self.config.partitions == 0 {
            return Err(crate::MessagingError::ZeroPartitions);
        }
        if self.config.replication == 0 {
            return Err(crate::MessagingError::ReplicationOutOfRange {
                replication: 0,
                brokers: u32::MAX,
            });
        }
        Ok(())
    }

    /// Validates partition and replication counts in isolation.
    pub fn build(self) -> crate::Result<TopicConfig> {
        self.validate()?;
        Ok(self.config)
    }

    /// Validates against the cluster the topic will be created on:
    /// additionally rejects `replication > config.brokers`, the
    /// combination [`build`](Self::build) alone cannot see.
    pub fn build_for(self, cluster: &crate::ClusterConfig) -> crate::Result<TopicConfig> {
        self.validate()?;
        if self.config.replication > cluster.brokers {
            return Err(crate::MessagingError::ReplicationOutOfRange {
                replication: self.config.replication,
                brokers: cluster.brokers,
            });
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = TopicConfig::with_partitions(8)
            .replication(3)
            .compacted()
            .retention_ms(1000)
            .retention_bytes(2048)
            .segment_bytes(512);
        assert_eq!(c.partitions, 8);
        assert_eq!(c.replication, 3);
        assert_eq!(c.log.cleanup, CleanupPolicy::Compact);
        assert_eq!(c.log.retention.max_age_ms, Some(1000));
        assert_eq!(c.log.retention.max_bytes, Some(2048));
        assert_eq!(c.log.segment_bytes, 512);
    }

    #[test]
    fn defaults_are_sane() {
        let c = TopicConfig::default();
        assert_eq!(c.partitions, 1);
        assert_eq!(c.replication, 1);
        assert_eq!(c.log.cleanup, CleanupPolicy::Delete);
    }
}
