//! Topic and durability configuration.

use liquid_log::{LogConfig, RetentionPolicy};

/// How many acknowledgements a produce waits for (paper §4.3: the
/// durability/latency trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckLevel {
    /// Fire and forget: the producer does not wait at all. Highest
    /// throughput; messages are lost if the leader dies before
    /// replication.
    None,
    /// Acknowledged once the leader has appended. Messages not yet
    /// replicated are lost on leader failure.
    Leader,
    /// Acknowledged only after every in-sync replica has appended —
    /// maximum durability: tolerates N−1 failures with N ISRs.
    All,
}

/// Per-topic configuration.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Number of partitions.
    pub partitions: u32,
    /// Replication factor (1 = leader only).
    pub replication: u32,
    /// Log tuning (segment size, retention policy).
    pub log: LogConfig,
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig {
            partitions: 1,
            replication: 1,
            log: LogConfig::default(),
        }
    }
}

impl TopicConfig {
    /// A validating builder; prefer this over struct literals so
    /// impossible combinations are rejected before the topic exists.
    pub fn builder() -> TopicConfigBuilder {
        TopicConfigBuilder::default()
    }

    /// `partitions` partitions, replication factor 1, default log.
    pub fn with_partitions(partitions: u32) -> Self {
        TopicConfig {
            partitions,
            ..TopicConfig::default()
        }
    }

    /// Sets the replication factor.
    pub fn replication(mut self, replication: u32) -> Self {
        self.replication = replication;
        self
    }

    /// Replaces the whole retention policy with a typed
    /// [`RetentionPolicy`] value.
    pub fn retention(mut self, policy: RetentionPolicy) -> Self {
        self.log.retention = policy;
        self
    }

    /// Marks the topic compacted (changelog topics, §4.1), keeping any
    /// retention bounds already set.
    pub fn compacted(mut self) -> Self {
        self.log.retention = self.log.retention.compacted();
        self
    }

    /// Sets time-based retention (sugar for
    /// [`RetentionPolicy::with_max_age_ms`] on the current policy).
    pub fn retention_ms(mut self, ms: u64) -> Self {
        self.log.retention = self.log.retention.with_max_age_ms(ms);
        self
    }

    /// Sets size-based retention (sugar for
    /// [`RetentionPolicy::with_max_bytes`] on the current policy).
    pub fn retention_bytes(mut self, bytes: u64) -> Self {
        self.log.retention = self.log.retention.with_max_bytes(bytes);
        self
    }

    /// Sets the segment roll size.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.log.segment_bytes = bytes;
        self
    }

    /// Sets the segment roll age, so segments partition the stream by
    /// time and age retention drops whole segments.
    pub fn segment_ms(mut self, ms: u64) -> Self {
        self.log.segment_ms = Some(ms);
        self
    }
}

/// Builder for [`TopicConfig`] that validates at
/// [`build`](TopicConfigBuilder::build) time with typed errors instead
/// of letting an impossible config reach the cluster.
#[derive(Debug, Clone, Default)]
pub struct TopicConfigBuilder {
    config: TopicConfig,
}

impl TopicConfigBuilder {
    /// Sets the partition count (must end up > 0).
    pub fn partitions(mut self, partitions: u32) -> Self {
        self.config.partitions = partitions;
        self
    }

    /// Sets the replication factor (must end up > 0).
    pub fn replication(mut self, replication: u32) -> Self {
        self.config.replication = replication;
        self
    }

    /// Replaces the whole retention policy; validated at build time.
    pub fn retention(mut self, policy: RetentionPolicy) -> Self {
        self.config = self.config.retention(policy);
        self
    }

    /// Marks the topic compacted (changelog topics, §4.1).
    pub fn compacted(mut self) -> Self {
        self.config = self.config.compacted();
        self
    }

    /// Sets time-based retention.
    pub fn retention_ms(mut self, ms: u64) -> Self {
        self.config = self.config.retention_ms(ms);
        self
    }

    /// Sets size-based retention.
    pub fn retention_bytes(mut self, bytes: u64) -> Self {
        self.config = self.config.retention_bytes(bytes);
        self
    }

    /// Sets the segment roll size.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.config = self.config.segment_bytes(bytes);
        self
    }

    /// Sets the segment roll age (time-partitioned segments).
    pub fn segment_ms(mut self, ms: u64) -> Self {
        self.config = self.config.segment_ms(ms);
        self
    }

    /// Replaces the whole log config.
    pub fn log(mut self, log: LogConfig) -> Self {
        self.config.log = log;
        self
    }

    fn validate(&self) -> crate::Result<()> {
        if self.config.partitions == 0 {
            return Err(crate::MessagingError::ZeroPartitions);
        }
        if self.config.replication == 0 {
            return Err(crate::MessagingError::ReplicationOutOfRange {
                replication: 0,
                brokers: u32::MAX,
            });
        }
        if let Err(reason) = self.config.log.retention.validate() {
            return Err(crate::MessagingError::InvalidRetention { reason });
        }
        Ok(())
    }

    /// Validates partition and replication counts and the retention
    /// policy in isolation.
    pub fn build(self) -> crate::Result<TopicConfig> {
        self.validate()?;
        Ok(self.config)
    }

    /// Validates against the cluster the topic will be created on:
    /// additionally rejects `replication > config.brokers`, the
    /// combination [`build`](Self::build) alone cannot see.
    pub fn build_for(self, cluster: &crate::ClusterConfig) -> crate::Result<TopicConfig> {
        self.validate()?;
        if self.config.replication > cluster.brokers {
            return Err(crate::MessagingError::ReplicationOutOfRange {
                replication: self.config.replication,
                brokers: cluster.brokers,
            });
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = TopicConfig::with_partitions(8)
            .replication(3)
            .compacted()
            .retention_ms(1000)
            .retention_bytes(2048)
            .segment_bytes(512)
            .segment_ms(60_000);
        assert_eq!(c.partitions, 8);
        assert_eq!(c.replication, 3);
        assert_eq!(
            c.log.retention,
            RetentionPolicy::Compact {
                max_age_ms: Some(1000),
                max_bytes: Some(2048),
            }
        );
        assert!(c.log.retention.is_compacted());
        assert_eq!(c.log.segment_bytes, 512);
        assert_eq!(c.log.segment_ms, Some(60_000));
    }

    #[test]
    fn typed_retention_replaces_policy() {
        let c = TopicConfig::builder()
            .partitions(2)
            .replication(1)
            .retention(RetentionPolicy::DropByBytes { max_bytes: 4096 })
            .build()
            .unwrap();
        assert_eq!(
            c.log.retention,
            RetentionPolicy::DropByBytes { max_bytes: 4096 }
        );
    }

    #[test]
    fn sugar_composes_into_one_policy() {
        let c = TopicConfig::with_partitions(1)
            .retention_ms(500)
            .retention_bytes(9000);
        assert_eq!(
            c.log.retention,
            RetentionPolicy::DropByAge {
                max_age_ms: 500,
                max_bytes: Some(9000),
            }
        );
    }

    #[test]
    fn builder_rejects_degenerate_retention() {
        let err = TopicConfig::builder()
            .partitions(1)
            .replication(1)
            .retention(RetentionPolicy::DropByBytes { max_bytes: 0 })
            .build();
        assert!(matches!(
            err,
            Err(crate::MessagingError::InvalidRetention { .. })
        ));
        let err = TopicConfig::builder()
            .partitions(1)
            .replication(1)
            .retention_ms(0)
            .build();
        assert!(matches!(
            err,
            Err(crate::MessagingError::InvalidRetention {
                reason: "max_age_ms must be > 0"
            })
        ));
    }

    #[test]
    fn defaults_are_sane() {
        let c = TopicConfig::default();
        assert_eq!(c.partitions, 1);
        assert_eq!(c.replication, 1);
        assert_eq!(c.log.retention, RetentionPolicy::KeepAll);
        assert!(!c.log.retention.is_compacted());
    }
}
