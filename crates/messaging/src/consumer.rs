//! Consumers: offset-based pull consumption, standalone or in a group.
//!
//! Consumers pull data from brokers by providing offsets (§3.1);
//! tracking a position costs a single integer per partition. Group
//! consumers additionally commit their positions to the offset manager
//! so a replacement can resume — at-least-once delivery: a crash after
//! processing but before committing causes reprocessing (§4.3).

use std::collections::{BTreeMap, HashMap};

use liquid_sim::lockdep::Mutex;

use crate::cluster::Cluster;
use crate::group::AssignmentStrategy;
use crate::ids::{Message, MessageBatch, TopicPartition};

/// Where a newly assigned consumer starts reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartPosition {
    /// First retained offset.
    Earliest,
    /// Current high watermark (only new data).
    Latest,
    /// A specific offset.
    Offset(u64),
    /// The group's committed offset, falling back to `Earliest`.
    Committed,
}

/// A pull consumer.
pub struct Consumer {
    cluster: Cluster,
    /// Member id (unique within the group).
    member_id: String,
    group: Option<String>,
    state: Mutex<ConsumerState>,
    /// Max bytes per partition per poll.
    max_poll_bytes: u64,
}

#[derive(Default)]
struct ConsumerState {
    positions: HashMap<TopicPartition, u64>,
    /// Group generation the current assignment was taken at.
    generation: u64,
    /// Default start for partitions gained via rebalance.
    group_start: Option<StartPosition>,
}

impl Consumer {
    /// A standalone consumer (explicit partition assignment, no
    /// commits).
    pub fn new(cluster: &Cluster, member_id: &str) -> Self {
        Consumer {
            cluster: cluster.clone(),
            member_id: member_id.to_string(),
            group: None,
            state: Mutex::new("consumer.state", ConsumerState::default()),
            max_poll_bytes: u64::MAX,
        }
    }

    /// A group consumer. Call [`subscribe`](Self::subscribe) next.
    pub fn in_group(cluster: &Cluster, group: &str, member_id: &str) -> Self {
        Consumer {
            cluster: cluster.clone(),
            member_id: member_id.to_string(),
            group: Some(group.to_string()),
            state: Mutex::new("consumer.state", ConsumerState::default()),
            max_poll_bytes: u64::MAX,
        }
    }

    /// Caps bytes fetched per partition per poll.
    pub fn with_max_poll_bytes(mut self, max: u64) -> Self {
        self.max_poll_bytes = max;
        self
    }

    /// The member id.
    pub fn member_id(&self) -> &str {
        &self.member_id
    }

    /// Manually assigns a partition (standalone mode).
    pub fn assign(&self, tp: TopicPartition, start: StartPosition) -> crate::Result<()> {
        let offset = self.resolve_start(&tp, start)?;
        self.state.lock().positions.insert(tp, offset);
        Ok(())
    }

    /// Joins the group and subscribes to `topics`; positions for the
    /// assigned partitions start at `start`.
    pub fn subscribe(
        &self,
        topics: &[&str],
        strategy: AssignmentStrategy,
        start: StartPosition,
    ) -> crate::Result<()> {
        let group = self.group.as_deref().ok_or_else(|| {
            crate::MessagingError::Group("subscribe requires a group consumer".into())
        })?;
        let assignment = self
            .cluster
            .join_group(group, &self.member_id, topics, strategy)?;
        let mut st = self.state.lock();
        st.generation = assignment.generation;
        st.group_start = Some(start);
        st.positions.clear();
        for tp in assignment.partitions {
            let offset = self.resolve_start(&tp, start)?;
            st.positions.insert(tp, offset);
        }
        Ok(())
    }

    /// Refreshes the assignment if the group rebalanced since the last
    /// poll; returns whether it changed.
    pub fn refresh_assignment(&self) -> crate::Result<bool> {
        let Some(group) = self.group.as_deref() else {
            return Ok(false);
        };
        let Some(current) = self.cluster.group_assignment(group, &self.member_id) else {
            return Ok(false);
        };
        // lint:allow(lock-cost, reason=rebalance epoch check: position rebuild must be atomic with the generation bump or a racing poll reads positions from a stale assignment; runs once per rebalance, not per batch)
        // lint:allow(shard, reason=consumer.state is a per-consumer instance lock, not a cluster-wide one; splitting it per partition would let a racing rebalance tear the position map mid-rebuild)
        let mut st = self.state.lock();
        if current.generation == st.generation {
            return Ok(false);
        }
        let start = st.group_start.unwrap_or(StartPosition::Committed);
        st.generation = current.generation;
        let old: HashMap<TopicPartition, u64> = st.positions.drain().collect();
        for tp in current.partitions {
            let offset = match old.get(&tp) {
                Some(&o) => o,
                None => self.resolve_start(&tp, start)?,
            };
            st.positions.insert(tp, offset);
        }
        Ok(true)
    }

    /// Partitions currently assigned.
    pub fn assignment(&self) -> Vec<TopicPartition> {
        let mut v: Vec<TopicPartition> = self.state.lock().positions.keys().cloned().collect();
        v.sort();
        v
    }

    /// Current position for a partition: the offset of the next record
    /// this consumer will poll. Unlike the cluster-side offsets
    /// ([`Cluster::earliest_offset`], [`Cluster::latest_offset`] — the
    /// high watermark — and [`Cluster::log_end_offset`]), the position
    /// is consumer-local state and moves only when this consumer polls
    /// or seeks.
    pub fn position(&self, tp: &TopicPartition) -> Option<u64> {
        self.state.lock().positions.get(tp).copied()
    }

    /// Consumer lag for a partition: the offset distance between this
    /// consumer's position and the partition's high watermark, read
    /// from the registry's `partition.high_watermark{tp=…}` gauge.
    /// `None` when the partition is unassigned or the gauge is not
    /// populated (e.g. the observability layer is compiled out with
    /// `obs-off`).
    ///
    /// Exact under batch-granular delivery: [`poll_batches`]
    /// (Self::poll_batches) advances the position to the batch's
    /// `end_offset` (one past the last record actually read), never by
    /// record count — counting records would over-report lag forever on
    /// compacted partitions, where fewer records exist than offsets.
    /// The same value is published per poll as the
    /// `consumer.lag{tp=…}` gauge.
    ///
    /// Also exact across a dropped-segment boundary: when the position
    /// falls inside a segment retention has retired, the next poll will
    /// resume at the first retained offset, so lag is measured from
    /// there — never counting offsets that no longer exist.
    pub fn lag(&self, tp: &TopicPartition) -> Option<u64> {
        let pos = self.position(tp)?;
        let hw = self
            .cluster
            .obs()
            .registry()
            .gauge_value_with("partition.high_watermark", &[("tp", &tp.to_string())])?;
        let effective = match self.cluster.earliest_offset(tp) {
            Ok(earliest) => pos.max(earliest),
            Err(_) => pos,
        };
        Some(hw.saturating_sub(effective))
    }

    /// Moves the position for a partition.
    pub fn seek(&self, tp: &TopicPartition, offset: u64) {
        self.state.lock().positions.insert(tp.clone(), offset);
    }

    /// Rewinds to the first record at/after `ts` (metadata-based access,
    /// §3.1). Returns the offset sought to, if data exists there.
    pub fn seek_to_timestamp(
        &self,
        tp: &TopicPartition,
        ts: liquid_sim::clock::Ts,
    ) -> crate::Result<Option<u64>> {
        let target = self.cluster.offset_for_timestamp(tp, ts)?;
        if let Some(offset) = target {
            self.seek(tp, offset);
        }
        Ok(target)
    }

    /// Pulls the next batch from every assigned partition, advancing
    /// positions past what was returned. Decomposes the batches of
    /// [`poll_batches`](Self::poll_batches); payloads stay shared.
    #[deprecated(
        since = "0.11.0",
        note = "use poll_batches, which keeps batch boundaries, spans, \
                the exact next position and the observed high watermark"
    )]
    pub fn poll(&self) -> crate::Result<Vec<(TopicPartition, Vec<Message>)>> {
        Ok(self
            .poll_batches()?
            .into_iter()
            .map(|(tp, batch)| (tp, batch.into_messages()))
            .collect())
    }

    /// Pulls one [`MessageBatch`] per assigned partition, advancing each
    /// position to the batch's [`end_offset`](MessageBatch::end_offset)
    /// — offset-granular, **not** record-count-granular, so positions
    /// (and therefore [`lag`](Self::lag)) stay exact even when
    /// compaction has punched holes in the offset sequence. Empty
    /// batches are dropped from the result but still leave the position
    /// untouched by construction (`end_offset == requested offset`).
    pub fn poll_batches(&self) -> crate::Result<Vec<(TopicPartition, MessageBatch)>> {
        // Polling is liveness: heartbeat the group coordinator.
        if let Some(group) = self.group.as_deref() {
            self.cluster.heartbeat_group(group, &self.member_id).ok();
        }
        self.refresh_assignment()?;
        // lint:allow(lock-cost, reason=position tracking must be atomic with the fetch or a concurrent rebalance double-delivers; nested acquisitions are rank-ordered (cluster.state 40, log.pagecache 5 under consumer.state 60))
        // lint:allow(shard, reason=consumer.state is a per-consumer instance lock; per-partition position shards would let a concurrent rebalance interleave with the poll loop and double-deliver)
        let mut st = self.state.lock();
        let mut out = Vec::new();
        let tps: Vec<TopicPartition> = st.positions.keys().cloned().collect();
        for tp in tps {
            let Some(&pos) = st.positions.get(&tp) else {
                continue; // assignment revoked between listing and fetch
            };
            let batch = self.cluster.fetch_batch(&tp, pos, self.max_poll_bytes)?;
            let next = batch.end_offset();
            st.positions.insert(tp.clone(), next);
            // Batch-aware lag gauge: distance from the *advanced*
            // position to the watermark the fetch observed. Publishing
            // per batch (not per record) keeps this off the per-message
            // path.
            self.cluster
                .obs()
                .registry()
                .gauge_with("consumer.lag", &[("tp", &tp.to_string())])
                .set(batch.high_watermark().saturating_sub(next));
            if !batch.is_empty() {
                out.push((tp, batch));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Commits current positions to the offset manager with annotations
    /// (group consumers only).
    pub fn commit(&self, metadata: BTreeMap<String, String>) -> crate::Result<()> {
        let group = self.group.as_deref().ok_or_else(|| {
            crate::MessagingError::Group("commit requires a group consumer".into())
        })?;
        let st = self.state.lock();
        // Sorted so the commit order (and any injected fault) is
        // deterministic.
        let mut positions: Vec<(&TopicPartition, u64)> =
            st.positions.iter().map(|(tp, &o)| (tp, o)).collect();
        positions.sort_by(|a, b| a.0.cmp(b.0));
        for (tp, offset) in positions {
            self.cluster
                .offsets()
                .commit(group, tp, offset, metadata.clone())?;
        }
        Ok(())
    }

    /// Leaves the group (clean shutdown), triggering a rebalance.
    pub fn leave(&self) -> crate::Result<()> {
        if let Some(group) = self.group.as_deref() {
            self.cluster.leave_group(group, &self.member_id)?;
            self.state.lock().positions.clear();
        }
        Ok(())
    }

    fn resolve_start(&self, tp: &TopicPartition, start: StartPosition) -> crate::Result<u64> {
        Ok(match start {
            StartPosition::Earliest => self.cluster.earliest_offset(tp)?,
            StartPosition::Latest => self.cluster.latest_offset(tp)?,
            StartPosition::Offset(o) => o,
            StartPosition::Committed => {
                let committed = self
                    .group
                    .as_deref()
                    .and_then(|g| self.cluster.offsets().fetch_offset(g, tp));
                match committed {
                    Some(o) => o,
                    None => self.cluster.earliest_offset(tp)?,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::config::{AckLevel, TopicConfig};
    use bytes::Bytes;
    use liquid_sim::clock::SimClock;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn setup(partitions: u32) -> Cluster {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic("t", TopicConfig::with_partitions(partitions))
            .unwrap();
        c
    }

    fn fill(c: &Cluster, tp: &TopicPartition, n: u64) {
        for i in 0..n {
            c.produce_to(tp, None, b(&format!("m{i}")), AckLevel::Leader)
                .unwrap();
        }
    }

    #[test]
    fn standalone_assign_and_poll() {
        let c = setup(1);
        let tp = TopicPartition::new("t", 0);
        fill(&c, &tp, 5);
        let consumer = Consumer::new(&c, "c1");
        consumer
            .assign(tp.clone(), StartPosition::Earliest)
            .unwrap();
        let batches = consumer.poll_batches().unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].1.len(), 5);
        // Position advanced: next poll is empty.
        assert!(consumer.poll_batches().unwrap().is_empty());
        assert_eq!(consumer.position(&tp), Some(5));
    }

    #[test]
    fn latest_skips_existing_data() {
        let c = setup(1);
        let tp = TopicPartition::new("t", 0);
        fill(&c, &tp, 5);
        let consumer = Consumer::new(&c, "c1");
        consumer.assign(tp.clone(), StartPosition::Latest).unwrap();
        assert!(consumer.poll_batches().unwrap().is_empty());
        fill(&c, &tp, 2);
        let batches = consumer.poll_batches().unwrap();
        assert_eq!(batches[0].1.len(), 2);
        assert_eq!(batches[0].1.records()[0].offset, 5);
    }

    #[test]
    fn seek_rewinds() {
        let c = setup(1);
        let tp = TopicPartition::new("t", 0);
        fill(&c, &tp, 10);
        let consumer = Consumer::new(&c, "c1");
        consumer
            .assign(tp.clone(), StartPosition::Earliest)
            .unwrap();
        consumer.poll_batches().unwrap();
        consumer.seek(&tp, 3);
        let batches = consumer.poll_batches().unwrap();
        assert_eq!(batches[0].1.len(), 7);
        assert_eq!(batches[0].1.records()[0].offset, 3);
    }

    #[test]
    fn seek_to_timestamp_rewinds_by_time() {
        let clock = SimClock::new(0);
        let c = Cluster::new(ClusterConfig::with_brokers(1), clock.shared());
        c.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        for i in 0..10u64 {
            clock.set(i * 100);
            c.produce_to(&tp, None, b(&format!("m{i}")), AckLevel::Leader)
                .unwrap();
        }
        let consumer = Consumer::new(&c, "c1");
        consumer.assign(tp.clone(), StartPosition::Latest).unwrap();
        let sought = consumer.seek_to_timestamp(&tp, 500).unwrap();
        assert_eq!(sought, Some(5));
        let batches = consumer.poll_batches().unwrap();
        assert_eq!(batches[0].1.len(), 5);
    }

    #[test]
    fn group_commit_and_resume() {
        let c = setup(1);
        let tp = TopicPartition::new("t", 0);
        fill(&c, &tp, 10);
        {
            let c1 = Consumer::in_group(&c, "g", "m1");
            c1.subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Earliest)
                .unwrap();
            let batches = c1.poll_batches().unwrap();
            assert_eq!(batches[0].1.len(), 10);
            c1.commit(BTreeMap::new()).unwrap();
            c1.leave().unwrap();
        }
        fill(&c, &tp, 3);
        // Replacement member resumes from the committed offset.
        let c2 = Consumer::in_group(&c, "g", "m2");
        c2.subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Committed)
            .unwrap();
        let batches = c2.poll_batches().unwrap();
        assert_eq!(batches[0].1.len(), 3);
        assert_eq!(batches[0].1.records()[0].offset, 10);
    }

    #[test]
    fn at_least_once_reprocessing_after_crash() {
        // Crash *after processing but before commit* → duplicates on
        // resume. This is the at-least-once semantics of §4.3.
        let clock = SimClock::new(0);
        let c = Cluster::new(ClusterConfig::with_brokers(1), clock.shared());
        c.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        fill(&c, &tp, 5);
        let mut processed = Vec::new();
        {
            let c1 = Consumer::in_group(&c, "g", "m1");
            c1.subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Committed)
                .unwrap();
            let batches = c1.poll_batches().unwrap();
            for m in batches[0].1.records() {
                processed.push(m.offset);
            }
            // Crash: no commit, no clean leave.
        }
        // The coordinator notices the missing heartbeats and evicts the
        // dead member, freeing its partitions.
        clock.advance(60_000);
        let evicted = c.expire_stale_members(30_000).unwrap();
        assert_eq!(evicted.len(), 1);
        let c2 = Consumer::in_group(&c, "g", "m2");
        c2.subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Committed)
            .unwrap();
        let batches = c2.poll_batches().unwrap();
        for m in batches[0].1.records() {
            processed.push(m.offset);
        }
        assert_eq!(processed.len(), 10, "all 5 messages seen twice");
        assert_eq!(&processed[0..5], &processed[5..10]);
    }

    #[test]
    fn queue_within_group_each_message_to_one_member() {
        let c = setup(4);
        for p in 0..4 {
            fill(&c, &TopicPartition::new("t", p), 10);
        }
        let c1 = Consumer::in_group(&c, "g", "m1");
        let c2 = Consumer::in_group(&c, "g", "m2");
        c1.subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Earliest)
            .unwrap();
        c2.subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Earliest)
            .unwrap();
        // m1's assignment shrank when m2 joined.
        c1.refresh_assignment().unwrap();
        let got1: usize = c1
            .poll_batches()
            .unwrap()
            .iter()
            .map(|(_, m)| m.len())
            .sum();
        let got2: usize = c2
            .poll_batches()
            .unwrap()
            .iter()
            .map(|(_, m)| m.len())
            .sum();
        assert_eq!(got1 + got2, 40, "every message to exactly one member");
        assert_eq!(got1, 20);
        assert_eq!(got2, 20);
    }

    #[test]
    fn pubsub_across_groups_each_group_sees_all() {
        let c = setup(2);
        for p in 0..2 {
            fill(&c, &TopicPartition::new("t", p), 5);
        }
        let g1 = Consumer::in_group(&c, "g1", "m");
        let g2 = Consumer::in_group(&c, "g2", "m");
        g1.subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Earliest)
            .unwrap();
        g2.subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Earliest)
            .unwrap();
        let n1: usize = g1
            .poll_batches()
            .unwrap()
            .iter()
            .map(|(_, m)| m.len())
            .sum();
        let n2: usize = g2
            .poll_batches()
            .unwrap()
            .iter()
            .map(|(_, m)| m.len())
            .sum();
        assert_eq!((n1, n2), (10, 10));
    }

    #[test]
    fn max_poll_bytes_limits_batches() {
        let c = setup(1);
        let tp = TopicPartition::new("t", 0);
        fill(&c, &tp, 100);
        let consumer = Consumer::new(&c, "c1").with_max_poll_bytes(64);
        consumer.assign(tp, StartPosition::Earliest).unwrap();
        let first = consumer.poll_batches().unwrap();
        let n: usize = first.iter().map(|(_, m)| m.len()).sum();
        assert!(n < 100, "poll should be limited, got {n}");
        // Eventually drains.
        let mut total = n;
        while total < 100 {
            let batches = consumer.poll_batches().unwrap();
            let got: usize = batches.iter().map(|(_, m)| m.len()).sum();
            assert!(got > 0, "progress stalled at {total}");
            total += got;
        }
        assert_eq!(total, 100);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn lag_tracks_distance_to_high_watermark() {
        let c = setup(1);
        let tp = TopicPartition::new("t", 0);
        fill(&c, &tp, 8);
        let consumer = Consumer::new(&c, "c1");
        assert_eq!(consumer.lag(&tp), None, "unassigned partition");
        consumer
            .assign(tp.clone(), StartPosition::Earliest)
            .unwrap();
        assert_eq!(consumer.lag(&tp), Some(8));
        consumer.poll_batches().unwrap();
        assert_eq!(consumer.lag(&tp), Some(0));
        fill(&c, &tp, 3);
        assert_eq!(consumer.lag(&tp), Some(3));
    }

    /// Compat shim: the deprecated record-level `poll` must keep
    /// decomposing `poll_batches` byte-for-byte.
    #[test]
    fn deprecated_poll_decomposes_poll_batches() {
        let c = setup(1);
        let tp = TopicPartition::new("t", 0);
        fill(&c, &tp, 6);
        let old = Consumer::new(&c, "old");
        let new = Consumer::new(&c, "new");
        old.assign(tp.clone(), StartPosition::Earliest).unwrap();
        new.assign(tp.clone(), StartPosition::Earliest).unwrap();
        #[allow(deprecated)]
        let via_poll = old.poll().unwrap();
        let via_batches: Vec<(TopicPartition, Vec<Message>)> = new
            .poll_batches()
            .unwrap()
            .into_iter()
            .map(|(tp, batch)| (tp, batch.into_messages()))
            .collect();
        assert_eq!(via_poll.len(), via_batches.len());
        for ((tp_a, ms_a), (tp_b, ms_b)) in via_poll.iter().zip(via_batches.iter()) {
            assert_eq!(tp_a, tp_b);
            assert_eq!(ms_a.len(), ms_b.len());
            for (a, b) in ms_a.iter().zip(ms_b.iter()) {
                assert_eq!((a.offset, &a.value), (b.offset, &b.value));
            }
        }
        assert_eq!(old.position(&tp), new.position(&tp));
    }

    #[test]
    fn commit_requires_group() {
        let c = setup(1);
        let consumer = Consumer::new(&c, "c1");
        assert!(consumer.commit(BTreeMap::new()).is_err());
        assert!(consumer
            .subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Earliest)
            .is_err());
    }

    #[test]
    fn commit_carries_metadata_annotations() {
        let c = setup(1);
        let tp = TopicPartition::new("t", 0);
        fill(&c, &tp, 3);
        let consumer = Consumer::in_group(&c, "g", "m1");
        consumer
            .subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Earliest)
            .unwrap();
        consumer.poll_batches().unwrap();
        let mut meta = BTreeMap::new();
        meta.insert("sw".to_string(), "v2".to_string());
        consumer.commit(meta).unwrap();
        let commit = c.offsets().fetch("g", &tp).unwrap();
        assert_eq!(commit.offset, 3);
        assert_eq!(commit.metadata["sw"], "v2");
    }
}
