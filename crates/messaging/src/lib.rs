//! The Liquid messaging layer (paper §3.1, §4).
//!
//! A topic-based publish/subscribe system realized as distributed,
//! replicated commit logs — the in-process analogue of Apache Kafka as
//! described in the paper:
//!
//! * **Topics** are split into **partitions**, each an append-only
//!   [`liquid_log::Log`], distributed over **brokers** ([`cluster`]);
//! * **producers** publish with round-robin, key-hash or manual
//!   partitioning ([`producer`]);
//! * **consumers** pull by offset; **consumer groups** split partitions
//!   among members so the group behaves as a queue internally while
//!   distinct groups each see all data ([`consumer`], [`group`]);
//! * partitions are **replicated** leader/follower with an **in-sync
//!   replica (ISR)** set tracked through the coordination service;
//!   configurable acknowledgement levels trade durability for latency
//!   (§4.3, replication logic inside [`cluster`]);
//! * a logically-centralized **offset manager** stores consumer
//!   checkpoints and arbitrary metadata annotations against offsets,
//!   enabling rewindability and incremental processing (§3.1, §4.2,
//!   [`offsets`]).
//!
//! Delivery is **at-least-once**: after a failure, consumers resume from
//! their last committed offset and may observe duplicates (§4.3).

#![forbid(unsafe_code)]

pub mod admin;
pub mod cluster;
pub mod config;
pub mod consumer;
pub mod error;
pub mod group;
pub mod ids;
pub mod mirror;
pub mod offsets;
pub mod producer;
pub mod quotas;

pub use admin::{ClusterDescription, PartitionInfo, TopicInfo};
pub use cluster::{Cluster, ClusterConfig, ClusterConfigBuilder};
pub use config::{AckLevel, TopicConfig, TopicConfigBuilder};
pub use consumer::Consumer;
pub use error::MessagingError;
pub use group::{AssignmentStrategy, GroupAssignment};
pub use ids::{BrokerId, Message, MessageBatch, TopicPartition};
pub use mirror::MirrorMaker;
pub use offsets::{OffsetCommit, OffsetManager};
pub use producer::{BatchConfig, Partitioner, Producer};
pub use quotas::{QuotaDecision, QuotaManager};

/// Result alias for messaging operations.
pub type Result<T> = std::result::Result<T, MessagingError>;
