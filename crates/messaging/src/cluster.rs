//! The broker cluster: partitioned, replicated topics.
//!
//! Replication follows the paper's §4.3 design: every partition has one
//! **leader** and N−1 **followers**; followers replicate by reading from
//! the leader and appending to their local logs. A coordination service
//! tracks the **in-sync replicas** (ISR) — followers within a
//! configurable lag of the leader. On leader failure a new leader is
//! elected from the ISR, so the partition tolerates N−1 failures with N
//! in-sync replicas. The acknowledgement level chosen by producers
//! ([`AckLevel`]) trades durability for latency: `All` waits for every
//! ISR member, `Leader` for the leader alone, `None` for nobody.
//!
//! Consumers only see records up to the **high watermark** — the offset
//! replicated to every ISR member — so an elected leader never exposes
//! records that could be lost.
//!
//! ## Locking model
//!
//! Cluster-wide metadata (broker liveness, the topic map) lives under
//! the `cluster.state` reader–writer lock; each partition's mutable
//! state lives behind its own `partition.state` mutex shard
//! ([`PartitionShard`]), ranked strictly below it. Hot paths resolve
//! the shard under a brief metadata read, drop the cluster guard, and
//! run the whole append/fetch critical section under the shard alone —
//! so producers on different partitions never serialize on one lock.
//! The split is analyzer-proven: the `shard` pass in liquid-lint
//! classifies every ranked critical section as partition-local or
//! cross-partition (`target/analysis/shardability.json`), and the
//! produce/fetch sections here are the partition-local ones it flagged
//! while they still ran under the cluster-wide write lock.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use liquid_coord::{CoordService, Session};
use liquid_log::{Log, LogError, ReadCacheConfig, RecordBatch, SegmentReadCache};
use liquid_obs::{CounterHandle, GaugeHandle, HistogramHandle, Obs};
use liquid_sim::clock::SharedClock;
use liquid_sim::failure::FailureInjector;
use liquid_sim::lockdep::{Mutex, RwLock};
use liquid_sim::sched::Shared;

use crate::config::{AckLevel, TopicConfig};
use crate::error::MessagingError;
use crate::ids::{BrokerId, Message, MessageBatch, TopicPartition};
use crate::offsets::OffsetManager;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of brokers.
    pub brokers: u32,
    /// Replication factor topics default to when built through
    /// [`TopicConfigBuilder::build_for`](crate::config::TopicConfigBuilder::build_for)
    /// without an explicit factor.
    pub default_replication: u32,
    /// A follower may lag the leader by at most this many records and
    /// remain in the ISR.
    pub replica_lag_max: u64,
    /// Coordination session timeout for brokers.
    pub session_timeout_ms: u64,
    /// Fault injector for replication fetches, leader elections and
    /// offset commits. Disabled by default.
    pub injector: FailureInjector,
    /// Observability sink: every cluster instrument registers here and
    /// produce spans are minted from its tracer.
    pub obs: Obs,
    /// Byte capacity of the cluster-wide sealed-segment read cache
    /// shared by every replica log. Hot fetches are served from cached
    /// decoded segments; cold fetches fall through to the log's
    /// storage. Zero disables caching.
    pub segment_cache_bytes: u64,
    /// Lock shards in the segment read cache (concurrent fetches on
    /// different segments only contend within one shard).
    pub segment_cache_shards: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            brokers: 1,
            default_replication: 1,
            replica_lag_max: 0,
            session_timeout_ms: 10_000,
            injector: FailureInjector::disabled(),
            obs: Obs::default(),
            segment_cache_bytes: 64 * 1024 * 1024,
            segment_cache_shards: 8,
        }
    }
}

impl ClusterConfig {
    /// A validating builder; prefer this over struct literals so
    /// impossible combinations are rejected before the cluster starts.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// A cluster with `n` brokers and default tuning.
    pub fn with_brokers(n: u32) -> Self {
        ClusterConfig {
            brokers: n,
            ..ClusterConfig::default()
        }
    }
}

/// Builder for [`ClusterConfig`] with typed validation at
/// [`build`](ClusterConfigBuilder::build) time.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Sets the broker count (must end up > 0).
    pub fn brokers(mut self, n: u32) -> Self {
        self.config.brokers = n;
        self
    }

    /// Sets the default topic replication factor (must end up in
    /// `1..=brokers`).
    pub fn replication(mut self, replication: u32) -> Self {
        self.config.default_replication = replication;
        self
    }

    /// Sets the maximum follower lag tolerated inside the ISR.
    pub fn replica_lag_max(mut self, lag: u64) -> Self {
        self.config.replica_lag_max = lag;
        self
    }

    /// Sets the coordination session timeout.
    pub fn session_timeout_ms(mut self, ms: u64) -> Self {
        self.config.session_timeout_ms = ms;
        self
    }

    /// Installs a fault injector on replication/election/commit paths.
    pub fn injector(mut self, injector: FailureInjector) -> Self {
        self.config.injector = injector;
        self
    }

    /// Installs the observability sink instruments register into.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.config.obs = obs;
        self
    }

    /// Sets the byte capacity of the shared sealed-segment read cache
    /// (0 disables it).
    pub fn segment_cache_bytes(mut self, bytes: u64) -> Self {
        self.config.segment_cache_bytes = bytes;
        self
    }

    /// Sets the shard count of the segment read cache.
    pub fn segment_cache_shards(mut self, shards: usize) -> Self {
        self.config.segment_cache_shards = shards;
        self
    }

    /// Validates and returns the config: rejects zero brokers and a
    /// default replication factor outside `1..=brokers`.
    pub fn build(self) -> crate::Result<ClusterConfig> {
        if self.config.brokers == 0 {
            return Err(MessagingError::ZeroBrokers);
        }
        if self.config.default_replication == 0
            || self.config.default_replication > self.config.brokers
        {
            return Err(MessagingError::ReplicationOutOfRange {
                replication: self.config.default_replication,
                brokers: self.config.brokers,
            });
        }
        Ok(self.config)
    }
}

/// Pre-resolved registry handles for every cluster-path instrument, so
/// hot paths touch an atomic instead of a name lookup. The twin
/// counters mirror the injector tick sites by exact name — the
/// obs-instrument lint pairs them.
#[derive(Debug, Clone)]
struct ClusterMetrics {
    messages_in: CounterHandle,
    bytes_in: CounterHandle,
    messages_out: CounterHandle,
    bytes_out: CounterHandle,
    replicated_messages: CounterHandle,
    replicated_bytes: CounterHandle,
    elections: CounterHandle,
    produce_failures: CounterHandle,
    producer_ids: CounterHandle,
    replication_fetch: CounterHandle,
    replication_fetch_batch: CounterHandle,
    cluster_election: CounterHandle,
    /// Records per produced batch (group-commit size distribution).
    produce_batch_records: HistogramHandle,
    /// Records per served fetch batch.
    fetch_batch_records: HistogramHandle,
}

impl ClusterMetrics {
    fn resolve(obs: &Obs) -> Self {
        let reg = obs.registry();
        ClusterMetrics {
            messages_in: reg.counter("cluster.messages_in"),
            bytes_in: reg.counter("cluster.bytes_in"),
            messages_out: reg.counter("cluster.messages_out"),
            bytes_out: reg.counter("cluster.bytes_out"),
            replicated_messages: reg.counter("cluster.replicated_messages"),
            replicated_bytes: reg.counter("cluster.replicated_bytes"),
            elections: reg.counter("cluster.elections"),
            produce_failures: reg.counter("cluster.produce_failures"),
            producer_ids: reg.counter("cluster.producer_ids"),
            replication_fetch: reg.counter("replication.fetch"),
            replication_fetch_batch: reg.counter("replication.fetch-batch"),
            cluster_election: reg.counter("cluster.election"),
            produce_batch_records: reg.histogram("cluster.produce.batch_records"),
            fetch_batch_records: reg.histogram("cluster.fetch.batch_records"),
        }
    }
}

struct BrokerState {
    online: bool,
    session: Session,
}

struct PartitionState {
    /// Brokers assigned to host replicas (first = preferred leader).
    assignment: Vec<BrokerId>,
    /// Current leader, if any live ISR member exists.
    leader: Option<BrokerId>,
    /// In-sync replicas (always includes the leader when one exists).
    isr: Vec<BrokerId>,
    /// One log per assigned broker. Ordered so iteration (and therefore
    /// fault-injector tick order) is deterministic across runs.
    replicas: BTreeMap<BrokerId, Log>,
    /// High watermark: first offset *not* known to be on every ISR
    /// member. Consumers read strictly below this. A liquid-check
    /// tracked cell: under a model run every read/write is a schedule
    /// point and feeds the happens-before race detector.
    high_watermark: Shared<u64>,
    /// Highest sequence number accepted per idempotent producer id
    /// (duplicate suppression; the exactly-once groundwork §4.3 calls
    /// "an ongoing effort").
    producer_seqs: HashMap<u64, u64>,
    /// Registry gauge mirroring `high_watermark`
    /// (`partition.high_watermark{tp=topic-p}`).
    hw_gauge: GaugeHandle,
    /// Registry gauge tracking the leader's log end
    /// (`partition.log_end{tp=topic-p}`).
    log_end_gauge: GaugeHandle,
    /// `topic-partition` rendered once, so per-message trace events
    /// don't re-format it on the hot path.
    tp_label: String,
    /// Offset → causal span id for recently produced records, so fetch
    /// and replication can stamp events with the originating span.
    /// A direct-mapped ring over the last [`SPAN_CACHE_MAX`] offsets
    /// (offsets are sequential per partition), allocated on the first
    /// nonzero span — so `obs-off` builds never pay for it. Older
    /// offsets simply report span 0.
    spans: Vec<(u64, u64)>,
}

/// Per-partition cap on remembered produce spans. Old entries fall off
/// first, so a fetch of long-retained data simply reports span 0.
const SPAN_CACHE_MAX: usize = 1024;

impl PartitionState {
    fn log_end(&self, broker: BrokerId) -> u64 {
        self.replicas
            .get(&broker)
            .map(|l| l.next_offset())
            .unwrap_or(0)
    }

    /// Pushes the current watermark and leader log end into the gauges.
    fn publish_gauges(&self) {
        self.hw_gauge.set(self.high_watermark.get());
        if let Some(l) = self.leader {
            self.log_end_gauge.set(self.log_end(l));
        }
    }

    fn remember_span(&mut self, offset: u64, span: u64) {
        if span == 0 {
            return;
        }
        if self.spans.is_empty() {
            // (u64::MAX, 0) slots never match a real offset.
            self.spans.resize(SPAN_CACHE_MAX, (u64::MAX, 0));
        }
        self.spans[offset as usize % SPAN_CACHE_MAX] = (offset, span);
    }

    fn span_at(&self, offset: u64) -> u64 {
        match self.spans.get(offset as usize % SPAN_CACHE_MAX) {
            Some(&(o, span)) if o == offset => span,
            _ => 0,
        }
    }
}

/// One partition's mutable state behind its own lock shard
/// (`partition.state`, ranked strictly below `cluster.state`). The
/// `Arc` lets hot paths resolve the shard under a brief metadata read,
/// drop the cluster-wide guard, and run the whole critical section
/// under this mutex alone. Shards never nest each other — every path
/// locks at most one partition at a time, which the lockdep same-rank
/// reentrancy check enforces at runtime.
struct PartitionShard {
    part: Mutex<PartitionState>,
}

struct TopicState {
    config: TopicConfig,
    partitions: Vec<Arc<PartitionShard>>,
}

struct State {
    brokers: BTreeMap<BrokerId, BrokerState>,
    /// Ordered so per-topic iteration is deterministic (seeded chaos
    /// runs rely on a stable injector tick order).
    topics: BTreeMap<String, TopicState>,
}

/// Handle to the messaging cluster. Cheap to clone; all clones share the
/// same cluster.
#[derive(Clone)]
pub struct Cluster {
    inner: Arc<Inner>,
}

struct Inner {
    config: ClusterConfig,
    clock: SharedClock,
    coord: CoordService,
    state: RwLock<State>,
    metrics: ClusterMetrics,
    obs: Obs,
    /// Functional (not just observable) state: mints idempotent
    /// producer ids, so it must keep counting even with `obs-off`.
    producer_ids: AtomicU64,
    /// Cluster-wide sealed-segment read cache shared by every replica
    /// log (`None` when `segment_cache_bytes` is 0). Fetches of sealed
    /// segments are served from here; only misses reach the log's
    /// injectable storage.
    read_cache: Option<Arc<SegmentReadCache>>,
    /// Mints a unique id per replica log so cache keys from different
    /// logs never collide.
    log_ids: AtomicU64,
    offsets: OffsetManager,
    groups: crate::group::GroupRegistry,
    quotas: crate::quotas::QuotaManager,
}

impl Cluster {
    /// Starts a cluster of `config.brokers` brokers, registering each in
    /// the coordination service under `/liquid/brokers/<id>`.
    pub fn new(config: ClusterConfig, clock: SharedClock) -> Self {
        let coord = CoordService::new(clock.clone());
        // lint:allow(panic-reachability, reason=the coord service was created one line up, so these static paths cannot collide or have a missing parent)
        coord.ensure_path("/liquid/brokers").expect("static path");
        // lint:allow(panic-reachability, reason=the coord service was created two lines up, so these static paths cannot collide or have a missing parent)
        coord.ensure_path("/liquid/topics").expect("static path");
        let mut brokers = BTreeMap::new();
        for id in 0..config.brokers {
            let session = coord.create_session(config.session_timeout_ms);
            coord
                .create(
                    &format!("/liquid/brokers/{id}"),
                    id.to_string().as_bytes(),
                    liquid_coord::CreateMode::Ephemeral,
                    Some(session.id()),
                )
                // lint:allow(panic-reachability, reason=broker ids are unique in this loop and the tree is fresh, so the ephemeral path cannot exist yet)
                .expect("fresh broker path");
            brokers.insert(
                id,
                BrokerState {
                    online: true,
                    session,
                },
            );
        }
        let injector = config.injector.clone();
        let obs = config.obs.clone();
        let read_cache = (config.segment_cache_bytes > 0).then(|| {
            SegmentReadCache::new(ReadCacheConfig {
                capacity_bytes: config.segment_cache_bytes,
                shards: config.segment_cache_shards.max(1),
                obs: obs.clone(),
            })
        });
        Cluster {
            inner: Arc::new(Inner {
                clock: clock.clone(),
                coord,
                state: RwLock::new(
                    "cluster.state",
                    State {
                        brokers,
                        topics: BTreeMap::new(),
                    },
                ),
                metrics: ClusterMetrics::resolve(&obs),
                producer_ids: AtomicU64::new(0),
                read_cache,
                log_ids: AtomicU64::new(0),
                offsets: OffsetManager::with_obs(clock.clone(), injector, &obs),
                groups: crate::group::GroupRegistry::default(),
                quotas: crate::quotas::QuotaManager::new(clock),
                obs,
                config,
            }),
        }
    }

    /// Single-broker in-memory cluster (quickstart / tests).
    pub fn single_node(clock: SharedClock) -> Self {
        Cluster::new(ClusterConfig::default(), clock)
    }

    /// The coordination service (for observability and recipes).
    pub fn coord(&self) -> &CoordService {
        &self.inner.coord
    }

    /// The observability sink this cluster records into.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Point-in-time view of every registered instrument. Cluster
    /// counters live under `cluster.*`, twin fault-site counters under
    /// their site names, and per-partition gauges under
    /// `partition.high_watermark{tp=…}` / `partition.log_end{tp=…}`.
    pub fn snapshot(&self) -> liquid_obs::Snapshot {
        self.inner.obs.snapshot()
    }

    /// The offset manager (consumer checkpoints + metadata annotations).
    pub fn offsets(&self) -> &OffsetManager {
        &self.inner.offsets
    }

    /// Per-client produce quotas (§3.1: identifying misbehaving
    /// applications).
    pub fn quotas(&self) -> &crate::quotas::QuotaManager {
        &self.inner.quotas
    }

    /// The shared clock.
    pub fn clock(&self) -> &SharedClock {
        &self.inner.clock
    }

    /// Creates a topic; partitions are assigned to brokers round-robin
    /// and replicas to the following brokers.
    pub fn create_topic(&self, name: &str, config: TopicConfig) -> crate::Result<()> {
        if config.partitions == 0 {
            return Err(MessagingError::ZeroPartitions);
        }
        let mut st = self.inner.state.write();
        let broker_count = st.brokers.len() as u32;
        if config.replication == 0 || config.replication > broker_count {
            return Err(MessagingError::ReplicationOutOfRange {
                replication: config.replication,
                brokers: broker_count,
            });
        }
        if st.topics.contains_key(name) {
            return Err(MessagingError::TopicExists(name.to_string()));
        }
        let broker_ids: Vec<BrokerId> = st.brokers.keys().copied().collect();
        let mut partitions = Vec::with_capacity(config.partitions as usize);
        for p in 0..config.partitions {
            let assignment: Vec<BrokerId> = (0..config.replication)
                .map(|r| broker_ids[((p + r) % broker_count) as usize])
                .collect();
            let mut replicas = BTreeMap::new();
            for &b in &assignment {
                let log_config = per_replica_log_config(&config, name, p, b, &self.inner.obs);
                let mut log = Log::open(log_config, self.inner.clock.clone())?;
                if let Some(cache) = &self.inner.read_cache {
                    let log_id = self.inner.log_ids.fetch_add(1, Ordering::Relaxed);
                    log.attach_read_cache(cache.clone(), log_id);
                }
                replicas.insert(b, log);
            }
            let leader = assignment.iter().copied().find(|b| st.brokers[b].online);
            let tp_label = format!("{name}-{p}");
            let reg = self.inner.obs.registry();
            partitions.push(Arc::new(PartitionShard {
                part: Mutex::new(
                    "partition.state",
                    PartitionState {
                        isr: assignment.clone(),
                        assignment,
                        leader,
                        replicas,
                        high_watermark: Shared::new("partition.high_watermark", 0),
                        producer_seqs: HashMap::new(),
                        hw_gauge: reg.gauge_with("partition.high_watermark", &[("tp", &tp_label)]),
                        log_end_gauge: reg.gauge_with("partition.log_end", &[("tp", &tp_label)]),
                        tp_label,
                        spans: Vec::new(),
                    },
                ),
            }));
        }
        self.inner
            .coord
            .ensure_path(&format!("/liquid/topics/{name}"))
            .ok();
        st.topics
            .insert(name.to_string(), TopicState { config, partitions });
        drop(st);
        self.publish_partition_states(name);
        Ok(())
    }

    /// Names of topics with a compacted retention policy, sorted.
    pub fn compacted_topics(&self) -> Vec<String> {
        let st = self.inner.state.read();
        let mut names: Vec<String> = st
            .topics
            .iter()
            .filter(|(_, t)| t.config.log.retention.is_compacted())
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Topic names, sorted.
    pub fn topic_names(&self) -> Vec<String> {
        let st = self.inner.state.read();
        let mut names: Vec<String> = st.topics.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of partitions of a topic.
    pub fn partition_count(&self, topic: &str) -> crate::Result<u32> {
        let st = self.inner.state.read();
        st.topics
            .get(topic)
            .map(|t| t.config.partitions)
            .ok_or_else(|| MessagingError::UnknownTopic(topic.to_string()))
    }

    /// Produces one message to a specific partition. Returns its offset.
    pub fn produce_to(
        &self,
        tp: &TopicPartition,
        key: Option<Bytes>,
        value: Bytes,
        acks: AckLevel,
    ) -> crate::Result<u64> {
        self.produce_idempotent(tp, key, value, acks, None)
    }

    /// Registers an idempotent producer session; the returned id is
    /// passed with every send so brokers can de-duplicate retries.
    pub fn register_producer(&self) -> u64 {
        self.inner.metrics.producer_ids.inc();
        self.inner.producer_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Produce with optional `(producer_id, sequence)` for duplicate
    /// suppression: a sequence at or below the highest accepted one for
    /// that producer is dropped and the produce reports the current
    /// log-end offset without appending (at-most-once per sequence, so
    /// retries become exactly-once on the partition).
    pub fn produce_idempotent(
        &self,
        tp: &TopicPartition,
        key: Option<Bytes>,
        value: Bytes,
        acks: AckLevel,
        dedup: Option<(u64, u64)>,
    ) -> crate::Result<u64> {
        let now = self.inner.clock.now();
        let value_len = value.len() as u64;
        // Metadata read only: snapshot broker liveness, resolve the
        // partition's shard, and release the cluster-wide lock before
        // the append critical section.
        let st = self.inner.state.read();
        let brokers_online: HashMap<BrokerId, bool> =
            st.brokers.iter().map(|(&id, b)| (id, b.online)).collect();
        let shard = partition_shard(&st, tp)?;
        drop(st);
        let mut ps = shard.part.lock();
        let leader = match ps
            .leader
            // lint:allow(atomicity, reason=brokers_online is a conservative liveness hint: leadership itself is revalidated via ps.leader under the shard lock (kill/restart update it there), and a broker dying after this check is indistinguishable from dying just after the ack — the acks=all ISR sync carries the durability contract)
            .filter(|b| brokers_online.get(b).copied().unwrap_or(false))
        {
            Some(l) => l,
            None => {
                self.inner.metrics.produce_failures.inc();
                return Err(MessagingError::PartitionUnavailable(tp.clone()));
            }
        };
        if let Some((producer_id, sequence)) = dedup {
            let last = ps.producer_seqs.get(&producer_id).copied();
            if last.is_some_and(|l| sequence <= l) {
                // Duplicate retry: already appended.
                return Ok(ps.log_end(leader).saturating_sub(1));
            }
            ps.producer_seqs.insert(producer_id, sequence);
        }
        let leader_log = ps
            .replicas
            .get_mut(&leader)
            .ok_or_else(|| MessagingError::PartitionUnavailable(tp.clone()))?;
        let offset = leader_log.append_with_timestamp(key.clone(), value.clone(), now)?;
        // Causal span: minted at the produce, stamped onto every
        // downstream replicate/fetch/deliver event for this record.
        let span = self.inner.obs.tracer().mint();
        self.inner
            .obs
            .tracer()
            .record(span, "produce", &ps.tp_label, offset);
        ps.remember_span(offset, span);
        // First offset past the appended record; checked because a wrapped
        // value here would move the high watermark back to zero.
        let next_end = offset
            .checked_add(1)
            .ok_or(MessagingError::OffsetOverflow {
                what: "advancing past the appended record",
                value: offset,
            })?;
        match acks {
            AckLevel::All => {
                // Synchronously bring every live ISR follower fully up to
                // date, then advance the high watermark.
                let isr = ps.isr.clone();
                let mut synced_ends = vec![next_end];
                for b in isr {
                    // lint:allow(atomicity, reason=stale liveness here only skips the catch-up of a follower that just went offline; the high watermark advances over synced_ends alone, so a skipped follower never counts as synced and the acks=all contract holds)
                    if b == leader || !brokers_online.get(&b).copied().unwrap_or(false) {
                        continue;
                    }
                    self.inner.metrics.replication_fetch.inc();
                    if self.inner.config.injector.tick("replication.fetch") {
                        // Crash mid-replication: the leader appended but
                        // not every ISR member confirmed. The high
                        // watermark stays put, so the record is unacked.
                        return Err(MessagingError::Injected("replication.fetch"));
                    }
                    let copied = catch_up(&mut ps, leader, b)?;
                    self.note_replicated(copied);
                    if copied.0 > 0 {
                        self.inner
                            .obs
                            .tracer()
                            .record(span, "replicate", &ps.tp_label, copied.0);
                    }
                    synced_ends.push(ps.log_end(b));
                }
                let min_end = synced_ends.iter().copied().min().unwrap_or(next_end);
                let hw = ps.high_watermark.get();
                ps.high_watermark.set(hw.max(min_end));
            }
            AckLevel::Leader | AckLevel::None => {
                // Followers catch up on the next replication tick; the
                // high watermark advances then. With a single replica the
                // leader *is* the full ISR, so advance immediately.
                if ps.isr == [leader] {
                    ps.high_watermark.set(next_end);
                }
            }
        }
        ps.publish_gauges();
        self.inner.metrics.messages_in.inc();
        self.inner.metrics.bytes_in.add(value_len);
        Ok(offset)
    }

    /// Produces a whole [`RecordBatch`] as one **group commit**: one
    /// lock acquisition, one leader append
    /// ([`Log::append_record_batch`]), and — at [`AckLevel::All`] — one
    /// replication fetch per follower for the entire batch. Returns the
    /// batch's base offset; records occupy `base..base + len`
    /// contiguously.
    ///
    /// Semantics match `len` calls to
    /// [`produce_idempotent`](Self::produce_idempotent) exactly, except
    /// atomically: a fault injected at the `log.append-batch` or
    /// `replication.fetch-batch` site drops or un-acks the batch as a
    /// whole — the high watermark never lands inside it, so a torn
    /// batch is never partially acknowledged. Records are re-stamped
    /// with broker time at append, and `dedup` carries one
    /// `(producer_id, sequence)` for the whole batch, so a retry either
    /// re-appends everything or nothing.
    pub fn produce_batch(
        &self,
        tp: &TopicPartition,
        batch: RecordBatch,
        acks: AckLevel,
        dedup: Option<(u64, u64)>,
    ) -> crate::Result<u64> {
        let count = batch.len() as u64;
        let payload_bytes = batch.payload_bytes();
        let now = self.inner.clock.now();
        // Metadata read only; the append itself runs under the
        // partition's own shard, so producers on other partitions are
        // never blocked by this batch.
        let st = self.inner.state.read();
        let brokers_online: HashMap<BrokerId, bool> =
            st.brokers.iter().map(|(&id, b)| (id, b.online)).collect();
        let shard = partition_shard(&st, tp)?;
        drop(st);
        // lint:allow(lock-cost, reason=crash atomicity: the leader append and the high-watermark update must be one critical section or a torn batch can be partially acknowledged; the section spans one partition shard, not the cluster-wide lock)
        let mut ps = shard.part.lock();
        let leader = match ps
            .leader
            // lint:allow(atomicity, reason=brokers_online is a conservative liveness hint: leadership itself is revalidated via ps.leader under the shard lock (kill/restart update it there), and a broker dying after this check is indistinguishable from dying just after the ack — the acks=all ISR sync carries the durability contract)
            .filter(|b| brokers_online.get(b).copied().unwrap_or(false))
        {
            Some(l) => l,
            None => {
                self.inner.metrics.produce_failures.inc();
                return Err(MessagingError::PartitionUnavailable(tp.clone()));
            }
        };
        if count == 0 {
            return Ok(ps.log_end(leader));
        }
        if let Some((producer_id, sequence)) = dedup {
            let last = ps.producer_seqs.get(&producer_id).copied();
            if last.is_some_and(|l| sequence <= l) {
                // Duplicate retry: the whole batch already landed.
                return Ok(ps.log_end(leader).saturating_sub(count));
            }
            ps.producer_seqs.insert(producer_id, sequence);
        }
        let leader_log = ps
            .replicas
            .get_mut(&leader)
            .ok_or_else(|| MessagingError::PartitionUnavailable(tp.clone()))?;
        let (base, appended, _) = leader_log.append_record_batch(batch.stamped(now))?;
        // Spans stay per-record even though the append was one group
        // commit — every record gets its own causal identity, so
        // downstream fetch/deliver events remain attributable.
        let mut first_span = 0u64;
        for i in 0..appended {
            let offset = base.checked_add(i).ok_or(MessagingError::OffsetOverflow {
                what: "walking the appended batch",
                value: base,
            })?;
            let span = self.inner.obs.tracer().mint();
            self.inner
                .obs
                .tracer()
                .record(span, "produce", &ps.tp_label, offset);
            ps.remember_span(offset, span);
            if i == 0 {
                first_span = span;
            }
        }
        let next_end = base
            .checked_add(appended)
            .ok_or(MessagingError::OffsetOverflow {
                what: "advancing past the appended batch",
                value: base,
            })?;
        match acks {
            AckLevel::All => {
                let isr = ps.isr.clone();
                let mut synced_ends = vec![next_end];
                for b in isr {
                    // lint:allow(atomicity, reason=stale liveness here only skips the catch-up of a follower that just went offline; the high watermark advances over synced_ends alone, so a skipped follower never counts as synced and the acks=all contract holds)
                    if b == leader || !brokers_online.get(&b).copied().unwrap_or(false) {
                        continue;
                    }
                    self.inner.metrics.replication_fetch_batch.inc();
                    if self.inner.config.injector.tick("replication.fetch-batch") {
                        // Crash mid group-commit: the leader holds the
                        // batch but not every ISR member confirmed. The
                        // high watermark stays below the batch's base,
                        // so the whole batch is unacked — never a
                        // partial acknowledgement.
                        return Err(MessagingError::Injected("replication.fetch-batch"));
                    }
                    let copied = catch_up(&mut ps, leader, b)?;
                    self.note_replicated(copied);
                    if copied.0 > 0 {
                        self.inner.obs.tracer().record(
                            first_span,
                            "replicate",
                            &ps.tp_label,
                            copied.0,
                        );
                    }
                    synced_ends.push(ps.log_end(b));
                }
                let min_end = synced_ends.iter().copied().min().unwrap_or(next_end);
                let hw = ps.high_watermark.get();
                ps.high_watermark.set(hw.max(min_end));
            }
            AckLevel::Leader | AckLevel::None => {
                if ps.isr == [leader] {
                    ps.high_watermark.set(next_end);
                }
            }
        }
        ps.publish_gauges();
        self.inner.metrics.messages_in.add(appended);
        self.inner.metrics.bytes_in.add(payload_bytes);
        self.inner.metrics.produce_batch_records.record(appended);
        Ok(base)
    }

    /// Fetches up to `max_bytes` of committed messages from `offset`.
    /// Fetching at the high watermark returns an empty batch (the
    /// consumer is tailing). Decomposes the underlying
    /// [`fetch_batch`](Self::fetch_batch) — payloads are still shared,
    /// not copied.
    #[deprecated(
        since = "0.11.0",
        note = "use fetch_batch, which also carries the exact next \
                fetch position and the observed high watermark"
    )]
    pub fn fetch(
        &self,
        tp: &TopicPartition,
        offset: u64,
        max_bytes: u64,
    ) -> crate::Result<Vec<Message>> {
        Ok(self.fetch_batch(tp, offset, max_bytes)?.into_messages())
    }

    /// Fetches up to `max_bytes` of committed records from `offset` as
    /// one [`MessageBatch`]: the records keep sharing the log's payload
    /// buffers, per-record spans ride alongside, and the batch carries
    /// the exact next fetch position
    /// ([`MessageBatch::end_offset`]) plus the high watermark observed
    /// at fetch time. Fetching at the watermark returns an empty batch.
    pub fn fetch_batch(
        &self,
        tp: &TopicPartition,
        offset: u64,
        max_bytes: u64,
    ) -> crate::Result<MessageBatch> {
        // lint:allow(lock-cost, reason=read guard for broker-liveness metadata; the nested partition.state and log.pagecache acquisitions are rank-ordered below cluster.state 40 and the section does no injectable I/O — the report scores it for the ranking, not for a violation)
        let st = self.inner.state.read();
        let shard = partition_shard(&st, tp)?;
        // lint:allow(lock-cost, reason=zero-copy read path: the nested log.pagecache acquisition is rank-ordered (log.pagecache 5 under partition.state 35) and the section does no injectable I/O — the report scores it for the ranking, not for a violation)
        let ps = shard.part.lock();
        let leader = ps
            .leader
            .filter(|b| st.brokers.get(b).is_some_and(|br| br.online))
            .ok_or_else(|| MessagingError::PartitionUnavailable(tp.clone()))?;
        let log = ps
            .replicas
            .get(&leader)
            .ok_or_else(|| MessagingError::PartitionUnavailable(tp.clone()))?;
        let hw = ps.high_watermark.get();
        // A committed position can fall inside a segment that retention
        // has since dropped whole. Resume at the next live segment's
        // base instead of erroring: the batch's `end_offset` then heals
        // the consumer's position past the retired range, keeping lag
        // exact across the dropped-segment boundary.
        let offset = offset.max(log.start_offset());
        if offset >= hw {
            // Tail fetch — but reject offsets beyond the log end as a
            // consumer bug.
            if offset > log.next_offset() {
                return Err(MessagingError::Log(LogError::OffsetOutOfRange {
                    requested: offset,
                    start: log.start_offset(),
                    end: log.next_offset(),
                }));
            }
            return Ok(MessageBatch::empty(offset, hw));
        }
        let out = log.read(offset, max_bytes)?;
        let mut bytes = 0u64;
        let mut records = Vec::with_capacity(out.records.len());
        let mut spans = Vec::with_capacity(out.records.len());
        for r in out.records {
            if r.offset >= hw {
                continue;
            }
            bytes = bytes.saturating_add(r.value.len() as u64);
            let span = ps.span_at(r.offset);
            if span != 0 {
                self.inner
                    .obs
                    .tracer()
                    .record(span, "fetch", &ps.tp_label, r.offset);
            }
            spans.push(span);
            records.push(r);
        }
        let end_offset = match records.last() {
            Some(last) => last
                .offset
                .checked_add(1)
                .ok_or(MessagingError::OffsetOverflow {
                    what: "advancing past a fetched batch",
                    value: last.offset,
                })?,
            None => offset,
        };
        self.inner.metrics.messages_out.add(records.len() as u64);
        self.inner.metrics.bytes_out.add(bytes);
        self.inner
            .metrics
            .fetch_batch_records
            .record(records.len() as u64);
        Ok(MessageBatch::new(records, spans, end_offset, hw))
    }

    /// First retained offset on the leader's log — the lowest offset a
    /// consumer can still read; retention and compaction move it up.
    /// Contrast with [`latest_offset`](Self::latest_offset) (high
    /// watermark) and [`log_end_offset`](Self::log_end_offset)
    /// (leader's append point).
    pub fn earliest_offset(&self, tp: &TopicPartition) -> crate::Result<u64> {
        let st = self.inner.state.read();
        let shard = partition_shard(&st, tp)?;
        drop(st);
        let ps = shard.part.lock();
        let leader = ps
            .leader
            .ok_or_else(|| MessagingError::PartitionUnavailable(tp.clone()))?;
        ps.replicas
            .get(&leader)
            .map(|log| log.start_offset())
            .ok_or_else(|| MessagingError::PartitionUnavailable(tp.clone()))
    }

    /// The **high watermark**: the first offset a consumer cannot yet
    /// read, because records at or past it are not replicated to every
    /// ISR member. Always `<=` [`log_end_offset`](Self::log_end_offset);
    /// the gap between the two is the replication lag. A consumer whose
    /// [`position`](crate::Consumer::position) equals this value is
    /// fully caught up (see [`Consumer::lag`](crate::Consumer::lag)).
    pub fn latest_offset(&self, tp: &TopicPartition) -> crate::Result<u64> {
        let st = self.inner.state.read();
        let shard = partition_shard(&st, tp)?;
        drop(st);
        let ps = shard.part.lock();
        Ok(ps.high_watermark.get())
    }

    /// The leader's **log-end offset**: where the next append lands.
    /// May exceed [`latest_offset`](Self::latest_offset) (the high
    /// watermark) when followers lag; records in that window exist on
    /// the leader but are not yet consumable or crash-durable.
    pub fn log_end_offset(&self, tp: &TopicPartition) -> crate::Result<u64> {
        let st = self.inner.state.read();
        let shard = partition_shard(&st, tp)?;
        drop(st);
        let ps = shard.part.lock();
        let leader = ps
            .leader
            .ok_or_else(|| MessagingError::PartitionUnavailable(tp.clone()))?;
        ps.replicas
            .get(&leader)
            .map(|log| log.next_offset())
            .ok_or_else(|| MessagingError::PartitionUnavailable(tp.clone()))
    }

    /// First offset whose record timestamp is `>= ts` (rewind by time).
    pub fn offset_for_timestamp(
        &self,
        tp: &TopicPartition,
        ts: liquid_sim::clock::Ts,
    ) -> crate::Result<Option<u64>> {
        let st = self.inner.state.read();
        let shard = partition_shard(&st, tp)?;
        drop(st);
        let ps = shard.part.lock();
        let leader = ps
            .leader
            .ok_or_else(|| MessagingError::PartitionUnavailable(tp.clone()))?;
        let log = ps
            .replicas
            .get(&leader)
            .ok_or_else(|| MessagingError::PartitionUnavailable(tp.clone()))?;
        Ok(log.offset_for_timestamp(ts)?)
    }

    /// Current leader of a partition.
    pub fn leader(&self, tp: &TopicPartition) -> crate::Result<Option<BrokerId>> {
        let st = self.inner.state.read();
        let shard = partition_shard(&st, tp)?;
        drop(st);
        let ps = shard.part.lock();
        Ok(ps.leader)
    }

    /// Current ISR of a partition.
    pub fn isr(&self, tp: &TopicPartition) -> crate::Result<Vec<BrokerId>> {
        let st = self.inner.state.read();
        let shard = partition_shard(&st, tp)?;
        drop(st);
        let ps = shard.part.lock();
        Ok(ps.isr.clone())
    }

    /// Runs one replication round: every live follower copies what it is
    /// missing from its leader; ISR membership and high watermarks are
    /// recomputed; broker sessions heartbeat. Returns messages copied.
    pub fn replicate_tick(&self) -> crate::Result<u64> {
        // Replication holds only the metadata *read* lock: every
        // per-partition mutation happens under that partition's shard,
        // one shard at a time, so produces and fetches on other
        // partitions proceed concurrently with the tick.
        let st = self.inner.state.read();
        // Heartbeat live brokers so their coordination sessions survive.
        for b in st.brokers.values() {
            if b.online {
                b.session.heartbeat().ok();
            }
        }
        let online: HashMap<BrokerId, bool> =
            st.brokers.iter().map(|(&id, b)| (id, b.online)).collect();
        let lag_max = self.inner.config.replica_lag_max;
        let mut total = 0u64;
        let topics: Vec<String> = st.topics.keys().cloned().collect();
        for t in st.topics.values() {
            for shard in &t.partitions {
                let mut ps = shard.part.lock();
                let Some(leader) = ps
                    .leader
                    .filter(|b| online.get(b).copied().unwrap_or(false))
                else {
                    // Try to recover leadership if a replica came back.
                    self.inner.metrics.cluster_election.inc();
                    if self.inner.config.injector.tick("cluster.election") {
                        // Controller crash before the election: the
                        // partition stays leaderless until the next tick.
                        return Err(MessagingError::Injected("cluster.election"));
                    }
                    if elect_leader(&mut ps, &online) {
                        self.inner.metrics.elections.inc();
                    }
                    continue;
                };
                let followers: Vec<BrokerId> = ps
                    .assignment
                    .iter()
                    .copied()
                    .filter(|&b| b != leader && online.get(&b).copied().unwrap_or(false))
                    .collect();
                for b in followers {
                    self.inner.metrics.replication_fetch.inc();
                    if self.inner.config.injector.tick("replication.fetch") {
                        return Err(MessagingError::Injected("replication.fetch"));
                    }
                    let copied = catch_up(&mut ps, leader, b)?;
                    self.note_replicated(copied);
                    if copied.0 > 0 {
                        // Stamp the replicate event with the span of the
                        // newest record that reached this follower.
                        let span = ps.span_at(ps.log_end(b).saturating_sub(1));
                        if span != 0 {
                            self.inner.obs.tracer().record(
                                span,
                                "replicate",
                                &ps.tp_label,
                                copied.0,
                            );
                        }
                    }
                    total += copied.0;
                }
                // Recompute ISR: leader plus followers within lag_max.
                let leader_end = ps.log_end(leader);
                let mut isr = vec![leader];
                for &b in &ps.assignment {
                    if b != leader
                        && online.get(&b).copied().unwrap_or(false)
                        && leader_end - ps.log_end(b) <= lag_max
                    {
                        isr.push(b);
                    }
                }
                isr.sort_unstable();
                ps.isr = isr;
                // High watermark: minimum log end across the ISR.
                let hw = ps.high_watermark.get();
                let min_end = ps.isr.iter().map(|&b| ps.log_end(b)).min().unwrap_or(hw);
                ps.high_watermark.set(hw.max(min_end));
                ps.publish_gauges();
            }
        }
        drop(st);
        for topic in &topics {
            self.publish_partition_states(topic);
        }
        Ok(total)
    }

    /// Crashes a broker: its coordination session expires, it leaves
    /// every ISR, and partitions it led elect a new leader from the
    /// remaining ISR. Unreplicated records on the old leader are lost —
    /// this is the `acks` durability trade-off of §4.3.
    pub fn kill_broker(&self, id: BrokerId) -> crate::Result<()> {
        let mut st = self.inner.state.write();
        let broker = st
            .brokers
            .get_mut(&id)
            .ok_or(MessagingError::UnknownBroker(id))?;
        if !broker.online {
            return Ok(());
        }
        broker.online = false;
        let session_id = broker.session.id();
        self.inner.coord.expire_session(session_id);
        let online: HashMap<BrokerId, bool> =
            st.brokers.iter().map(|(&bid, b)| (bid, b.online)).collect();
        let topics: Vec<String> = st.topics.keys().cloned().collect();
        for t in st.topics.values() {
            for shard in &t.partitions {
                let mut ps = shard.part.lock();
                // The dead broker stays in the ISR: the ISR is the set of
                // replicas known to hold all committed data, and it is
                // the candidate set for future elections — removing the
                // last member would make the partition unrecoverable
                // even after the broker returns. Live leaders shrink the
                // ISR on the next replication tick instead.
                if ps.leader == Some(id) {
                    ps.leader = None;
                    self.inner.metrics.cluster_election.inc();
                    if self.inner.config.injector.tick("cluster.election") {
                        // Controller crash mid-failover: the broker is
                        // already offline and its session expired, but no
                        // new leader was chosen. The next replicate_tick
                        // finishes the election.
                        return Err(MessagingError::Injected("cluster.election"));
                    }
                    if elect_leader(&mut ps, &online) {
                        self.inner.metrics.elections.inc();
                    }
                }
            }
        }
        drop(st);
        for topic in &topics {
            self.publish_partition_states(topic);
        }
        Ok(())
    }

    /// Restarts a crashed broker. Its replicas truncate any uncommitted
    /// suffix (records at or past the high watermark, which may diverge
    /// from what the current leader holds at those offsets) and rejoin
    /// the ISR once they catch up via
    /// [`replicate_tick`](Self::replicate_tick).
    pub fn restart_broker(&self, id: BrokerId) -> crate::Result<()> {
        let mut st = self.inner.state.write();
        if !st.brokers.contains_key(&id) {
            return Err(MessagingError::UnknownBroker(id));
        }
        if st.brokers[&id].online {
            return Ok(());
        }
        let session = self
            .inner
            .coord
            .create_session(self.inner.config.session_timeout_ms);
        self.inner
            .coord
            .create(
                &format!("/liquid/brokers/{id}"),
                id.to_string().as_bytes(),
                liquid_coord::CreateMode::Ephemeral,
                Some(session.id()),
            )
            .ok();
        if let Some(b) = st.brokers.get_mut(&id) {
            b.online = true;
            b.session = session;
        }
        // Divergence repair: drop the uncommitted suffix. Everything at
        // or above the high watermark was never acknowledged at
        // `AckLevel::All`, and this broker may have appended it while
        // briefly leading before it died — a newer leader can hold
        // *different* records at those offsets. Comparing against the
        // current leader's log end is not enough: a diverged suffix of
        // equal or shorter length would survive, and `catch_up` (which
        // resumes from the follower's log end) would skip right past it,
        // permanently leaving wrong content below the fetch point.
        // Truncating to the high watermark is always safe because the
        // watermark is monotone and committed records sit below it.
        for t in st.topics.values() {
            for shard in &t.partitions {
                let mut ps = shard.part.lock();
                if !ps.assignment.contains(&id) {
                    continue;
                }
                if ps.leader == Some(id) {
                    // Still the leader of record (it was never deposed):
                    // its log defines the partition's content going
                    // forward, so the suffix stays.
                    continue;
                }
                let own_end = ps.log_end(id);
                let hw = ps.high_watermark.get();
                if own_end > hw {
                    if let Some(log) = ps.replicas.get_mut(&id) {
                        log.truncate_to(hw)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// All broker ids, sorted.
    pub fn broker_ids(&self) -> Vec<BrokerId> {
        self.inner.state.read().brokers.keys().copied().collect()
    }

    /// Whether a broker is currently online.
    pub fn broker_online(&self, id: BrokerId) -> bool {
        self.inner
            .state
            .read()
            .brokers
            .get(&id)
            .map(|b| b.online)
            .unwrap_or(false)
    }

    /// Preferred-leader election: partitions whose current leader is not
    /// the first live ISR member of their assignment move leadership
    /// back. Run after broker restarts to undo the leadership skew that
    /// failovers cause (load balancing across brokers, §4.4). Returns
    /// the number of partitions whose leader moved.
    pub fn rebalance_leadership(&self) -> crate::Result<usize> {
        // Leadership moves are per-partition state: a metadata read for
        // the broker map, then one shard lock at a time.
        let st = self.inner.state.read();
        let online: HashMap<BrokerId, bool> =
            st.brokers.iter().map(|(&id, b)| (id, b.online)).collect();
        let mut moved = 0;
        let topics: Vec<String> = st.topics.keys().cloned().collect();
        for t in st.topics.values() {
            for shard in &t.partitions {
                let mut ps = shard.part.lock();
                let preferred = ps
                    .assignment
                    .iter()
                    .copied()
                    .find(|b| ps.isr.contains(b) && online.get(b).copied().unwrap_or(false));
                if let Some(p) = preferred {
                    if let Some(current) = ps.leader.filter(|&c| c != p) {
                        // Only safe when the preferred replica is fully
                        // caught up with the current leader.
                        if ps.log_end(p) == ps.log_end(current) {
                            ps.leader = Some(p);
                            moved += 1;
                        }
                    }
                }
            }
        }
        drop(st);
        for topic in &topics {
            self.publish_partition_states(topic);
        }
        if moved > 0 {
            self.inner.metrics.elections.add(moved as u64);
        }
        Ok(moved)
    }

    /// Applies retention to every partition log; returns segments
    /// deleted.
    pub fn enforce_retention(&self) -> crate::Result<usize> {
        let st = self.inner.state.read();
        let mut deleted = 0;
        for topic in st.topics.values() {
            for shard in &topic.partitions {
                let mut ps = shard.part.lock();
                for log in ps.replicas.values_mut() {
                    deleted += log.enforce_retention()?.len();
                }
            }
        }
        Ok(deleted)
    }

    /// Runs a compaction pass over every partition of a topic; returns
    /// the summed stats.
    pub fn compact_topic(&self, topic: &str) -> crate::Result<liquid_log::CompactionStats> {
        let st = self.inner.state.read();
        let t = st
            .topics
            .get(topic)
            .ok_or_else(|| MessagingError::UnknownTopic(topic.to_string()))?;
        let mut total = liquid_log::CompactionStats::default();
        for shard in &t.partitions {
            let mut ps = shard.part.lock();
            for log in ps.replicas.values_mut() {
                let s = log.compact()?;
                total.records_before += s.records_before;
                total.records_after += s.records_after;
                total.bytes_before += s.bytes_before;
                total.bytes_after += s.bytes_after;
                total.tombstones_removed += s.tombstones_removed;
            }
        }
        Ok(total)
    }

    /// Total log bytes across all replicas of a topic (includes
    /// replication — the paper's §5 in/out amplification).
    pub fn topic_size_bytes(&self, topic: &str) -> crate::Result<u64> {
        let st = self.inner.state.read();
        let t = st
            .topics
            .get(topic)
            .ok_or_else(|| MessagingError::UnknownTopic(topic.to_string()))?;
        let mut total = 0u64;
        for shard in &t.partitions {
            let ps = shard.part.lock();
            total += ps.replicas.values().map(|l| l.size_bytes()).sum::<u64>();
        }
        Ok(total)
    }

    pub(crate) fn group_registry(&self) -> &crate::group::GroupRegistry {
        &self.inner.groups
    }

    fn note_replicated(&self, copied: (u64, u64)) {
        self.inner.metrics.replicated_messages.add(copied.0);
        self.inner.metrics.replicated_bytes.add(copied.1);
    }

    /// Records per-partition leader/ISR into the coordination service
    /// for observability (`/liquid/topics/<t>/<p>` → `leader|isr...`).
    fn publish_partition_states(&self, topic: &str) {
        let entries: Vec<(u32, String)> = {
            let st = self.inner.state.read();
            let Some(t) = st.topics.get(topic) else {
                return;
            };
            t.partitions
                .iter()
                .enumerate()
                .map(|(p, shard)| {
                    let ps = shard.part.lock();
                    let isr: Vec<String> = ps.isr.iter().map(|b| b.to_string()).collect();
                    let leader = ps
                        .leader
                        .map(|l| l.to_string())
                        .unwrap_or_else(|| "-".to_string());
                    (p as u32, format!("{leader}|{}", isr.join(",")))
                })
                .collect()
        };
        for (p, data) in entries {
            let path = format!("/liquid/topics/{topic}/{p}");
            self.inner.coord.ensure_path(&path).ok();
            self.inner.coord.set_data(&path, data.as_bytes(), None).ok();
        }
    }
}

/// Reads the single record at exactly `offset`, or `None` when the log
/// does not hold it (out of range, or compacted away).
fn record_at(log: &Log, offset: u64) -> Option<liquid_log::Record> {
    if offset < log.start_offset() || offset >= log.next_offset() {
        return None;
    }
    log.read(offset, 1)
        .ok()?
        .records
        .into_iter()
        .next()
        .filter(|r| r.offset == offset)
}

/// Copies missing records leader → follower; returns `(messages, bytes)`.
///
/// Before copying, the follower's tail is reconciled against the
/// leader's content. Log-end comparisons alone cannot detect every
/// divergence: a broker that dies holding an unacknowledged suffix
/// stays in the ISR, and `acks=All` produces skip offline members when
/// advancing the high watermark — so by the time the broker returns,
/// both its log end and the watermark can sit *past* offsets where it
/// holds different records than the current leader. Walking back from
/// the follower's end until both logs agree (and truncating the
/// divergent suffix) restores the prefix property that makes resuming
/// replication from the follower's log end sound.
fn catch_up(
    ps: &mut PartitionState,
    leader: BrokerId,
    follower: BrokerId,
) -> crate::Result<(u64, u64)> {
    let to = ps.log_end(leader);
    let mut from = ps.log_end(follower).min(to);
    while from > 0 {
        let off = from - 1;
        // Replica maps never shrink, but a missing entry must not panic
        // on a replication path; treat it like the compaction hole below.
        let (Some(leader_log), Some(follower_log)) =
            (ps.replicas.get(&leader), ps.replicas.get(&follower))
        else {
            break;
        };
        let leader_rec = record_at(leader_log, off);
        let follower_rec = record_at(follower_log, off);
        match (leader_rec, follower_rec) {
            (Some(l), Some(f)) => {
                if l.key == f.key && l.value == f.value && l.timestamp == f.timestamp {
                    break;
                }
                from = off;
            }
            // A missing record on either side is a compaction hole, not
            // divergence: compaction rewrites every replica in the same
            // pass and only touches committed (consistent) offsets.
            _ => break,
        }
    }
    if from < ps.log_end(follower) {
        ps.replicas
            .get_mut(&follower)
            .ok_or(MessagingError::UnknownBroker(follower))?
            .truncate_to(from)?;
    }
    if from >= to {
        return Ok((0, 0));
    }
    let records = {
        let leader_log = ps
            .replicas
            .get(&leader)
            .ok_or(MessagingError::UnknownBroker(leader))?;
        leader_log
            .read(from.max(leader_log.start_offset()), u64::MAX)?
            .records
    };
    // The missing suffix moves as one batch: payload `Bytes` are shared
    // with the leader's log (no copy), and the follower appends it as a
    // single group commit — one `log.append-batch` decision point, so an
    // injected crash drops the whole transfer, never half of it.
    let to_copy: Vec<liquid_log::Record> =
        records.into_iter().filter(|r| r.offset >= from).collect();
    if to_copy.is_empty() {
        return Ok((0, 0));
    }
    let flog = ps
        .replicas
        .get_mut(&follower)
        .ok_or(MessagingError::UnknownBroker(follower))?;
    let (_, messages, bytes) = flog.append_record_batch(RecordBatch::from_records(to_copy))?;
    Ok((messages, bytes))
}

/// Elects a leader from the live ISR (preferring assignment order);
/// returns whether a leader was (re-)established. Live replicas truncate
/// divergent suffixes past the new leader's log end.
fn elect_leader(ps: &mut PartitionState, online: &HashMap<BrokerId, bool>) -> bool {
    // A leader must hold every committed record. ISR membership alone is
    // not enough: a broker that was offline while acks=All produces went
    // through stays in the ISR (it remains an election candidate for
    // when it catches up) but its log ends below the high watermark —
    // electing it would make acknowledged records unreadable and
    // truncate them from the other replicas. Such partitions stay
    // leaderless until a caught-up ISR member is back online.
    let hw = ps.high_watermark.get();
    let candidate = ps.assignment.iter().copied().find(|&b| {
        ps.isr.contains(&b) && online.get(&b).copied().unwrap_or(false) && ps.log_end(b) >= hw
    });
    match candidate {
        Some(new_leader) => {
            ps.leader = Some(new_leader);
            let leader_end = ps.log_end(new_leader);
            for &b in &ps.assignment.clone() {
                if b != new_leader && online.get(&b).copied().unwrap_or(false) {
                    let end = ps.log_end(b);
                    if end > leader_end {
                        if let Some(log) = ps.replicas.get_mut(&b) {
                            log.truncate_to(leader_end).ok();
                        }
                    }
                }
            }
            // Candidates are required to reach the high watermark, so
            // this clamp is a no-op kept as defense in depth.
            ps.high_watermark.set(hw.min(leader_end));
            ps.publish_gauges();
            true
        }
        None => false,
    }
}

fn per_replica_log_config(
    config: &TopicConfig,
    topic: &str,
    partition: u32,
    broker: BrokerId,
    obs: &Obs,
) -> liquid_log::LogConfig {
    let mut lc = config.log.clone();
    // Replica logs record into the cluster's sink: `log.*` instruments
    // aggregate next to `cluster.*` in one registry.
    lc.obs = obs.clone();
    if let liquid_log::StorageKind::Files(dir) = &lc.storage {
        lc.storage = liquid_log::StorageKind::Files(
            dir.join(format!("broker-{broker}"))
                .join(format!("{topic}-{partition}")),
        );
    }
    lc
}

/// Resolves a partition's shard under the metadata lock. Returns an
/// owned `Arc` so callers can drop the `cluster.state` guard before
/// locking the shard — the hot produce path never holds the
/// cluster-wide lock across an append.
fn partition_shard(st: &State, tp: &TopicPartition) -> crate::Result<Arc<PartitionShard>> {
    st.topics
        .get(&tp.topic)
        .ok_or_else(|| MessagingError::UnknownTopic(tp.topic.clone()))?
        .partitions
        .get(tp.partition as usize)
        .cloned()
        .ok_or_else(|| MessagingError::UnknownPartition(tp.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_sim::clock::SimClock;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn cluster(brokers: u32) -> (Cluster, SimClock) {
        let clock = SimClock::new(0);
        (
            Cluster::new(ClusterConfig::with_brokers(brokers), clock.shared()),
            clock,
        )
    }

    #[test]
    fn cluster_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Cluster>();
    }

    #[test]
    fn create_topic_and_produce_fetch() {
        let (c, _) = cluster(1);
        c.create_topic("events", TopicConfig::with_partitions(2))
            .unwrap();
        let tp = TopicPartition::new("events", 0);
        let off = c
            .produce_to(&tp, None, b("hello"), AckLevel::Leader)
            .unwrap();
        assert_eq!(off, 0);
        let msgs = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].value, b("hello"));
    }

    #[test]
    fn duplicate_topic_rejected() {
        let (c, _) = cluster(1);
        c.create_topic("t", TopicConfig::default()).unwrap();
        assert!(matches!(
            c.create_topic("t", TopicConfig::default()),
            Err(MessagingError::TopicExists(_))
        ));
    }

    #[test]
    fn replication_factor_validated() {
        let (c, _) = cluster(2);
        assert!(c
            .create_topic("t", TopicConfig::default().replication(3))
            .is_err());
        assert!(c
            .create_topic("t2", TopicConfig::with_partitions(0))
            .is_err());
    }

    #[test]
    fn unknown_topic_and_partition_errors() {
        let (c, _) = cluster(1);
        c.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        assert!(matches!(
            c.fetch_batch(&TopicPartition::new("nope", 0), 0, 1),
            Err(MessagingError::UnknownTopic(_))
        ));
        assert!(matches!(
            c.fetch_batch(&TopicPartition::new("t", 9), 0, 1),
            Err(MessagingError::UnknownPartition(_))
        ));
    }

    #[test]
    fn partitions_are_assigned_across_brokers() {
        let (c, _) = cluster(3);
        c.create_topic("t", TopicConfig::with_partitions(3))
            .unwrap();
        let leaders: Vec<_> = (0..3)
            .map(|p| c.leader(&TopicPartition::new("t", p)).unwrap().unwrap())
            .collect();
        // Round-robin assignment: three distinct leaders.
        let mut unique = leaders.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3, "leaders {leaders:?} should be distinct");
    }

    #[test]
    fn acks_all_replicates_synchronously() {
        let (c, _) = cluster(3);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(3))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        c.produce_to(&tp, None, b("x"), AckLevel::All).unwrap();
        assert_eq!(c.latest_offset(&tp).unwrap(), 1);
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(c.snapshot().counter("cluster.replicated_messages"), 2);
    }

    #[test]
    fn acks_leader_needs_tick_before_visible() {
        let (c, _) = cluster(3);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(3))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        c.produce_to(&tp, None, b("x"), AckLevel::Leader).unwrap();
        // Followers lag: HW has not advanced, consumers see nothing.
        assert_eq!(c.latest_offset(&tp).unwrap(), 0);
        assert!(c
            .fetch_batch(&tp, 0, u64::MAX)
            .unwrap()
            .into_messages()
            .is_empty());
        c.replicate_tick().unwrap();
        assert_eq!(c.latest_offset(&tp).unwrap(), 1);
        assert_eq!(
            c.fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .len(),
            1
        );
    }

    #[test]
    fn leader_failure_elects_isr_member() {
        let (c, _) = cluster(3);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(3))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        for i in 0..10 {
            c.produce_to(&tp, None, b(&format!("m{i}")), AckLevel::All)
                .unwrap();
        }
        let old_leader = c.leader(&tp).unwrap().unwrap();
        c.kill_broker(old_leader).unwrap();
        let new_leader = c.leader(&tp).unwrap().unwrap();
        assert_ne!(new_leader, old_leader);
        // All 10 messages survive (they were fully replicated).
        let msgs = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(msgs.len(), 10);
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(c.snapshot().counter("cluster.elections"), 1);
    }

    #[test]
    fn unreplicated_messages_lost_with_acks_leader() {
        let (c, _) = cluster(3);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(3))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        // Fully replicate 5 messages.
        for i in 0..5 {
            c.produce_to(&tp, None, b(&format!("safe{i}")), AckLevel::All)
                .unwrap();
        }
        // 5 more with acks=Leader, never replicated.
        for i in 0..5 {
            c.produce_to(&tp, None, b(&format!("risky{i}")), AckLevel::Leader)
                .unwrap();
        }
        let leader = c.leader(&tp).unwrap().unwrap();
        assert_eq!(c.log_end_offset(&tp).unwrap(), 10);
        c.kill_broker(leader).unwrap();
        // The new leader only has the replicated prefix.
        assert_eq!(c.log_end_offset(&tp).unwrap(), 5);
        let msgs = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(msgs.len(), 5);
        assert!(msgs.iter().all(|m| m.value.starts_with(b"safe")));
    }

    #[test]
    fn tolerates_n_minus_1_failures() {
        let (c, _) = cluster(3);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(3))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        c.produce_to(&tp, None, b("m"), AckLevel::All).unwrap();
        let l1 = c.leader(&tp).unwrap().unwrap();
        c.kill_broker(l1).unwrap();
        c.produce_to(&tp, None, b("m2"), AckLevel::All).unwrap();
        let l2 = c.leader(&tp).unwrap().unwrap();
        c.kill_broker(l2).unwrap();
        // One replica left: still serving.
        let msgs = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(msgs.len(), 2);
        // Kill the last: unavailable.
        let l3 = c.leader(&tp).unwrap().unwrap();
        c.kill_broker(l3).unwrap();
        assert!(matches!(
            c.produce_to(&tp, None, b("m3"), AckLevel::All),
            Err(MessagingError::PartitionUnavailable(_))
        ));
        assert!(matches!(
            c.fetch_batch(&tp, 0, 1),
            Err(MessagingError::PartitionUnavailable(_))
        ));
    }

    #[test]
    fn restarted_broker_truncates_divergence_and_rejoins() {
        let (c, _) = cluster(2);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(2))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        for i in 0..4 {
            c.produce_to(&tp, None, b(&format!("a{i}")), AckLevel::All)
                .unwrap();
        }
        // Leader-only writes, then the leader dies: divergence.
        for i in 0..3 {
            c.produce_to(&tp, None, b(&format!("lost{i}")), AckLevel::Leader)
                .unwrap();
        }
        let old = c.leader(&tp).unwrap().unwrap();
        c.kill_broker(old).unwrap();
        assert_eq!(c.log_end_offset(&tp).unwrap(), 4);
        // New leader takes writes.
        for i in 0..2 {
            c.produce_to(&tp, None, b(&format!("new{i}")), AckLevel::All)
                .unwrap();
        }
        // Old leader comes back: must truncate its 3 divergent records.
        c.restart_broker(old).unwrap();
        c.replicate_tick().unwrap();
        assert!(c.isr(&tp).unwrap().contains(&old), "rejoined ISR");
        let msgs = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(msgs.len(), 6);
        assert!(msgs.iter().all(|m| !m.value.starts_with(b"lost")));
    }

    #[test]
    fn coord_tracks_broker_liveness() {
        let (c, _) = cluster(2);
        assert!(c.coord().exists("/liquid/brokers/0", None).unwrap());
        c.kill_broker(0).unwrap();
        assert!(!c.coord().exists("/liquid/brokers/0", None).unwrap());
        c.restart_broker(0).unwrap();
        assert!(c.coord().exists("/liquid/brokers/0", None).unwrap());
    }

    #[test]
    fn coord_publishes_partition_state() {
        let (c, _) = cluster(2);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(2))
            .unwrap();
        let (data, _) = c.coord().get_data("/liquid/topics/t/0").unwrap();
        let s = String::from_utf8(data).unwrap();
        assert!(s.contains('|'), "state format leader|isr: {s}");
    }

    #[test]
    fn preferred_leader_restored_after_failover() {
        let (c, _) = cluster(3);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(3))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        for i in 0..5 {
            c.produce_to(&tp, None, b(&format!("m{i}")), AckLevel::All)
                .unwrap();
        }
        let preferred = c.leader(&tp).unwrap().unwrap();
        c.kill_broker(preferred).unwrap();
        let interim = c.leader(&tp).unwrap().unwrap();
        assert_ne!(interim, preferred);
        // Preferred broker returns, catches up, and a rebalance pass
        // moves leadership back.
        c.restart_broker(preferred).unwrap();
        c.replicate_tick().unwrap();
        assert_eq!(c.rebalance_leadership().unwrap(), 1);
        assert_eq!(c.leader(&tp).unwrap(), Some(preferred));
        // Idempotent: second pass moves nothing.
        assert_eq!(c.rebalance_leadership().unwrap(), 0);
        // Data intact.
        assert_eq!(
            c.fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .len(),
            5
        );
    }

    #[test]
    fn rebalance_waits_for_catch_up() {
        let (c, _) = cluster(2);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(2))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        c.produce_to(&tp, None, b("a"), AckLevel::All).unwrap();
        let preferred = c.leader(&tp).unwrap().unwrap();
        c.kill_broker(preferred).unwrap();
        // New writes the preferred replica does not have yet.
        c.produce_to(&tp, None, b("b"), AckLevel::Leader).unwrap();
        c.restart_broker(preferred).unwrap();
        // Not caught up: leadership must NOT move.
        assert_eq!(c.rebalance_leadership().unwrap(), 0);
        c.replicate_tick().unwrap();
        assert_eq!(c.rebalance_leadership().unwrap(), 1);
    }

    #[test]
    fn rewind_by_timestamp() {
        let (c, clock) = cluster(1);
        c.create_topic("t", TopicConfig::default()).unwrap();
        let tp = TopicPartition::new("t", 0);
        for i in 0..10 {
            clock.set(i * 1000);
            c.produce_to(&tp, None, b(&format!("m{i}")), AckLevel::Leader)
                .unwrap();
        }
        assert_eq!(c.offset_for_timestamp(&tp, 5_000).unwrap(), Some(5));
        assert_eq!(c.offset_for_timestamp(&tp, 0).unwrap(), Some(0));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn snapshot_tracks_in_and_out() {
        let (c, _) = cluster(1);
        c.create_topic("t", TopicConfig::default()).unwrap();
        let tp = TopicPartition::new("t", 0);
        c.produce_to(&tp, None, b("12345"), AckLevel::Leader)
            .unwrap();
        c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        let s = c.snapshot();
        assert_eq!(s.counter("cluster.messages_in"), 1);
        assert_eq!(s.counter("cluster.bytes_in"), 5);
        assert_eq!(s.counter("cluster.messages_out"), 2);
        assert_eq!(s.counter("cluster.bytes_out"), 10);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn snapshot_exposes_partition_gauges() {
        let (c, _) = cluster(1);
        c.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        for i in 0..3 {
            c.produce_to(&tp, None, b(&format!("m{i}")), AckLevel::Leader)
                .unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.gauge("partition.high_watermark{tp=t-0}"), Some(3));
        assert_eq!(s.gauge("partition.log_end{tp=t-0}"), Some(3));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn produce_spans_propagate_to_fetch() {
        let (c, _) = cluster(1);
        c.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        c.produce_to(&tp, None, b("x"), AckLevel::Leader).unwrap();
        c.produce_to(&tp, None, b("y"), AckLevel::Leader).unwrap();
        let msgs = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(msgs.len(), 2);
        assert_ne!(msgs[0].span, 0, "fetched message carries its span");
        assert_ne!(msgs[1].span, 0);
        assert_ne!(msgs[0].span, msgs[1].span, "one span per produce");
        // The tracer saw the produce and the fetch under the same span.
        let events = c.obs().tracer().tail(16);
        let kinds_for_first: Vec<&str> = events
            .iter()
            .filter(|e| e.span == msgs[0].span)
            .map(|e| e.kind)
            .collect();
        assert!(kinds_for_first.contains(&"produce"), "{kinds_for_first:?}");
        assert!(kinds_for_first.contains(&"fetch"), "{kinds_for_first:?}");
    }

    #[test]
    fn cluster_config_builder_validates() {
        assert!(matches!(
            ClusterConfig::builder().brokers(0).build(),
            Err(MessagingError::ZeroBrokers)
        ));
        assert!(matches!(
            ClusterConfig::builder().brokers(2).replication(3).build(),
            Err(MessagingError::ReplicationOutOfRange {
                replication: 3,
                brokers: 2
            })
        ));
        let cfg = ClusterConfig::builder()
            .brokers(3)
            .replication(2)
            .replica_lag_max(5)
            .session_timeout_ms(1_000)
            .build()
            .unwrap();
        assert_eq!(cfg.brokers, 3);
        assert_eq!(cfg.default_replication, 2);
        assert_eq!(cfg.replica_lag_max, 5);
    }

    #[test]
    fn topic_config_builder_validates_against_cluster() {
        let cluster_cfg = ClusterConfig::builder().brokers(2).build().unwrap();
        assert!(matches!(
            TopicConfig::builder().partitions(0).build(),
            Err(MessagingError::ZeroPartitions)
        ));
        assert!(matches!(
            TopicConfig::builder()
                .partitions(1)
                .replication(3)
                .build_for(&cluster_cfg),
            Err(MessagingError::ReplicationOutOfRange { .. })
        ));
        let tc = TopicConfig::builder()
            .partitions(4)
            .replication(2)
            .build_for(&cluster_cfg)
            .unwrap();
        assert_eq!((tc.partitions, tc.replication), (4, 2));
    }

    #[test]
    fn fetch_beyond_log_end_is_error() {
        let (c, _) = cluster(1);
        c.create_topic("t", TopicConfig::default()).unwrap();
        let tp = TopicPartition::new("t", 0);
        c.produce_to(&tp, None, b("x"), AckLevel::Leader).unwrap();
        assert!(c.fetch_batch(&tp, 99, 1).is_err());
        assert!(c.fetch_batch(&tp, 1, 1).unwrap().into_messages().is_empty());
    }

    #[test]
    fn compacted_topic_dedupes() {
        let (c, _) = cluster(1);
        c.create_topic(
            "changelog",
            TopicConfig::with_partitions(1)
                .compacted()
                .segment_bytes(512),
        )
        .unwrap();
        let tp = TopicPartition::new("changelog", 0);
        for i in 0..200 {
            c.produce_to(
                &tp,
                Some(b(&format!("k{}", i % 5))),
                b(&format!("v{i}")),
                AckLevel::Leader,
            )
            .unwrap();
        }
        let stats = c.compact_topic("changelog").unwrap();
        assert!(stats.dedup_ratio() > 0.8, "ratio {}", stats.dedup_ratio());
        // All messages still fetchable from the earliest retained offset.
        let msgs = c
            .fetch_batch(&tp, c.earliest_offset(&tp).unwrap(), u64::MAX)
            .unwrap()
            .into_messages();
        // Last value per key survives.
        assert!(msgs.iter().any(|m| m.value == b("v199")));
    }

    #[test]
    fn retention_applies_across_cluster() {
        let (c, clock) = cluster(1);
        c.create_topic(
            "short",
            TopicConfig::with_partitions(1)
                .retention_ms(1_000)
                .segment_bytes(256),
        )
        .unwrap();
        let tp = TopicPartition::new("short", 0);
        for i in 0..50 {
            c.produce_to(&tp, None, b(&format!("old-{i:04}")), AckLevel::Leader)
                .unwrap();
        }
        clock.advance(10_000);
        c.produce_to(&tp, None, b("fresh"), AckLevel::Leader)
            .unwrap();
        let deleted = c.enforce_retention().unwrap();
        assert!(deleted > 0);
        assert!(c.earliest_offset(&tp).unwrap() > 0);
    }

    /// Compat shim: the deprecated record-level `fetch` must keep
    /// decomposing `fetch_batch` byte-for-byte.
    #[test]
    fn deprecated_fetch_decomposes_fetch_batch() {
        let (c, _) = cluster(1);
        c.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        for i in 0..5 {
            c.produce_to(&tp, None, b(&format!("m{i}")), AckLevel::Leader)
                .unwrap();
        }
        #[allow(deprecated)]
        let via_fetch = c.fetch(&tp, 0, u64::MAX).unwrap();
        let via_batch = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(via_fetch.len(), via_batch.len());
        for (a, b) in via_fetch.iter().zip(via_batch.iter()) {
            assert_eq!((a.offset, &a.key, &a.value), (b.offset, &b.key, &b.value));
        }
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn sealed_segment_fetches_hit_the_shared_read_cache() {
        let (c, _) = cluster(1);
        c.create_topic("hot", TopicConfig::with_partitions(1).segment_bytes(256))
            .unwrap();
        let tp = TopicPartition::new("hot", 0);
        for i in 0..40 {
            c.produce_to(&tp, None, b(&format!("payload-{i:05}")), AckLevel::Leader)
                .unwrap();
        }
        let cold = c.fetch_batch(&tp, 0, u64::MAX).unwrap();
        let misses = c.snapshot().counter("log.cache.miss");
        assert!(misses > 0, "cold sweep fills the cache");
        let hot = c.fetch_batch(&tp, 0, u64::MAX).unwrap();
        let snap = c.snapshot();
        assert!(snap.counter("log.cache.hit") > 0, "warm sweep hits");
        assert_eq!(
            snap.counter("log.cache.miss"),
            misses,
            "warm sweep adds no misses"
        );
        // Byte equality between the cold and warm reads.
        assert_eq!(cold.len(), hot.len());
        for (a, b) in cold.records().iter().zip(hot.records().iter()) {
            assert_eq!((a.offset, &a.value), (b.offset, &b.value));
        }
    }

    /// Regression: a committed/consumer offset that falls inside a
    /// segment retention has dropped must not error or over-count —
    /// the fetch resumes at the next live segment's base and the
    /// batch's `end_offset` heals the position across the gap.
    #[test]
    fn fetch_resumes_past_a_dropped_segment() {
        let (c, clock) = cluster(1);
        c.create_topic(
            "short",
            TopicConfig::with_partitions(1)
                .retention_ms(1_000)
                .segment_bytes(256),
        )
        .unwrap();
        let tp = TopicPartition::new("short", 0);
        for i in 0..50 {
            c.produce_to(&tp, None, b(&format!("old-{i:04}")), AckLevel::Leader)
                .unwrap();
        }
        clock.advance(10_000);
        for i in 0..5 {
            c.produce_to(&tp, None, b(&format!("fresh-{i}")), AckLevel::Leader)
                .unwrap();
        }
        assert!(c.enforce_retention().unwrap() > 0);
        let earliest = c.earliest_offset(&tp).unwrap();
        assert!(earliest > 0, "retention retired the head segment");
        // Offset 0 now falls inside a retired segment: the fetch heals
        // to the first retained offset instead of erroring.
        let batch = c.fetch_batch(&tp, 0, u64::MAX).unwrap();
        assert_eq!(batch.base_offset(), Some(earliest));
        assert_eq!(batch.end_offset(), c.latest_offset(&tp).unwrap());
        // A consumer parked before the boundary heals the same way and
        // reports exact lag (never counting retired offsets).
        let consumer = crate::Consumer::new(&c, "c1");
        consumer
            .assign(tp.clone(), crate::consumer::StartPosition::Offset(0))
            .unwrap();
        #[cfg(not(feature = "obs-off"))]
        {
            let hw = c.latest_offset(&tp).unwrap();
            assert_eq!(consumer.lag(&tp), Some(hw - earliest));
        }
        let batches = consumer.poll_batches().unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].1.records()[0].offset, earliest);
        assert_eq!(
            consumer.position(&tp),
            Some(c.latest_offset(&tp).unwrap()),
            "position healed past the retired range"
        );
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(consumer.lag(&tp), Some(0));
    }

    #[test]
    fn election_skips_isr_members_behind_the_high_watermark() {
        // A broker that was offline while acks=All produces were
        // acknowledged stays in the ISR but lags the high watermark.
        // When the leader then dies, that stale member must not win the
        // election — doing so would clamp the HW and silently truncate
        // acknowledged records (found by the seeded chaos harness).
        let (c, _clock) = cluster(3);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(3))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        for i in 0..5 {
            c.produce_to(&tp, None, b(&format!("m{i}")), AckLevel::All)
                .unwrap();
        }
        let leader = c.leader(&tp).unwrap().unwrap();
        let stale = c.broker_ids().into_iter().find(|&id| id != leader).unwrap();
        c.kill_broker(stale).unwrap();
        // Acked with the stale member offline: HW advances without it.
        for i in 5..10 {
            c.produce_to(&tp, None, b(&format!("m{i}")), AckLevel::All)
                .unwrap();
        }
        // Back online but not caught up (no replication tick yet), and
        // still an ISR member — an eligible-looking but unsafe
        // candidate.
        c.restart_broker(stale).unwrap();
        c.kill_broker(leader).unwrap();
        let new_leader = c.leader(&tp).unwrap().expect("a caught-up replica leads");
        assert_ne!(new_leader, stale, "stale ISR member must not be elected");
        assert_eq!(
            c.fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .len(),
            10,
            "every acknowledged record still committed after failover"
        );
    }

    #[test]
    fn returning_replica_truncates_divergent_suffix_below_the_watermark() {
        // A leader dies holding an unacknowledged record. The new leader
        // then commits a *different* record at that same offset while
        // the dead broker — still an ISR member — is offline, advancing
        // the high watermark past the divergence point. When the old
        // leader returns, both its log end and the watermark sit past
        // the offset where its content disagrees with the new leader's,
        // so no end-based comparison can see the problem: replication
        // must reconcile content and truncate the divergent suffix, or
        // the returning replica keeps the wrong record forever and loses
        // the committed one if it is ever re-elected (found by the
        // seeded chaos harness).
        let (c, _clock) = cluster(3);
        c.create_topic("t", TopicConfig::with_partitions(1).replication(3))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        for i in 0..3 {
            c.produce_to(&tp, None, b(&format!("m{i}")), AckLevel::All)
                .unwrap();
        }
        let old_leader = c.leader(&tp).unwrap().unwrap();
        // Unacknowledged divergent record at offset 3 on the old leader
        // only.
        c.produce_to(&tp, None, b("orphan"), AckLevel::None)
            .unwrap();
        c.kill_broker(old_leader).unwrap();
        let new_leader = c.leader(&tp).unwrap().expect("failover");
        assert_ne!(new_leader, old_leader);
        // The new leader commits different content at offset 3 (and
        // more); acks=All skips the offline ISR member, so the high
        // watermark passes the divergence point without it.
        for i in 0..2 {
            c.produce_to(&tp, None, b(&format!("n{i}")), AckLevel::All)
                .unwrap();
        }
        c.restart_broker(old_leader).unwrap();
        c.replicate_tick().unwrap();
        // Fail back to the old leader: every committed record must
        // survive, including the one at the divergence offset.
        c.kill_broker(new_leader).unwrap();
        c.replicate_tick().unwrap();
        assert_eq!(c.leader(&tp).unwrap(), Some(old_leader));
        let values: Vec<Bytes> = c
            .fetch_batch(&tp, 0, u64::MAX)
            .unwrap()
            .into_messages()
            .into_iter()
            .map(|m| m.value)
            .collect();
        assert_eq!(
            values,
            vec![b("m0"), b("m1"), b("m2"), b("n0"), b("n1")],
            "returning replica must serve the committed history, not its stale suffix"
        );
    }
}
