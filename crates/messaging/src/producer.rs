//! Producers: publish messages to topics with pluggable partitioning.
//!
//! The paper (§3.1): "Producers can choose to which partition to publish
//! data in a round-robin fashion or according to a hash function for
//! load-balancing or semantic routing."

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

use crate::cluster::Cluster;
use crate::config::AckLevel;
use crate::ids::TopicPartition;

/// How a producer maps messages to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Cycle through partitions (load balancing).
    RoundRobin,
    /// Hash the key (semantic routing: same key → same partition).
    /// Keyless messages fall back to round-robin.
    KeyHash,
    /// Always use this partition.
    Manual(u32),
}

/// A handle publishing to one topic.
pub struct Producer {
    cluster: Cluster,
    topic: String,
    partitions: u32,
    partitioner: Partitioner,
    acks: AckLevel,
    rr: AtomicU64,
    /// Idempotent-producer session: `(producer_id, next_sequence)`.
    idempotent: Option<(u64, AtomicU64)>,
    /// Client id for broker-side quota enforcement.
    client_id: Option<String>,
}

impl Producer {
    /// Creates a producer for `topic` with the default partitioner
    /// (key hash for keyed messages, round-robin otherwise — Kafka's
    /// semantics) and `AckLevel::Leader`.
    pub fn new(cluster: &Cluster, topic: &str) -> crate::Result<Self> {
        let partitions = cluster.partition_count(topic)?;
        Ok(Producer {
            cluster: cluster.clone(),
            topic: topic.to_string(),
            partitions,
            partitioner: Partitioner::KeyHash,
            acks: AckLevel::Leader,
            rr: AtomicU64::new(0),
            idempotent: None,
            client_id: None,
        })
    }

    /// Identifies this producer to the brokers for quota accounting
    /// (see [`Cluster::quotas`]). Sends that exceed the client's quota
    /// fail with a throttle error carrying a back-off hint.
    pub fn with_client_id(mut self, client_id: &str) -> Self {
        self.client_id = Some(client_id.to_string());
        self
    }

    /// Enables idempotence: every send carries a producer id and a
    /// sequence number, and brokers drop duplicate sequences — so a
    /// client that *retries* after an ambiguous failure cannot double-
    /// append. (The paper notes exactly-once as ongoing work in §4.3;
    /// this is its producer half.)
    pub fn idempotent(mut self) -> Self {
        let id = self.cluster.register_producer();
        self.idempotent = Some((id, AtomicU64::new(0)));
        self
    }

    /// Re-sends with an explicit sequence (the retry path). With
    /// idempotence enabled, re-sending a sequence already accepted is a
    /// no-op on the broker.
    pub fn send_with_sequence(
        &self,
        key: Option<Bytes>,
        value: Bytes,
        sequence: u64,
    ) -> crate::Result<(u32, u64)> {
        let Some((producer_id, _)) = &self.idempotent else {
            return self.send(key, value);
        };
        let partition = self.pick_partition(key.as_deref());
        let tp = TopicPartition::new(self.topic.clone(), partition);
        let offset = self.cluster.produce_idempotent(
            &tp,
            key,
            value,
            self.acks,
            Some((*producer_id, sequence)),
        )?;
        Ok((partition, offset))
    }

    /// Sets the partitioner.
    pub fn with_partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = p;
        self
    }

    /// Sets the acknowledgement level.
    pub fn with_acks(mut self, acks: AckLevel) -> Self {
        self.acks = acks;
        self
    }

    /// The topic this producer publishes to.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Publishes one message; returns `(partition, offset)`.
    pub fn send(&self, key: Option<Bytes>, value: Bytes) -> crate::Result<(u32, u64)> {
        if let Some(client) = &self.client_id {
            if let crate::quotas::QuotaDecision::Throttle { retry_after_ms } =
                self.cluster.quotas().check(client, value.len() as u64)?
            {
                return Err(crate::MessagingError::Throttled {
                    client: client.clone(),
                    retry_after_ms,
                });
            }
        }
        if let Some((_, next_seq)) = &self.idempotent {
            let seq = next_seq.fetch_add(1, Ordering::Relaxed) + 1;
            return self.send_with_sequence(key, value, seq);
        }
        let partition = self.pick_partition(key.as_deref());
        let tp = TopicPartition::new(self.topic.clone(), partition);
        match self.cluster.produce_to(&tp, key, value, self.acks) {
            Ok(offset) => Ok((partition, offset)),
            Err(e) => {
                if self.acks == AckLevel::None {
                    // Fire-and-forget: losses are silent (paper §4.3).
                    Ok((partition, 0))
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Publishes a keyed message (shorthand).
    pub fn send_keyed(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> crate::Result<(u32, u64)> {
        self.send(Some(key.into()), value.into())
    }

    /// Publishes a keyless message (shorthand).
    pub fn send_value(&self, value: impl Into<Bytes>) -> crate::Result<(u32, u64)> {
        self.send(None, value.into())
    }

    fn pick_partition(&self, key: Option<&[u8]>) -> u32 {
        match self.partitioner {
            Partitioner::Manual(p) => p.min(self.partitions - 1),
            Partitioner::KeyHash => match key {
                Some(k) => (hash_key(k) % self.partitions as u64) as u32,
                None => self.next_rr(),
            },
            Partitioner::RoundRobin => self.next_rr(),
        }
    }

    fn next_rr(&self) -> u32 {
        (self.rr.fetch_add(1, Ordering::Relaxed) % self.partitions as u64) as u32
    }
}

fn hash_key(key: &[u8]) -> u64 {
    // FNV-1a with finalizer — stable across runs so semantic routing is
    // reproducible.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::config::TopicConfig;
    use liquid_sim::clock::SimClock;

    fn setup(partitions: u32) -> Cluster {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic("t", TopicConfig::with_partitions(partitions))
            .unwrap();
        c
    }

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let c = setup(4);
        let p = Producer::new(&c, "t").unwrap();
        let mut counts = [0u32; 4];
        for _ in 0..40 {
            let (part, _) = p.send_value("x").unwrap();
            counts[part as usize] += 1;
        }
        assert_eq!(counts, [10, 10, 10, 10]);
    }

    #[test]
    fn default_partitioner_is_key_hash() {
        let c = setup(4);
        let p = Producer::new(&c, "t").unwrap();
        let (a, _) = p.send_keyed("user-7", "x").unwrap();
        let (b, _) = p.send_keyed("user-7", "y").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn key_hash_is_sticky() {
        let c = setup(4);
        let p = Producer::new(&c, "t")
            .unwrap()
            .with_partitioner(Partitioner::KeyHash);
        let (first, _) = p.send_keyed("user-42", "a").unwrap();
        for _ in 0..10 {
            let (part, _) = p.send_keyed("user-42", "b").unwrap();
            assert_eq!(part, first, "same key must always route the same way");
        }
    }

    #[test]
    fn key_hash_spreads_distinct_keys() {
        let c = setup(8);
        let p = Producer::new(&c, "t")
            .unwrap()
            .with_partitioner(Partitioner::KeyHash);
        let mut used = std::collections::HashSet::new();
        for i in 0..200 {
            let (part, _) = p.send_keyed(format!("user-{i}"), "x").unwrap();
            used.insert(part);
        }
        assert!(used.len() >= 6, "only {} partitions used", used.len());
    }

    #[test]
    fn manual_partitioner_pins() {
        let c = setup(4);
        let p = Producer::new(&c, "t")
            .unwrap()
            .with_partitioner(Partitioner::Manual(2));
        for _ in 0..5 {
            let (part, _) = p.send_value("x").unwrap();
            assert_eq!(part, 2);
        }
    }

    #[test]
    fn manual_partition_clamped_to_range() {
        let c = setup(2);
        let p = Producer::new(&c, "t")
            .unwrap()
            .with_partitioner(Partitioner::Manual(99));
        let (part, _) = p.send_value("x").unwrap();
        assert_eq!(part, 1);
    }

    #[test]
    fn offsets_increase_per_partition() {
        let c = setup(1);
        let p = Producer::new(&c, "t").unwrap();
        let (_, o1) = p.send_value("a").unwrap();
        let (_, o2) = p.send_value("b").unwrap();
        assert_eq!((o1, o2), (0, 1));
    }

    #[test]
    fn unknown_topic_fails_fast() {
        let c = setup(1);
        assert!(Producer::new(&c, "nope").is_err());
    }

    #[test]
    fn idempotent_producer_suppresses_duplicate_retries() {
        let c = setup(1);
        let p = Producer::new(&c, "t").unwrap().idempotent();
        p.send_value("m0").unwrap();
        let (_, off1) = p.send_value("m1").unwrap();
        // A retry of the last send (same sequence) must not re-append.
        let (_, off_dup) = p.send_with_sequence(None, b("m1"), 2).unwrap();
        assert_eq!(off_dup, off1);
        let tp = TopicPartition::new("t", 0);
        let msgs = c.fetch(&tp, 0, u64::MAX).unwrap();
        assert_eq!(msgs.len(), 2, "duplicate suppressed");
        // A genuinely new send still lands.
        p.send_value("m2").unwrap();
        assert_eq!(c.fetch(&tp, 0, u64::MAX).unwrap().len(), 3);
    }

    #[test]
    fn distinct_idempotent_producers_do_not_interfere() {
        let c = setup(1);
        let p1 = Producer::new(&c, "t").unwrap().idempotent();
        let p2 = Producer::new(&c, "t").unwrap().idempotent();
        p1.send_value("a").unwrap();
        p2.send_value("b").unwrap();
        p1.send_value("c").unwrap();
        let tp = TopicPartition::new("t", 0);
        assert_eq!(c.fetch(&tp, 0, u64::MAX).unwrap().len(), 3);
    }

    #[test]
    fn non_idempotent_retry_duplicates() {
        // The at-least-once contrast: without idempotence, a retry
        // appends again (§4.3's default behaviour).
        let c = setup(1);
        let p = Producer::new(&c, "t").unwrap();
        p.send_value("m").unwrap();
        p.send_value("m").unwrap();
        let tp = TopicPartition::new("t", 0);
        assert_eq!(c.fetch(&tp, 0, u64::MAX).unwrap().len(), 2);
    }

    #[test]
    fn quota_throttles_noisy_client() {
        let c = setup(1);
        c.quotas().set_limit("noisy-app", 100);
        let p = Producer::new(&c, "t").unwrap().with_client_id("noisy-app");
        // First sends fit the 100-byte window...
        p.send_value("0123456789").unwrap();
        // ...then the flood hits the quota.
        let mut throttled = false;
        for _ in 0..20 {
            if matches!(
                p.send_value("0123456789012345678901234567890123456789"),
                Err(crate::MessagingError::Throttled { .. })
            ) {
                throttled = true;
                break;
            }
        }
        assert!(throttled, "noisy client must be throttled");
        assert!(c.quotas().throttle_count("noisy-app") >= 1);
        // Unidentified clients are unaffected.
        let free = Producer::new(&c, "t").unwrap();
        for _ in 0..20 {
            free.send_value("0123456789012345678901234567890123456789")
                .unwrap();
        }
    }

    #[test]
    fn keyless_with_keyhash_falls_back_to_round_robin() {
        let c = setup(2);
        let p = Producer::new(&c, "t")
            .unwrap()
            .with_partitioner(Partitioner::KeyHash);
        let parts: Vec<u32> = (0..4).map(|_| p.send(None, b("x")).unwrap().0).collect();
        assert_eq!(parts, vec![0, 1, 0, 1]);
    }
}
