//! Producers: publish messages to topics with pluggable partitioning.
//!
//! The paper (§3.1): "Producers can choose to which partition to publish
//! data in a round-robin fashion or according to a hash function for
//! load-balancing or semantic routing."

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use liquid_log::BatchBuilder;
use liquid_sim::clock::Ts;
use liquid_sim::lockdep::Mutex;

use crate::cluster::Cluster;
use crate::config::AckLevel;
use crate::ids::TopicPartition;

/// How a producer maps messages to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Cycle through partitions (load balancing).
    RoundRobin,
    /// Hash the key (semantic routing: same key → same partition).
    /// Keyless messages fall back to round-robin.
    KeyHash,
    /// Always use this partition.
    Manual(u32),
}

/// Thresholds for producer-side batch accumulation (§3.1 throughput:
/// amortizing one group commit over many records is what makes the
/// batched hot path fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush a partition's batch once it holds this many records.
    pub max_records: usize,
    /// Flush once the accumulated payload reaches this many bytes.
    pub max_bytes: usize,
    /// Flush once the batch's first record has waited this long (ms of
    /// the cluster's clock). `0` disables the time bound.
    pub linger_ms: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_records: 256,
            max_bytes: 1 << 20,
            linger_ms: 5,
        }
    }
}

/// One partition's in-flight accumulation: the arena builder (the
/// single copy of every payload) plus when it was opened, for linger.
struct PendingBatch {
    builder: BatchBuilder,
    opened_at: Ts,
}

/// A handle publishing to one topic.
pub struct Producer {
    cluster: Cluster,
    topic: String,
    partitions: u32,
    partitioner: Partitioner,
    acks: AckLevel,
    rr: AtomicU64,
    /// Idempotent-producer session: `(producer_id, next_sequence)`.
    idempotent: Option<(u64, AtomicU64)>,
    /// Client id for broker-side quota enforcement.
    client_id: Option<String>,
    /// Per-partition accumulation, when batching is enabled. The lock
    /// is never held across a cluster call: flushes take the builder
    /// out, release, then group-commit.
    batching: Option<(BatchConfig, Mutex<BTreeMap<u32, PendingBatch>>)>,
}

impl Producer {
    /// Creates a producer for `topic` with the default partitioner
    /// (key hash for keyed messages, round-robin otherwise — Kafka's
    /// semantics) and `AckLevel::Leader`.
    pub fn new(cluster: &Cluster, topic: &str) -> crate::Result<Self> {
        let partitions = cluster.partition_count(topic)?;
        Ok(Producer {
            cluster: cluster.clone(),
            topic: topic.to_string(),
            partitions,
            partitioner: Partitioner::KeyHash,
            acks: AckLevel::Leader,
            rr: AtomicU64::new(0),
            idempotent: None,
            client_id: None,
            batching: None,
        })
    }

    /// Enables producer-side batching: [`buffer`](Self::buffer)
    /// accumulates records per partition and group-commits a batch when
    /// `config`'s size, byte, or linger threshold trips (or on
    /// [`flush`](Self::flush)).
    pub fn with_batching(mut self, config: BatchConfig) -> Self {
        self.batching = Some((config, Mutex::new("producer.batches", BTreeMap::new())));
        self
    }

    /// Identifies this producer to the brokers for quota accounting
    /// (see [`Cluster::quotas`]). Sends that exceed the client's quota
    /// fail with a throttle error carrying a back-off hint.
    pub fn with_client_id(mut self, client_id: &str) -> Self {
        self.client_id = Some(client_id.to_string());
        self
    }

    /// Enables idempotence: every send carries a producer id and a
    /// sequence number, and brokers drop duplicate sequences — so a
    /// client that *retries* after an ambiguous failure cannot double-
    /// append. (The paper notes exactly-once as ongoing work in §4.3;
    /// this is its producer half.)
    pub fn idempotent(mut self) -> Self {
        let id = self.cluster.register_producer();
        self.idempotent = Some((id, AtomicU64::new(0)));
        self
    }

    /// Re-sends with an explicit sequence (the retry path). With
    /// idempotence enabled, re-sending a sequence already accepted is a
    /// no-op on the broker.
    pub fn send_with_sequence(
        &self,
        key: Option<Bytes>,
        value: Bytes,
        sequence: u64,
    ) -> crate::Result<(u32, u64)> {
        let Some((producer_id, _)) = &self.idempotent else {
            return self.send(key, value);
        };
        let partition = self.pick_partition(key.as_deref());
        let tp = TopicPartition::new(self.topic.clone(), partition);
        let offset = self.cluster.produce_idempotent(
            &tp,
            key,
            value,
            self.acks,
            Some((*producer_id, sequence)),
        )?;
        Ok((partition, offset))
    }

    /// Sets the partitioner.
    pub fn with_partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = p;
        self
    }

    /// Sets the acknowledgement level.
    pub fn with_acks(mut self, acks: AckLevel) -> Self {
        self.acks = acks;
        self
    }

    /// The topic this producer publishes to.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Publishes one message; returns `(partition, offset)`.
    pub fn send(&self, key: Option<Bytes>, value: Bytes) -> crate::Result<(u32, u64)> {
        if let Some(client) = &self.client_id {
            if let crate::quotas::QuotaDecision::Throttle { retry_after_ms } =
                self.cluster.quotas().check(client, value.len() as u64)?
            {
                return Err(crate::MessagingError::Throttled {
                    client: client.clone(),
                    retry_after_ms,
                });
            }
        }
        if let Some((_, next_seq)) = &self.idempotent {
            let seq = next_seq.fetch_add(1, Ordering::Relaxed) + 1;
            return self.send_with_sequence(key, value, seq);
        }
        let partition = self.pick_partition(key.as_deref());
        let tp = TopicPartition::new(self.topic.clone(), partition);
        match self.cluster.produce_to(&tp, key, value, self.acks) {
            Ok(offset) => Ok((partition, offset)),
            Err(e) => {
                if self.acks == AckLevel::None {
                    // Fire-and-forget: losses are silent (paper §4.3).
                    Ok((partition, 0))
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Publishes a keyed message (shorthand).
    pub fn send_keyed(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> crate::Result<(u32, u64)> {
        self.send(Some(key.into()), value.into())
    }

    /// Publishes a keyless message (shorthand).
    pub fn send_value(&self, value: impl Into<Bytes>) -> crate::Result<(u32, u64)> {
        self.send(None, value.into())
    }

    /// Accumulates one record into its partition's pending batch
    /// (requires [`with_batching`](Self::with_batching)). The payload
    /// is copied exactly once — into the batch arena; every later hop
    /// shares it. When this push trips a threshold the partition's
    /// batch is group-committed and `Ok(Some((partition, base_offset)))`
    /// is returned; otherwise `Ok(None)` and the record is in flight
    /// until the next trip or [`flush`](Self::flush).
    pub fn buffer(&self, key: Option<Bytes>, value: Bytes) -> crate::Result<Option<(u32, u64)>> {
        let Some((config, pending)) = &self.batching else {
            // Unbatched producers degrade to an immediate send.
            return self.send(key, value).map(|(p, o)| Some((p, o)));
        };
        if let Some(client) = &self.client_id {
            if let crate::quotas::QuotaDecision::Throttle { retry_after_ms } =
                self.cluster.quotas().check(client, value.len() as u64)?
            {
                return Err(crate::MessagingError::Throttled {
                    client: client.clone(),
                    retry_after_ms,
                });
            }
        }
        let partition = self.pick_partition(key.as_deref());
        let now = self.cluster.clock().now();
        let ripe = {
            let mut map = pending.lock();
            let slot = map.entry(partition).or_insert_with(|| PendingBatch {
                builder: BatchBuilder::default(),
                opened_at: now,
            });
            slot.builder.push(key.as_deref(), &value, now);
            let trip = slot.builder.len() >= config.max_records
                || slot.builder.arena_bytes() >= config.max_bytes
                || (config.linger_ms > 0 && now.saturating_sub(slot.opened_at) >= config.linger_ms);
            // Take the ripe batch out *under* the lock, commit after
            // releasing it — the accumulator lock never nests with the
            // cluster's.
            if trip {
                map.remove(&partition)
            } else {
                None
            }
        };
        match ripe {
            Some(p) => Ok(Some((partition, self.commit_batch(partition, p.builder)?))),
            None => Ok(None),
        }
    }

    /// Buffers a keyed record (shorthand for [`buffer`](Self::buffer)).
    pub fn buffer_keyed(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> crate::Result<Option<(u32, u64)>> {
        self.buffer(Some(key.into()), value.into())
    }

    /// Buffers a keyless record (shorthand for [`buffer`](Self::buffer)).
    pub fn buffer_value(&self, value: impl Into<Bytes>) -> crate::Result<Option<(u32, u64)>> {
        self.buffer(None, value.into())
    }

    /// Group-commits every pending batch (partition order, so injector
    /// tick order is deterministic). Returns `(partition, base_offset,
    /// record_count)` per flushed batch.
    pub fn flush(&self) -> crate::Result<Vec<(u32, u64, u64)>> {
        let Some((_, pending)) = &self.batching else {
            return Ok(Vec::new());
        };
        let drained = std::mem::take(&mut *pending.lock());
        let mut out = Vec::with_capacity(drained.len());
        for (partition, p) in drained {
            let count = p.builder.len() as u64;
            let base = self.commit_batch(partition, p.builder)?;
            out.push((partition, base, count));
        }
        Ok(out)
    }

    /// Records buffered but not yet committed, across all partitions.
    pub fn pending_records(&self) -> usize {
        self.batching
            .as_ref()
            .map(|(_, pending)| pending.lock().values().map(|p| p.builder.len()).sum())
            .unwrap_or(0)
    }

    /// Commits one built batch to its partition; consumes one idempotent
    /// sequence for the whole batch (a retry re-appends all or nothing).
    fn commit_batch(&self, partition: u32, builder: BatchBuilder) -> crate::Result<u64> {
        let tp = TopicPartition::new(self.topic.clone(), partition);
        let dedup = self
            .idempotent
            .as_ref()
            .map(|(id, next_seq)| (*id, next_seq.fetch_add(1, Ordering::Relaxed) + 1));
        match self
            .cluster
            .produce_batch(&tp, builder.build(), self.acks, dedup)
        {
            Ok(base) => Ok(base),
            Err(e) => {
                if self.acks == AckLevel::None {
                    // Fire-and-forget: losses are silent (paper §4.3).
                    Ok(0)
                } else {
                    Err(e)
                }
            }
        }
    }

    fn pick_partition(&self, key: Option<&[u8]>) -> u32 {
        match self.partitioner {
            Partitioner::Manual(p) => p.min(self.partitions - 1),
            Partitioner::KeyHash => match key {
                Some(k) => (hash_key(k) % self.partitions as u64) as u32,
                None => self.next_rr(),
            },
            Partitioner::RoundRobin => self.next_rr(),
        }
    }

    fn next_rr(&self) -> u32 {
        (self.rr.fetch_add(1, Ordering::Relaxed) % self.partitions as u64) as u32
    }
}

fn hash_key(key: &[u8]) -> u64 {
    // FNV-1a with finalizer — stable across runs so semantic routing is
    // reproducible.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::config::TopicConfig;
    use liquid_sim::clock::SimClock;

    fn setup(partitions: u32) -> Cluster {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic("t", TopicConfig::with_partitions(partitions))
            .unwrap();
        c
    }

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let c = setup(4);
        let p = Producer::new(&c, "t").unwrap();
        let mut counts = [0u32; 4];
        for _ in 0..40 {
            let (part, _) = p.send_value("x").unwrap();
            counts[part as usize] += 1;
        }
        assert_eq!(counts, [10, 10, 10, 10]);
    }

    #[test]
    fn default_partitioner_is_key_hash() {
        let c = setup(4);
        let p = Producer::new(&c, "t").unwrap();
        let (a, _) = p.send_keyed("user-7", "x").unwrap();
        let (b, _) = p.send_keyed("user-7", "y").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn key_hash_is_sticky() {
        let c = setup(4);
        let p = Producer::new(&c, "t")
            .unwrap()
            .with_partitioner(Partitioner::KeyHash);
        let (first, _) = p.send_keyed("user-42", "a").unwrap();
        for _ in 0..10 {
            let (part, _) = p.send_keyed("user-42", "b").unwrap();
            assert_eq!(part, first, "same key must always route the same way");
        }
    }

    #[test]
    fn key_hash_spreads_distinct_keys() {
        let c = setup(8);
        let p = Producer::new(&c, "t")
            .unwrap()
            .with_partitioner(Partitioner::KeyHash);
        let mut used = std::collections::HashSet::new();
        for i in 0..200 {
            let (part, _) = p.send_keyed(format!("user-{i}"), "x").unwrap();
            used.insert(part);
        }
        assert!(used.len() >= 6, "only {} partitions used", used.len());
    }

    #[test]
    fn manual_partitioner_pins() {
        let c = setup(4);
        let p = Producer::new(&c, "t")
            .unwrap()
            .with_partitioner(Partitioner::Manual(2));
        for _ in 0..5 {
            let (part, _) = p.send_value("x").unwrap();
            assert_eq!(part, 2);
        }
    }

    #[test]
    fn manual_partition_clamped_to_range() {
        let c = setup(2);
        let p = Producer::new(&c, "t")
            .unwrap()
            .with_partitioner(Partitioner::Manual(99));
        let (part, _) = p.send_value("x").unwrap();
        assert_eq!(part, 1);
    }

    #[test]
    fn offsets_increase_per_partition() {
        let c = setup(1);
        let p = Producer::new(&c, "t").unwrap();
        let (_, o1) = p.send_value("a").unwrap();
        let (_, o2) = p.send_value("b").unwrap();
        assert_eq!((o1, o2), (0, 1));
    }

    #[test]
    fn unknown_topic_fails_fast() {
        let c = setup(1);
        assert!(Producer::new(&c, "nope").is_err());
    }

    #[test]
    fn idempotent_producer_suppresses_duplicate_retries() {
        let c = setup(1);
        let p = Producer::new(&c, "t").unwrap().idempotent();
        p.send_value("m0").unwrap();
        let (_, off1) = p.send_value("m1").unwrap();
        // A retry of the last send (same sequence) must not re-append.
        let (_, off_dup) = p.send_with_sequence(None, b("m1"), 2).unwrap();
        assert_eq!(off_dup, off1);
        let tp = TopicPartition::new("t", 0);
        let msgs = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(msgs.len(), 2, "duplicate suppressed");
        // A genuinely new send still lands.
        p.send_value("m2").unwrap();
        assert_eq!(
            c.fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .len(),
            3
        );
    }

    #[test]
    fn distinct_idempotent_producers_do_not_interfere() {
        let c = setup(1);
        let p1 = Producer::new(&c, "t").unwrap().idempotent();
        let p2 = Producer::new(&c, "t").unwrap().idempotent();
        p1.send_value("a").unwrap();
        p2.send_value("b").unwrap();
        p1.send_value("c").unwrap();
        let tp = TopicPartition::new("t", 0);
        assert_eq!(
            c.fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .len(),
            3
        );
    }

    #[test]
    fn non_idempotent_retry_duplicates() {
        // The at-least-once contrast: without idempotence, a retry
        // appends again (§4.3's default behaviour).
        let c = setup(1);
        let p = Producer::new(&c, "t").unwrap();
        p.send_value("m").unwrap();
        p.send_value("m").unwrap();
        let tp = TopicPartition::new("t", 0);
        assert_eq!(
            c.fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .len(),
            2
        );
    }

    #[test]
    fn quota_throttles_noisy_client() {
        let c = setup(1);
        c.quotas().set_limit("noisy-app", 100);
        let p = Producer::new(&c, "t").unwrap().with_client_id("noisy-app");
        // First sends fit the 100-byte window...
        p.send_value("0123456789").unwrap();
        // ...then the flood hits the quota.
        let mut throttled = false;
        for _ in 0..20 {
            if matches!(
                p.send_value("0123456789012345678901234567890123456789"),
                Err(crate::MessagingError::Throttled { .. })
            ) {
                throttled = true;
                break;
            }
        }
        assert!(throttled, "noisy client must be throttled");
        assert!(c.quotas().throttle_count("noisy-app") >= 1);
        // Unidentified clients are unaffected.
        let free = Producer::new(&c, "t").unwrap();
        for _ in 0..20 {
            free.send_value("0123456789012345678901234567890123456789")
                .unwrap();
        }
    }

    #[test]
    fn buffered_batch_flushes_contiguously() {
        let c = setup(1);
        let p = Producer::new(&c, "t").unwrap().with_batching(BatchConfig {
            max_records: 100,
            max_bytes: 1 << 20,
            linger_ms: 0,
        });
        for i in 0..10 {
            assert_eq!(p.buffer_value(format!("m{i}")).unwrap(), None);
        }
        assert_eq!(p.pending_records(), 10);
        let flushed = p.flush().unwrap();
        assert_eq!(flushed, vec![(0, 0, 10)]);
        assert_eq!(p.pending_records(), 0);
        let tp = TopicPartition::new("t", 0);
        let msgs = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(msgs.len(), 10);
        let offsets: Vec<u64> = msgs.iter().map(|m| m.offset).collect();
        assert_eq!(offsets, (0..10).collect::<Vec<u64>>(), "contiguous run");
        assert_eq!(msgs[3].value.as_slice(), b"m3");
    }

    #[test]
    fn record_count_threshold_trips_a_flush() {
        let c = setup(1);
        let p = Producer::new(&c, "t").unwrap().with_batching(BatchConfig {
            max_records: 4,
            max_bytes: 1 << 20,
            linger_ms: 0,
        });
        let mut auto_flushed = None;
        for i in 0..4 {
            auto_flushed = p.buffer_value(format!("m{i}")).unwrap();
        }
        assert_eq!(auto_flushed, Some((0, 0)), "4th record trips the batch");
        assert_eq!(p.pending_records(), 0);
    }

    #[test]
    fn byte_threshold_trips_a_flush() {
        let c = setup(1);
        let p = Producer::new(&c, "t").unwrap().with_batching(BatchConfig {
            max_records: 1000,
            max_bytes: 16,
            linger_ms: 0,
        });
        assert_eq!(p.buffer_value("0123456789").unwrap(), None);
        let trip = p.buffer_value("0123456789").unwrap();
        assert!(trip.is_some(), "20 bytes must trip a 16-byte batch");
    }

    #[test]
    fn linger_trips_on_clock_advance() {
        let clock = SimClock::new(0);
        let c = Cluster::new(ClusterConfig::with_brokers(1), clock.shared());
        c.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        let p = Producer::new(&c, "t").unwrap().with_batching(BatchConfig {
            max_records: 1000,
            max_bytes: 1 << 20,
            linger_ms: 5,
        });
        assert_eq!(p.buffer_value("a").unwrap(), None);
        clock.advance(10);
        let trip = p.buffer_value("b").unwrap();
        assert_eq!(trip, Some((0, 0)), "linger expiry flushes both records");
        let tp = TopicPartition::new("t", 0);
        assert_eq!(
            c.fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .len(),
            2
        );
    }

    #[test]
    fn batches_route_per_partition_by_key() {
        let c = setup(4);
        let p = Producer::new(&c, "t").unwrap().with_batching(BatchConfig {
            max_records: 1000,
            max_bytes: 1 << 20,
            linger_ms: 0,
        });
        for i in 0..40 {
            p.buffer_keyed(format!("user-{i}"), "x").unwrap();
        }
        let flushed = p.flush().unwrap();
        assert!(flushed.len() >= 2, "keys spread over partitions");
        let total: u64 = flushed.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, 40);
        // Partition order is deterministic.
        let parts: Vec<u32> = flushed.iter().map(|(p, _, _)| *p).collect();
        let mut sorted = parts.clone();
        sorted.sort_unstable();
        assert_eq!(parts, sorted);
    }

    #[test]
    fn unbatched_buffer_degrades_to_send() {
        let c = setup(1);
        let p = Producer::new(&c, "t").unwrap();
        assert_eq!(p.buffer_value("x").unwrap(), Some((0, 0)));
        assert!(p.flush().unwrap().is_empty());
    }

    #[test]
    fn idempotent_batches_consume_one_sequence_each() {
        let c = setup(1);
        let p = Producer::new(&c, "t")
            .unwrap()
            .idempotent()
            .with_batching(BatchConfig {
                max_records: 1000,
                max_bytes: 1 << 20,
                linger_ms: 0,
            });
        for i in 0..6 {
            p.buffer_value(format!("m{i}")).unwrap();
        }
        p.flush().unwrap();
        let (_, seq) = p.idempotent.as_ref().unwrap();
        assert_eq!(seq.load(Ordering::Relaxed), 1, "one sequence per batch");
        let tp = TopicPartition::new("t", 0);
        assert_eq!(
            c.fetch_batch(&tp, 0, u64::MAX)
                .unwrap()
                .into_messages()
                .len(),
            6
        );
    }

    #[test]
    fn keyless_with_keyhash_falls_back_to_round_robin() {
        let c = setup(2);
        let p = Producer::new(&c, "t")
            .unwrap()
            .with_partitioner(Partitioner::KeyHash);
        let parts: Vec<u32> = (0..4).map(|_| p.send(None, b("x")).unwrap().0).collect();
        assert_eq!(parts, vec![0, 1, 0, 1]);
    }
}
