//! Identifiers and the message type.

use std::fmt;

use bytes::Bytes;
use liquid_sim::clock::Ts;

/// Identifies one broker in the cluster.
pub type BrokerId = u32;

/// A topic name plus partition number — the unit of ordering, leadership
/// and consumption.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicPartition {
    /// Topic name.
    pub topic: String,
    /// Partition index within the topic.
    pub partition: u32,
}

impl TopicPartition {
    /// Convenience constructor.
    pub fn new(topic: impl Into<String>, partition: u32) -> Self {
        TopicPartition {
            topic: topic.into(),
            partition,
        }
    }
}

impl fmt::Display for TopicPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.topic, self.partition)
    }
}

/// A message as seen by consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Offset within the partition.
    pub offset: u64,
    /// Broker-assigned timestamp (ms).
    pub timestamp: Ts,
    /// Optional key.
    pub key: Option<Bytes>,
    /// Payload.
    pub value: Bytes,
    /// Causal span id minted when the record was produced (0 = none:
    /// the span cache evicted it, or observability is compiled out).
    pub span: u64,
}

impl From<liquid_log::Record> for Message {
    fn from(r: liquid_log::Record) -> Self {
        Message {
            offset: r.offset,
            timestamp: r.timestamp,
            key: r.key,
            value: r.value,
            span: 0,
        }
    }
}

/// A fetched run of committed records delivered as one unit, with the
/// causal span of each record alongside. Payloads stay ref-counted
/// [`Bytes`] slices all the way from the log's page, so decomposing the
/// batch into [`Message`]s bumps reference counts instead of copying.
///
/// The batch also carries the offset bookkeeping a consumer needs to
/// advance exactly: [`end_offset`](Self::end_offset) is the next fetch
/// position (one past the last record, or the *requested* offset when
/// nothing was readable), and [`high_watermark`](Self::high_watermark)
/// is the partition's watermark at fetch time. Advancing by
/// `end_offset` rather than by record count is what keeps consumer lag
/// exact when compaction has punched holes in the offset sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageBatch {
    records: Vec<liquid_log::Record>,
    /// Span id per record (parallel to `records`; 0 = none).
    spans: Vec<u64>,
    end_offset: u64,
    high_watermark: u64,
}

impl MessageBatch {
    /// Assembles a batch. `spans` must parallel `records`.
    pub fn new(
        records: Vec<liquid_log::Record>,
        spans: Vec<u64>,
        end_offset: u64,
        high_watermark: u64,
    ) -> Self {
        debug_assert_eq!(records.len(), spans.len());
        MessageBatch {
            records,
            spans,
            end_offset,
            high_watermark,
        }
    }

    /// An empty batch: the consumer was tailing at `offset`.
    pub fn empty(offset: u64, high_watermark: u64) -> Self {
        MessageBatch {
            records: Vec::new(),
            spans: Vec::new(),
            end_offset: offset,
            high_watermark,
        }
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Offset of the first record, if any.
    pub fn base_offset(&self) -> Option<u64> {
        self.records.first().map(|r| r.offset)
    }

    /// The next fetch position: one past the last record, or the
    /// requested offset when the batch is empty.
    pub fn end_offset(&self) -> u64 {
        self.end_offset
    }

    /// The partition's high watermark observed at fetch time.
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// The raw records, in offset order.
    pub fn records(&self) -> &[liquid_log::Record] {
        &self.records
    }

    /// Causal span of the `i`-th record (0 when unknown).
    pub fn span_at(&self, i: usize) -> u64 {
        self.spans.get(i).copied().unwrap_or(0)
    }

    /// Sum of payload (value) bytes across the batch.
    pub fn payload_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.value.len() as u64).sum()
    }

    /// Decomposes lazily into [`Message`]s: each item is materialized
    /// on demand and its payload shares the batch's buffers.
    pub fn messages(&self) -> impl Iterator<Item = Message> + '_ {
        self.records.iter().enumerate().map(|(i, r)| Message {
            offset: r.offset,
            timestamp: r.timestamp,
            key: r.key.clone(),
            value: r.value.clone(),
            span: self.span_at(i),
        })
    }

    /// Consumes the batch into owned [`Message`]s.
    pub fn into_messages(self) -> Vec<Message> {
        let spans = self.spans;
        self.records
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let span = spans.get(i).copied().unwrap_or(0);
                let mut m = Message::from(r);
                m.span = span;
                m
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let tp = TopicPartition::new("events", 3);
        assert_eq!(tp.to_string(), "events-3");
    }

    #[test]
    fn ordering_by_topic_then_partition() {
        let a = TopicPartition::new("a", 9);
        let b = TopicPartition::new("b", 0);
        assert!(a < b);
        assert!(TopicPartition::new("a", 1) < TopicPartition::new("a", 2));
    }

    #[test]
    fn message_batch_decomposes_lazily_and_zero_copy() {
        let r0 = liquid_log::Record {
            offset: 4,
            timestamp: 1,
            key: None,
            value: Bytes::from_static(b"alpha"),
        };
        let r1 = liquid_log::Record {
            offset: 6, // compaction hole at 5
            timestamp: 2,
            key: Some(Bytes::from_static(b"k")),
            value: Bytes::from_static(b"beta"),
        };
        let backing = r0.value.as_slice().as_ptr();
        let batch = MessageBatch::new(vec![r0, r1], vec![11, 0], 7, 7);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.base_offset(), Some(4));
        assert_eq!(batch.end_offset(), 7, "one past the last record");
        assert_eq!(batch.payload_bytes(), 9);
        let msgs: Vec<Message> = batch.messages().collect();
        assert_eq!(msgs[0].span, 11);
        assert_eq!(msgs[1].span, 0);
        // Decomposition shares the record's buffer, never copies it.
        assert_eq!(msgs[0].value.as_slice().as_ptr(), backing);
        let owned = batch.into_messages();
        assert_eq!(owned.len(), 2);
        assert_eq!(owned[1].offset, 6);
    }

    #[test]
    fn empty_message_batch_keeps_requested_offset() {
        let b = MessageBatch::empty(9, 9);
        assert!(b.is_empty());
        assert_eq!(b.end_offset(), 9);
        assert_eq!(b.base_offset(), None);
        assert_eq!(b.messages().count(), 0);
    }

    #[test]
    fn message_from_record() {
        let r = liquid_log::Record {
            offset: 7,
            timestamp: 99,
            key: Some(Bytes::from_static(b"k")),
            value: Bytes::from_static(b"v"),
        };
        let m: Message = r.into();
        assert_eq!(m.offset, 7);
        assert_eq!(m.key.as_deref(), Some(b"k".as_ref()));
    }
}
