//! Identifiers and the message type.

use std::fmt;

use bytes::Bytes;
use liquid_sim::clock::Ts;

/// Identifies one broker in the cluster.
pub type BrokerId = u32;

/// A topic name plus partition number — the unit of ordering, leadership
/// and consumption.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicPartition {
    /// Topic name.
    pub topic: String,
    /// Partition index within the topic.
    pub partition: u32,
}

impl TopicPartition {
    /// Convenience constructor.
    pub fn new(topic: impl Into<String>, partition: u32) -> Self {
        TopicPartition {
            topic: topic.into(),
            partition,
        }
    }
}

impl fmt::Display for TopicPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.topic, self.partition)
    }
}

/// A message as seen by consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Offset within the partition.
    pub offset: u64,
    /// Broker-assigned timestamp (ms).
    pub timestamp: Ts,
    /// Optional key.
    pub key: Option<Bytes>,
    /// Payload.
    pub value: Bytes,
    /// Causal span id minted when the record was produced (0 = none:
    /// the span cache evicted it, or observability is compiled out).
    pub span: u64,
}

impl From<liquid_log::Record> for Message {
    fn from(r: liquid_log::Record) -> Self {
        Message {
            offset: r.offset,
            timestamp: r.timestamp,
            key: r.key,
            value: r.value,
            span: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let tp = TopicPartition::new("events", 3);
        assert_eq!(tp.to_string(), "events-3");
    }

    #[test]
    fn ordering_by_topic_then_partition() {
        let a = TopicPartition::new("a", 9);
        let b = TopicPartition::new("b", 0);
        assert!(a < b);
        assert!(TopicPartition::new("a", 1) < TopicPartition::new("a", 2));
    }

    #[test]
    fn message_from_record() {
        let r = liquid_log::Record {
            offset: 7,
            timestamp: 99,
            key: Some(Bytes::from_static(b"k")),
            value: Bytes::from_static(b"v"),
        };
        let m: Message = r.into();
        assert_eq!(m.offset, 7);
        assert_eq!(m.key.as_deref(), Some(b"k".as_ref()));
    }
}
