//! Mini distributed file system (the baseline substrate of Figure 1).
//!
//! The paper's argument starts from the legacy MR/DFS integration
//! stack: a GFS/HDFS-style file system storing data in large replicated
//! blocks, offering *coarse-grained* reads and writes. To measure that
//! baseline rather than assert it, this crate implements the substrate:
//!
//! * a **namenode** holding the namespace (path → block list);
//! * **datanodes** holding block replicas, placed round-robin;
//! * whole-file writes and reads (HDFS semantics: no random update);
//! * datanode failure and re-replication;
//! * a **simulated cost model**: every operation is charged namenode
//!   RPC latency plus per-block disk seek/transfer costs from
//!   [`liquid_sim::disk::DiskModel`], so experiment E1 can compare
//!   MR/DFS pipeline latency against Liquid's log-based path in the
//!   same currency (simulated nanoseconds).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use liquid_sim::disk::DiskModel;
use liquid_sim::lockdep::Mutex;

/// Errors from the DFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (files are immutable once written).
    AlreadyExists(String),
    /// All replicas of a block are on dead datanodes.
    BlockLost {
        /// File the block belongs to.
        path: String,
        /// Index of the lost block.
        block: usize,
    },
    /// Unknown datanode.
    UnknownDatanode(u32),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "not found: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            DfsError::BlockLost { path, block } => {
                write!(f, "block {block} of {path} lost (all replicas dead)")
            }
            DfsError::UnknownDatanode(d) => write!(f, "unknown datanode {d}"),
        }
    }
}

impl std::error::Error for DfsError {}

/// Result alias for DFS operations.
pub type Result<T> = std::result::Result<T, DfsError>;

/// DFS configuration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Bytes per block.
    pub block_size: usize,
    /// Replicas per block.
    pub replication: u32,
    /// Number of datanodes.
    pub datanodes: u32,
    /// Simulated namenode RPC latency per operation (ns).
    pub namenode_rpc_ns: u64,
    /// Disk model for block I/O.
    pub disk: DiskModel,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            block_size: 64 * 1024,
            replication: 3,
            datanodes: 3,
            namenode_rpc_ns: 300_000, // ~0.3 ms per metadata RPC
            disk: DiskModel::default(),
        }
    }
}

type BlockId = u64;

struct FileMeta {
    blocks: Vec<BlockId>,
    len: u64,
}

/// Replica locations + data per block.
struct BlockMeta {
    replicas: Vec<u32>,
}

struct State {
    files: HashMap<String, FileMeta>,
    blocks: HashMap<BlockId, BlockMeta>,
    /// Block payloads per datanode.
    datanodes: Vec<HashMap<BlockId, Bytes>>,
    alive: Vec<bool>,
    next_block: BlockId,
    placement_cursor: usize,
}

/// Counters + simulated cost accumulated by the DFS.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DfsStats {
    /// Whole-file writes.
    pub writes: u64,
    /// Whole-file reads.
    pub reads: u64,
    /// Bytes written (before replication).
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Total simulated cost charged (ns).
    pub simulated_ns: u64,
}

/// The file system handle. Cheap to clone.
#[derive(Clone)]
pub struct Dfs {
    config: DfsConfig,
    state: Arc<Mutex<State>>,
    stats: Arc<Mutex<DfsStats>>,
}

impl Dfs {
    /// Creates a DFS with `config.datanodes` empty datanodes.
    pub fn new(config: DfsConfig) -> Self {
        assert!(config.block_size > 0, "block size must be positive");
        assert!(
            config.replication >= 1 && config.replication <= config.datanodes,
            "replication {} out of range 1..={}",
            config.replication,
            config.datanodes
        );
        let state = State {
            files: HashMap::new(),
            blocks: HashMap::new(),
            datanodes: (0..config.datanodes).map(|_| HashMap::new()).collect(),
            alive: vec![true; config.datanodes as usize],
            next_block: 1,
            placement_cursor: 0,
        };
        Dfs {
            config,
            state: Arc::new(Mutex::new("dfs.state", state)),
            stats: Arc::new(Mutex::new("dfs.stats", DfsStats::default())),
        }
    }

    /// Writes an immutable file; charges namenode RPC + per-block
    /// sequential writes on every replica. Returns the simulated cost.
    pub fn write(&self, path: &str, data: &[u8]) -> Result<u64> {
        let mut st = self.state.lock();
        if st.files.contains_key(path) {
            return Err(DfsError::AlreadyExists(path.to_string()));
        }
        let mut cost = self.config.namenode_rpc_ns;
        let mut blocks = Vec::new();
        for chunk in data.chunks(self.config.block_size.max(1)) {
            let id = st.next_block;
            st.next_block += 1;
            let mut replicas = Vec::new();
            let n = st.datanodes.len();
            let mut placed = 0;
            let mut probe = 0;
            while placed < self.config.replication as usize && probe < n {
                let dn = (st.placement_cursor + probe) % n;
                probe += 1;
                if !st.alive[dn] {
                    continue;
                }
                st.datanodes[dn].insert(id, Bytes::copy_from_slice(chunk));
                replicas.push(dn as u32);
                placed += 1;
                cost += self.config.disk.sequential_read_ns(chunk.len() as u64);
            }
            st.placement_cursor = (st.placement_cursor + 1) % n;
            st.blocks.insert(id, BlockMeta { replicas });
            blocks.push(id);
        }
        st.files.insert(
            path.to_string(),
            FileMeta {
                blocks,
                len: data.len() as u64,
            },
        );
        let mut stats = self.stats.lock();
        stats.writes += 1;
        stats.bytes_written += data.len() as u64;
        stats.simulated_ns += cost;
        Ok(cost)
    }

    /// Reads a whole file; charges namenode RPC + per-block random read
    /// (first block) and sequential reads (rest). Returns data and cost.
    pub fn read(&self, path: &str) -> Result<(Bytes, u64)> {
        let st = self.state.lock();
        let meta = st
            .files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        let mut cost = self.config.namenode_rpc_ns;
        let mut out = Vec::with_capacity(meta.len as usize);
        for (i, block) in meta.blocks.iter().enumerate() {
            let bm = st
                .blocks
                .get(block)
                .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
            let dn =
                bm.replicas
                    .iter()
                    .find(|&&d| st.alive[d as usize])
                    .ok_or(DfsError::BlockLost {
                        path: path.to_string(),
                        block: i,
                    })?;
            let data = st.datanodes[*dn as usize]
                .get(block)
                .ok_or(DfsError::BlockLost {
                    path: path.to_string(),
                    block: i,
                })?;
            cost += if i == 0 {
                self.config.disk.random_read_ns(data.len() as u64)
            } else {
                self.config.disk.sequential_read_ns(data.len() as u64)
            };
            out.extend_from_slice(data);
        }
        let len = out.len() as u64;
        drop(st);
        let mut stats = self.stats.lock();
        stats.reads += 1;
        stats.bytes_read += len;
        stats.simulated_ns += cost;
        Ok((Bytes::from(out), cost))
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.state.lock().files.contains_key(path)
    }

    /// File length.
    pub fn len(&self, path: &str) -> Result<u64> {
        self.state
            .lock()
            .files
            .get(path)
            .map(|f| f.len)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let st = self.state.lock();
        let mut v: Vec<String> = st
            .files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Deletes a file (blocks are garbage collected immediately).
    pub fn delete(&self, path: &str) -> Result<()> {
        let mut st = self.state.lock();
        let meta = st
            .files
            .remove(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        for block in meta.blocks {
            if let Some(bm) = st.blocks.remove(&block) {
                for dn in bm.replicas {
                    st.datanodes[dn as usize].remove(&block);
                }
            }
        }
        Ok(())
    }

    /// Marks a datanode dead; its replicas become unavailable.
    pub fn kill_datanode(&self, dn: u32) -> Result<()> {
        let mut st = self.state.lock();
        let slot = st
            .alive
            .get_mut(dn as usize)
            .ok_or(DfsError::UnknownDatanode(dn))?;
        *slot = false;
        Ok(())
    }

    /// Revives a datanode (its old replicas are still on disk).
    pub fn restart_datanode(&self, dn: u32) -> Result<()> {
        let mut st = self.state.lock();
        let slot = st
            .alive
            .get_mut(dn as usize)
            .ok_or(DfsError::UnknownDatanode(dn))?;
        *slot = true;
        Ok(())
    }

    /// Re-replicates under-replicated blocks onto live datanodes;
    /// returns how many new replicas were created.
    pub fn replicate_missing(&self) -> usize {
        let mut st = self.state.lock();
        let target = self.config.replication as usize;
        let block_ids: Vec<BlockId> = st.blocks.keys().copied().collect();
        let mut created = 0;
        for id in block_ids {
            let live: Vec<u32> = st.blocks[&id]
                .replicas
                .iter()
                .copied()
                .filter(|&d| st.alive[d as usize])
                .collect();
            if live.is_empty() || live.len() >= target {
                continue;
            }
            let data = st.datanodes[live[0] as usize][&id].clone();
            let mut live_count = live.len();
            for dn in 0..st.datanodes.len() {
                if live_count >= target {
                    break;
                }
                if st.alive[dn] && !st.blocks[&id].replicas.contains(&(dn as u32)) {
                    st.datanodes[dn].insert(id, data.clone());
                    st.blocks
                        .get_mut(&id)
                        .expect("exists")
                        .replicas
                        .push(dn as u32);
                    created += 1;
                    live_count += 1;
                }
            }
        }
        created
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DfsStats {
        *self.stats.lock()
    }

    /// The configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig {
            block_size: 16,
            replication: 2,
            datanodes: 3,
            ..DfsConfig::default()
        })
    }

    #[test]
    fn write_read_roundtrip() {
        let d = dfs();
        let data = b"hello distributed file system".repeat(3);
        d.write("/data/f1", &data).unwrap();
        let (back, cost) = d.read("/data/f1").unwrap();
        assert_eq!(back, Bytes::from(data));
        assert!(cost > 0);
    }

    #[test]
    fn files_are_immutable() {
        let d = dfs();
        d.write("/f", b"v1").unwrap();
        assert!(matches!(
            d.write("/f", b"v2"),
            Err(DfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn missing_file_errors() {
        let d = dfs();
        assert!(matches!(d.read("/ghost"), Err(DfsError::NotFound(_))));
        assert!(d.len("/ghost").is_err());
        assert!(d.delete("/ghost").is_err());
    }

    #[test]
    fn list_by_prefix() {
        let d = dfs();
        d.write("/a/1", b"x").unwrap();
        d.write("/a/2", b"x").unwrap();
        d.write("/b/1", b"x").unwrap();
        assert_eq!(d.list("/a/"), vec!["/a/1", "/a/2"]);
        assert_eq!(d.list("/").len(), 3);
    }

    #[test]
    fn delete_frees_blocks() {
        let d = dfs();
        d.write("/f", &[0u8; 64]).unwrap();
        d.delete("/f").unwrap();
        assert!(!d.exists("/f"));
        assert!(d.read("/f").is_err());
    }

    #[test]
    fn survives_one_datanode_failure() {
        let d = dfs();
        d.write("/f", &[7u8; 64]).unwrap();
        d.kill_datanode(0).unwrap();
        let (back, _) = d.read("/f").unwrap();
        assert_eq!(back.len(), 64);
    }

    #[test]
    fn blocks_lost_when_all_replicas_dead() {
        let d = Dfs::new(DfsConfig {
            block_size: 16,
            replication: 1,
            datanodes: 2,
            ..DfsConfig::default()
        });
        d.write("/f", &[1u8; 16]).unwrap();
        d.kill_datanode(0).unwrap();
        d.kill_datanode(1).unwrap();
        assert!(matches!(d.read("/f"), Err(DfsError::BlockLost { .. })));
        d.restart_datanode(0).unwrap();
        d.restart_datanode(1).unwrap();
        assert!(d.read("/f").is_ok(), "replicas return with the node");
    }

    #[test]
    fn rereplication_restores_redundancy() {
        let d = dfs();
        d.write("/f", &[2u8; 32]).unwrap();
        d.kill_datanode(0).unwrap();
        let created = d.replicate_missing();
        // Any block that had a replica on node 0 gets a fresh copy.
        d.kill_datanode(1).unwrap();
        assert!(d.read("/f").is_ok(), "created {created} new replicas");
    }

    #[test]
    fn stats_accumulate_costs() {
        let d = dfs();
        d.write("/f", &[0u8; 100]).unwrap();
        d.read("/f").unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 100);
        assert!(s.simulated_ns > 2 * d.config().namenode_rpc_ns);
    }

    #[test]
    fn coarse_grained_reads_cost_more_than_fine() {
        // The §2.1 claim in miniature: reading a whole file to get one
        // record costs the whole file's transfer.
        let d = dfs();
        let big = vec![0u8; 64 * 1024];
        d.write("/big", &big).unwrap();
        let (_, cost_big) = d.read("/big").unwrap();
        let d2 = dfs();
        d2.write("/small", &[0u8; 64]).unwrap();
        let (_, cost_small) = d2.read("/small").unwrap();
        assert!(cost_big > cost_small);
    }
}
