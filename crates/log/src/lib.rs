//! Segmented append-only commit log (paper §3.1, §4.1).
//!
//! Each topic-partition in Liquid's messaging layer is one of these logs:
//! an ordered, immutable sequence of records identified by a dense
//! `u64` **offset**. The implementation mirrors the design the paper
//! attributes to Kafka:
//!
//! * records are appended to the **active segment**; when it exceeds the
//!   configured size the segment is *sealed* and a new one starts
//!   ([`segment`]);
//! * every segment keeps a **sparse offset index** (one entry per
//!   `index_interval_bytes`) and a **time index**, so reads at an
//!   arbitrary offset or timestamp locate the right byte position
//!   without scanning;
//! * storage is pluggable ([`storage`]): in-memory for deterministic
//!   tests, file-backed for durability, both optionally charged through
//!   the [`liquid_sim::pagecache`] model to reproduce the anti-caching
//!   experiments;
//! * segments partition the stream **by time** as well as size (each
//!   tracks the `(oldest, newest)` timestamp range it covers, and the
//!   active segment also rolls on age via `segment_ms`), so
//!   **retention** is an O(1) whole-segment drop by age or total size
//!   ([`Log::enforce_retention`]) — never a record rewrite;
//! * reads of sealed segments are served from a **sharded LRU read
//!   cache** of decoded records as zero-copy slices ([`cache`]); only a
//!   miss touches the storage underneath;
//! * **compaction** de-duplicates keyed records, keeping only the most
//!   recent value per key ([`compaction`]) — the mechanism changelogs
//!   rely on for bounded size and fast recovery (§4.1). It rewrites one
//!   segment at a time, so tombstone GC never blocks appends.
//!
//! Records carry a wire format with a CRC so corruption is detected on
//! read ([`record`]).

#![forbid(unsafe_code)]

pub mod batch;
pub mod cache;
pub mod compaction;
pub mod error;
pub mod log;
pub mod record;
pub mod segment;
pub mod storage;

pub use batch::{BatchBuilder, RecordBatch};
pub use cache::{ReadCacheConfig, SegmentReadCache};
pub use compaction::CompactionStats;
pub use error::LogError;
pub use log::{Log, LogConfig, ReadOutcome, RetentionPolicy};
pub use record::Record;
pub use storage::{FileStorage, MemStorage, SegmentStorage, StorageKind};

/// Result alias for log operations.
pub type Result<T> = std::result::Result<T, LogError>;
