//! Sharded LRU segment-read cache.
//!
//! Sealed segments are immutable, so their decoded records can be kept
//! in memory and served to every reader as zero-copy [`Record`] clones
//! (a clone only bumps the `Bytes` refcounts). One cache is shared by
//! many logs — the cluster attaches it to every replica log with a
//! unique log id — and is split into shards so concurrent readers of
//! different segments never contend on one mutex.
//!
//! Capacity is counted in *bytes of cached payload*, split evenly
//! across the shards. When a fill pushes a shard over its share, the
//! least-recently-used entries are evicted under the shard lock; each
//! eviction is a fault-injection decision point (`log.cache-evict`), so
//! chaos runs can crash a broker mid-fill and check that nothing torn
//! is ever served.
//!
//! Determinism: shard selection is a fixed multiplicative hash and the
//! entries live in `BTreeMap`s, so two runs with the same seed make
//! identical caching decisions — required by the chaos harness's
//! same-seed-same-report invariant.

use std::collections::BTreeMap;
use std::sync::Arc;

use liquid_obs::{CounterHandle, Obs};
use liquid_sim::failure::FailureInjector;
use liquid_sim::lockdep::Mutex;

use crate::error::LogError;
use crate::record::Record;

/// Configuration for a [`SegmentReadCache`].
#[derive(Debug, Clone)]
pub struct ReadCacheConfig {
    /// Total cached-payload budget in bytes, split across the shards.
    pub capacity_bytes: u64,
    /// Number of independently locked shards (at least 1).
    pub shards: usize,
    /// Observability domain for the hit/miss/eviction counters.
    pub obs: Obs,
}

impl Default for ReadCacheConfig {
    fn default() -> Self {
        ReadCacheConfig {
            capacity_bytes: 64 * 1024 * 1024,
            shards: 8,
            obs: Obs::default(),
        }
    }
}

/// Registry handles, resolved once at construction. The eviction
/// counter is the twin metric of the `log.cache-evict` fault site.
#[derive(Debug, Clone)]
struct CacheMetrics {
    hit: CounterHandle,
    miss: CounterHandle,
    evict: CounterHandle,
}

impl CacheMetrics {
    fn resolve(obs: &Obs) -> Self {
        let reg = obs.registry();
        CacheMetrics {
            hit: reg.counter("log.cache.hit"),
            miss: reg.counter("log.cache.miss"),
            evict: reg.counter("log.cache-evict"),
        }
    }
}

/// One fully decoded sealed segment.
struct CacheEntry {
    /// The segment's records, shared with every reader that hit it.
    records: Arc<Vec<Record>>,
    /// Encoded size of `records` — what counts against capacity.
    bytes: u64,
    /// Shard-local logical clock value of the last touch (LRU order).
    last_used: u64,
}

#[derive(Default)]
struct ShardState {
    /// Entries keyed by namespaced segment id.
    entries: BTreeMap<u64, CacheEntry>,
    /// Total `CacheEntry::bytes` across `entries`.
    bytes: u64,
    /// Shard-local logical clock, advanced on every touch.
    tick: u64,
}

/// One shard: its entry map sits behind its own ranked mutex so readers
/// of different segments proceed in parallel.
struct ReadCacheShard {
    shard: Mutex<ShardState>,
}

impl ReadCacheShard {
    fn new() -> Self {
        ReadCacheShard {
            shard: Mutex::new("log.readcache", ShardState::default()),
        }
    }
}

/// Sharded LRU cache of decoded sealed segments, shared across logs.
pub struct SegmentReadCache {
    shards: Vec<ReadCacheShard>,
    capacity_per_shard: u64,
    metrics: CacheMetrics,
}

impl SegmentReadCache {
    /// Creates a cache with `config.shards` independently locked shards,
    /// each owning an equal share of `config.capacity_bytes`.
    pub fn new(config: ReadCacheConfig) -> Arc<Self> {
        let n = config.shards.max(1);
        Arc::new(SegmentReadCache {
            shards: (0..n).map(|_| ReadCacheShard::new()).collect(),
            capacity_per_shard: (config.capacity_bytes / n as u64).max(1),
            metrics: CacheMetrics::resolve(&config.obs),
        })
    }

    /// The shard responsible for segment id `sid` (fixed multiplicative
    /// hash, so placement is identical across runs and processes).
    fn shard_slot(&self, sid: u64) -> Option<&ReadCacheShard> {
        let spread = sid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
        self.shards.get(spread as usize % self.shards.len().max(1))
    }

    /// Serves records of cached segment `sid` from `from` under the
    /// same byte-budget rule as `Segment::read_from` (records are pushed
    /// until the running total reaches `max_bytes`, always at least one
    /// if any qualify). `None` is a miss; the caller decodes the
    /// segment from storage and offers it back via [`insert`].
    ///
    /// [`insert`]: Self::insert
    pub fn get(&self, sid: u64, from: u64, max_bytes: u64) -> Option<Vec<Record>> {
        let slot = self.shard_slot(sid)?;
        let mut st = slot.shard.lock();
        st.tick += 1;
        let tick = st.tick;
        let Some(entry) = st.entries.get_mut(&sid) else {
            drop(st);
            self.metrics.miss.inc();
            return None;
        };
        entry.last_used = tick;
        let records = Arc::clone(&entry.records);
        drop(st);
        self.metrics.hit.inc();
        Some(slice_from(&records, from, max_bytes))
    }

    /// Inserts the fully decoded sealed segment `sid`, evicting
    /// least-recently-used entries while the shard is over its capacity
    /// share. Evictions complete under the shard lock (the shard is
    /// never observed inconsistent); each one then ticks the
    /// `log.cache-evict` fault site outside the guard, where an
    /// injected failure costs only cache warmth, never correctness.
    /// Returns the shared records so the caller can serve the read that
    /// caused the fill.
    pub fn insert(
        &self,
        sid: u64,
        records: Vec<Record>,
        injector: &FailureInjector,
    ) -> crate::Result<Arc<Vec<Record>>> {
        let bytes: u64 = records.iter().map(|r| r.wire_size() as u64).sum();
        let records = Arc::new(records);
        let Some(slot) = self.shard_slot(sid) else {
            return Ok(records);
        };
        let mut evicted = 0u64;
        {
            let mut st = slot.shard.lock();
            st.tick += 1;
            let tick = st.tick;
            if let Some(old) = st.entries.remove(&sid) {
                st.bytes = st.bytes.saturating_sub(old.bytes);
            }
            st.entries.insert(
                sid,
                CacheEntry {
                    records: Arc::clone(&records),
                    bytes,
                    last_used: tick,
                },
            );
            st.bytes = st.bytes.saturating_add(bytes);
            while st.bytes > self.capacity_per_shard {
                let victim = st
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(&k, _)| k);
                let Some(victim) = victim else { break };
                if let Some(e) = st.entries.remove(&victim) {
                    st.bytes = st.bytes.saturating_sub(e.bytes);
                }
                evicted += 1;
            }
        }
        for _ in 0..evicted {
            self.metrics.evict.inc();
            if injector.tick("log.cache-evict") {
                return Err(LogError::Injected("log.cache-evict"));
            }
        }
        Ok(records)
    }

    /// Drops the cached copy of segment `sid`, if any. Called when the
    /// segment is retired (retention drop, truncation) or rewritten
    /// (compaction) so stale records are never served.
    pub fn invalidate(&self, sid: u64) {
        let Some(slot) = self.shard_slot(sid) else {
            return;
        };
        let mut st = slot.shard.lock();
        if let Some(e) = st.entries.remove(&sid) {
            st.bytes = st.bytes.saturating_sub(e.bytes);
        }
    }

    /// Total bytes currently cached across all shards (tests, gauges).
    pub fn cached_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.shard.lock().bytes).sum()
    }

    /// Total entries currently cached across all shards.
    pub fn cached_segments(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.shard.lock().entries.len())
            .sum()
    }
}

/// Slices a cached segment the way `Segment::read_from` reads storage:
/// skip records before `from`, then push records while accumulating
/// their encoded size, stopping *after* the record that reaches
/// `max_bytes` (so at least one record is returned if any qualify).
pub(crate) fn slice_from(records: &[Record], from: u64, max_bytes: u64) -> Vec<Record> {
    let start = records.partition_point(|r| r.offset < from);
    let mut out = Vec::new();
    let mut bytes = 0u64;
    for rec in records.iter().skip(start) {
        bytes = bytes.saturating_add(rec.wire_size() as u64);
        out.push(rec.clone());
        if bytes >= max_bytes {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn rec(offset: u64, val: &str) -> Record {
        Record {
            offset,
            timestamp: offset,
            key: Some(Bytes::from(format!("k{offset}"))),
            value: Bytes::from(val.to_string()),
        }
    }

    fn cache(capacity: u64, shards: usize) -> (Arc<SegmentReadCache>, Obs) {
        let obs = Obs::default();
        (
            SegmentReadCache::new(ReadCacheConfig {
                capacity_bytes: capacity,
                shards,
                obs: obs.clone(),
            }),
            obs,
        )
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let (c, obs) = cache(1 << 20, 4);
        let inj = FailureInjector::disabled();
        assert!(c.get(1, 0, u64::MAX).is_none());
        c.insert(1, vec![rec(0, "a"), rec(1, "b")], &inj).unwrap();
        let got = c.get(1, 0, u64::MAX).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].value, Bytes::from("b"));
        let snap = obs.snapshot();
        assert_eq!(snap.counter("log.cache.miss"), 1);
        assert_eq!(snap.counter("log.cache.hit"), 1);
    }

    #[test]
    fn slice_respects_offset_and_budget() {
        let records: Vec<Record> = (0..10).map(|i| rec(i, "0123456789")).collect();
        let all = slice_from(&records, 0, u64::MAX);
        assert_eq!(all.len(), 10);
        let suffix = slice_from(&records, 7, u64::MAX);
        assert_eq!(suffix.len(), 3);
        assert_eq!(suffix[0].offset, 7);
        // A 1-byte budget still returns exactly one record.
        let one = slice_from(&records, 0, 1);
        assert_eq!(one.len(), 1);
        // Past the end: empty.
        assert!(slice_from(&records, 10, u64::MAX).is_empty());
    }

    #[test]
    fn slice_handles_sparse_offsets_after_compaction() {
        let records = vec![rec(3, "a"), rec(9, "b"), rec(20, "c")];
        let got = slice_from(&records, 5, u64::MAX);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].offset, 9);
    }

    #[test]
    fn eviction_keeps_capacity_bounded_and_counts() {
        let (c, obs) = cache(256, 1); // single shard, tiny budget
        let inj = FailureInjector::disabled();
        for sid in 0..20u64 {
            c.insert(sid, vec![rec(0, &"x".repeat(40))], &inj).unwrap();
        }
        assert!(c.cached_bytes() <= 256);
        assert!(c.cached_segments() < 20);
        assert!(obs.snapshot().counter("log.cache-evict") > 0);
    }

    #[test]
    fn eviction_prefers_least_recently_used() {
        let (c, _) = cache(200, 1);
        let inj = FailureInjector::disabled();
        let payload = "y".repeat(50);
        c.insert(1, vec![rec(0, &payload)], &inj).unwrap();
        c.insert(2, vec![rec(0, &payload)], &inj).unwrap();
        // Touch 1 so 2 becomes the LRU victim of the next fill.
        assert!(c.get(1, 0, u64::MAX).is_some());
        c.insert(3, vec![rec(0, &payload)], &inj).unwrap();
        assert!(c.get(1, 0, u64::MAX).is_some(), "recently used survives");
        assert!(c.get(2, 0, u64::MAX).is_none(), "LRU entry was evicted");
    }

    #[test]
    fn invalidate_removes_entry_and_bytes() {
        let (c, _) = cache(1 << 20, 2);
        let inj = FailureInjector::disabled();
        c.insert(5, vec![rec(0, "abc")], &inj).unwrap();
        assert!(c.cached_bytes() > 0);
        c.invalidate(5);
        assert_eq!(c.cached_bytes(), 0);
        assert!(c.get(5, 0, u64::MAX).is_none());
    }

    #[test]
    fn injected_eviction_aborts_fill() {
        let (c, _) = cache(64, 1);
        let inj = FailureInjector::disabled();
        c.insert(1, vec![rec(0, &"z".repeat(30))], &inj).unwrap();
        inj.fail_at(1);
        let err = c.insert(2, vec![rec(0, &"z".repeat(30))], &inj);
        assert!(matches!(err, Err(LogError::Injected("log.cache-evict"))));
        // The cache is still structurally sound afterwards.
        c.insert(3, vec![rec(0, "ok")], &inj).unwrap();
        assert!(c.get(3, 0, u64::MAX).is_some());
    }

    #[test]
    fn shard_placement_is_deterministic() {
        let (a, _) = cache(1 << 20, 8);
        let (b, _) = cache(1 << 20, 8);
        let inj = FailureInjector::disabled();
        for sid in 0..64u64 {
            a.insert(sid, vec![rec(0, "v")], &inj).unwrap();
            b.insert(sid, vec![rec(0, "v")], &inj).unwrap();
        }
        assert_eq!(a.cached_bytes(), b.cached_bytes());
        assert_eq!(a.cached_segments(), b.cached_segments());
        for sid in 0..64u64 {
            assert_eq!(a.get(sid, 0, 1).is_some(), b.get(sid, 0, 1).is_some());
        }
    }
}
