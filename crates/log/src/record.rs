//! Record wire format.
//!
//! Layout of one record on storage (all integers little-endian):
//!
//! ```text
//! +----------+---------+------------+--------------+-----------+-----+-------+
//! | len: u32 | crc:u32 | offset:u64 | timestamp:u64| klen: i32 | key | value |
//! +----------+---------+------------+--------------+-----------+-----+-------+
//! ```
//!
//! `len` counts everything after itself; `crc` covers everything after
//! itself. `klen == -1` encodes a keyless record. The CRC is the standard
//! CRC-32 (IEEE 802.3) so corruption introduced by failure injection or
//! torn writes is detected on read.

use bytes::Bytes;
use liquid_sim::clock::Ts;

use crate::error::LogError;

/// One record as stored in (and read from) the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Dense offset assigned at append time.
    pub offset: u64,
    /// Producer- or broker-assigned timestamp (ms).
    pub timestamp: Ts,
    /// Optional key (used for partitioning and compaction).
    pub key: Option<Bytes>,
    /// Payload. An empty payload with a key is a compaction tombstone.
    pub value: Bytes,
}

impl Record {
    /// Creates a record before it has been assigned an offset.
    pub fn new(key: Option<Bytes>, value: Bytes, timestamp: Ts) -> Self {
        Record {
            offset: 0,
            timestamp,
            key,
            value,
        }
    }

    /// Whether this record is a tombstone (keyed, empty value).
    pub fn is_tombstone(&self) -> bool {
        self.key.is_some() && self.value.is_empty()
    }

    /// Serialized size of this record in bytes, including the length
    /// prefix.
    pub fn wire_size(&self) -> usize {
        4 + 4 + 8 + 8 + 4 + self.key.as_ref().map_or(0, |k| k.len()) + self.value.len()
    }

    /// Appends the wire encoding of this record to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let body_len = self.wire_size() - 4;
        buf.reserve(self.wire_size());
        buf.extend_from_slice(&(body_len as u32).to_le_bytes());
        let crc_pos = buf.len();
        buf.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
        buf.extend_from_slice(&self.offset.to_le_bytes());
        buf.extend_from_slice(&self.timestamp.to_le_bytes());
        match &self.key {
            Some(k) => {
                // lint:allow(hot-copy, reason=writes the 4-byte key-length word, not the key bytes)
                buf.extend_from_slice(&(k.len() as i32).to_le_bytes());
                // lint:allow(hot-copy, reason=wire serialization: encode exists to copy payload bytes into the on-disk frame; batching pays this once per record by design)
                buf.extend_from_slice(k);
            }
            None => buf.extend_from_slice(&(-1i32).to_le_bytes()),
        }
        // lint:allow(hot-copy, reason=wire serialization: encode exists to copy payload bytes into the on-disk frame; batching pays this once per record by design)
        buf.extend_from_slice(&self.value);
        let crc = crc32(&buf[crc_pos + 4..]);
        // lint:allow(hot-copy, reason=4-byte CRC patch over the just-written frame, not a payload copy)
        buf[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
    }

    /// Decodes one record from the front of `data`. Returns the record
    /// and the number of bytes consumed.
    ///
    /// Takes `&Bytes` (not `&[u8]`) so the decoded key and value can be
    /// zero-copy slices of the caller's chunk: one storage read backs
    /// every record decoded from it, and the hot-copy lint holds the
    /// fetch path to that.
    pub fn decode(data: &Bytes) -> crate::Result<(Record, usize)> {
        if data.len() < 4 {
            return Err(LogError::Corrupt("truncated length prefix".into()));
        }
        let body_len = le_u32(&data[0..4])? as usize;
        if body_len < 4 + 8 + 8 + 4 {
            return Err(LogError::Corrupt(format!("body too small: {body_len}")));
        }
        if data.len() < 4 + body_len {
            return Err(LogError::Corrupt(format!(
                "truncated body: need {} have {}",
                4 + body_len,
                data.len()
            )));
        }
        let body = &data[4..4 + body_len];
        let stored_crc = le_u32(field(body, 0, 4)?)?;
        let actual_crc = crc32(field(body, 4, body.len())?);
        if stored_crc != actual_crc {
            return Err(LogError::Corrupt(format!(
                "crc mismatch: stored {stored_crc:#010x} actual {actual_crc:#010x}"
            )));
        }
        let offset = le_u64(field(body, 4, 12)?)?;
        let timestamp = le_u64(field(body, 12, 20)?)?;
        let klen = le_i32(field(body, 20, 24)?)?;
        let rest = field(body, 24, body.len())?;
        // Key and value are zero-copy slices of `data` (refcount bumps on
        // the chunk's backing buffer). `rest` starts at absolute offset
        // 4 (length prefix) + 24 (crc/offset/timestamp/klen) and the
        // bounds below are already validated against `body.len()`.
        let rest_at = 4 + 24;
        let (key, value) = if klen < 0 {
            (None, data.slice(rest_at..4 + body_len))
        } else {
            let klen = klen as usize;
            if rest.len() < klen {
                return Err(LogError::Corrupt("key length exceeds body".into()));
            }
            (
                Some(data.slice(rest_at..rest_at + klen)),
                data.slice(rest_at + klen..4 + body_len),
            )
        };
        Ok((
            Record {
                offset,
                timestamp,
                key,
                value,
            },
            4 + body_len,
        ))
    }
}

/// Borrows `body[lo..hi]`, turning a short body into a corruption error
/// instead of a panic — decode runs on bytes that crossed a
/// fault-injected medium, so no slice length can be trusted.
fn field(body: &[u8], lo: usize, hi: usize) -> crate::Result<&[u8]> {
    body.get(lo..hi)
        .ok_or_else(|| LogError::Corrupt(format!("truncated field at {lo}..{hi}")))
}

/// Reads a little-endian u32; a short slice is a corruption error, not
/// a panic — decode runs on bytes that crossed a fault-injected medium.
fn le_u32(bytes: &[u8]) -> crate::Result<u32> {
    match bytes.try_into() {
        Ok(arr) => Ok(u32::from_le_bytes(arr)),
        Err(_) => Err(LogError::Corrupt("truncated u32 field".into())),
    }
}

/// Reads a little-endian u64 with the same contract as [`le_u32`].
fn le_u64(bytes: &[u8]) -> crate::Result<u64> {
    match bytes.try_into() {
        Ok(arr) => Ok(u64::from_le_bytes(arr)),
        Err(_) => Err(LogError::Corrupt("truncated u64 field".into())),
    }
}

/// Reads a little-endian i32 with the same contract as [`le_u32`].
fn le_i32(bytes: &[u8]) -> crate::Result<i32> {
    match bytes.try_into() {
        Ok(arr) => Ok(i32::from_le_bytes(arr)),
        Err(_) => Err(LogError::Corrupt("truncated i32 field".into())),
    }
}

/// CRC-32 (IEEE 802.3, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: Option<&[u8]>, value: &[u8]) -> Record {
        Record {
            offset: 42,
            timestamp: 123_456,
            key: key.map(Bytes::copy_from_slice),
            value: Bytes::copy_from_slice(value),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_keyed() {
        let r = rec(Some(b"user-1"), b"payload");
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), r.wire_size());
        let data = Bytes::from(buf);
        let (back, used) = Record::decode(&data).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, data.len());
    }

    #[test]
    fn roundtrip_keyless() {
        let r = rec(None, b"v");
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (back, _) = Record::decode(&Bytes::from(buf)).unwrap();
        assert_eq!(back.key, None);
        assert_eq!(back.value, Bytes::from_static(b"v"));
    }

    #[test]
    fn roundtrip_empty_value_tombstone() {
        let r = rec(Some(b"k"), b"");
        assert!(r.is_tombstone());
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (back, _) = Record::decode(&Bytes::from(buf)).unwrap();
        assert!(back.is_tombstone());
    }

    #[test]
    fn decode_shares_the_chunk_buffer() {
        // Zero-copy contract: the decoded key and value are slices of
        // the chunk passed in, not fresh allocations.
        let r = rec(Some(b"user-1"), b"payload-bytes");
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let data = Bytes::from(buf);
        let base = data.as_slice().as_ptr() as usize;
        let end = base + data.len();
        let (back, _) = Record::decode(&data).unwrap();
        let kp = back.key.as_ref().unwrap().as_slice().as_ptr() as usize;
        let vp = back.value.as_slice().as_ptr() as usize;
        assert!(
            (base..end).contains(&kp),
            "key must point into the chunk buffer"
        );
        assert!(
            (base..end).contains(&vp),
            "value must point into the chunk buffer"
        );
    }

    #[test]
    fn keyless_empty_is_not_tombstone() {
        assert!(!rec(None, b"").is_tombstone());
    }

    #[test]
    fn corrupt_crc_detected() {
        let r = rec(Some(b"k"), b"value");
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(
            Record::decode(&Bytes::from(buf)),
            Err(LogError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_data_detected() {
        let r = rec(Some(b"k"), b"value");
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let data = Bytes::from(buf);
        for cut in [0, 2, 8, data.len() - 1] {
            assert!(
                Record::decode(&data.slice(..cut)).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn multiple_records_decode_sequentially() {
        let mut buf = Vec::new();
        for i in 0..5u64 {
            let mut r = rec(Some(format!("k{i}").as_bytes()), b"v");
            r.offset = i;
            r.encode(&mut buf);
        }
        let data = Bytes::from(buf);
        let mut pos = 0;
        for i in 0..5u64 {
            let (r, used) = Record::decode(&data.slice(pos..)).unwrap();
            assert_eq!(r.offset, i);
            pos += used;
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn wire_size_matches_encoding() {
        for (k, v) in [
            (None, &b""[..]),
            (Some(&b"key"[..]), &b""[..]),
            (None, &b"some longer value here"[..]),
            (Some(&b"k"[..]), &b"v"[..]),
        ] {
            let r = rec(k, v);
            let mut buf = Vec::new();
            r.encode(&mut buf);
            assert_eq!(buf.len(), r.wire_size());
        }
    }
}
