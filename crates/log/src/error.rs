//! Error type for log operations.

use std::io;

/// Errors surfaced by the commit log.
#[derive(Debug)]
pub enum LogError {
    /// Underlying storage failed.
    Io(io::Error),
    /// A read requested an offset outside `[start, end)`.
    OffsetOutOfRange {
        /// The offset the caller asked for.
        requested: u64,
        /// First offset still present (retention may have advanced it).
        start: u64,
        /// The log-end offset (next offset to be assigned).
        end: u64,
    },
    /// A record failed its CRC or was structurally invalid.
    Corrupt(String),
    /// Offset-domain arithmetic overflowed; continuing would silently
    /// corrupt offsets, so the operation is refused instead.
    OffsetOverflow {
        /// What the arithmetic was computing when it overflowed.
        what: &'static str,
        /// The operand that could not be advanced.
        value: u64,
    },
    /// A fault injector fired at the named operation (simulated crash).
    Injected(&'static str),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log I/O error: {e}"),
            LogError::OffsetOutOfRange {
                requested,
                start,
                end,
            } => write!(f, "offset {requested} out of range [{start}, {end})"),
            LogError::Corrupt(msg) => write!(f, "corrupt log data: {msg}"),
            LogError::OffsetOverflow { what, value } => {
                write!(f, "offset arithmetic overflow: {what} (operand {value})")
            }
            LogError::Injected(op) => write!(f, "injected fault at {op}"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = LogError::OffsetOutOfRange {
            requested: 5,
            start: 10,
            end: 20,
        };
        assert_eq!(e.to_string(), "offset 5 out of range [10, 20)");
        assert!(LogError::Corrupt("bad crc".into())
            .to_string()
            .contains("bad crc"));
    }

    #[test]
    fn offset_overflow_names_the_computation_and_operand() {
        let e = LogError::OffsetOverflow {
            what: "advancing the read cursor past the last record",
            value: u64::MAX,
        };
        let msg = e.to_string();
        assert!(msg.contains("offset arithmetic overflow"), "{msg}");
        assert!(msg.contains("read cursor"), "{msg}");
        assert!(msg.contains(&u64::MAX.to_string()), "{msg}");
    }

    #[test]
    fn io_error_converts() {
        let e: LogError = io::Error::other("boom").into();
        assert!(matches!(e, LogError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
