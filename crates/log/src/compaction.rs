//! Key-based log compaction (paper §4.1, "Log compaction").
//!
//! The log is scanned asynchronously, de-duplicating messages with the
//! same key and keeping only the most recent value per key. The paper
//! highlights this for changelogs: state checkpoints are keyed, so
//! retaining the latest update per key both shrinks the changelog and
//! speeds up recovery.
//!
//! Only sealed segments are compacted; the active segment (the "dirty"
//! head in Kafka terms) is left untouched so appends are never blocked.
//! Keyless records are always retained (they cannot be de-duplicated).
//! Tombstones — keyed records with an empty value — delete their key:
//! the tombstone itself is retained for one compaction pass (so lagging
//! consumers observe the deletion) and removed on the next.

use std::collections::HashMap;

use bytes::Bytes;

use crate::log::Log;
use crate::segment::Segment;

/// Outcome of one compaction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Records in sealed segments before the pass.
    pub records_before: u64,
    /// Records remaining after the pass.
    pub records_after: u64,
    /// Bytes in sealed segments before the pass.
    pub bytes_before: u64,
    /// Bytes remaining after the pass.
    pub bytes_after: u64,
    /// Tombstones dropped entirely (their key deleted).
    pub tombstones_removed: u64,
}

impl CompactionStats {
    /// Fraction of records removed (0.0 if nothing to compact).
    pub fn dedup_ratio(&self) -> f64 {
        if self.records_before == 0 {
            0.0
        } else {
            1.0 - self.records_after as f64 / self.records_before as f64
        }
    }
}

impl Log {
    /// Runs one compaction pass over all sealed segments, one segment at
    /// a time: the pass is a loop of independent
    /// [`compact_segment`](Self::compact_segment) rewrites, so appends
    /// (which only touch the active segment) are never blocked for
    /// longer than one segment's rewrite, and a crash mid-pass leaves
    /// every untouched segment exactly as it was.
    ///
    /// Records keep their original offsets, so consumer positions remain
    /// valid; compacted segments simply contain offset gaps.
    pub fn compact(&mut self) -> crate::Result<CompactionStats> {
        let sealed = self.sealed_bases();
        let mut stats = CompactionStats::default();
        if sealed.is_empty() {
            return Ok(stats);
        }
        let latest = self.latest_keyed_offsets(&sealed, &mut stats)?;

        // A tombstone written in the most recent sealed segment is kept
        // for this pass; older tombstones (from segments already compacted
        // at least once) are dropped. We approximate "already survived a
        // pass" by tracking compaction generations per log.
        let drop_tombstones = self.compaction_generation() > 0;

        // A crash between segments leaves some rewritten and the
        // generation un-bumped — exactly the state a real mid-compaction
        // crash leaves.
        for &base in &sealed {
            self.compact_segment(base, &latest, drop_tombstones, &mut stats)?;
        }
        self.bump_compaction_generation();
        Ok(stats)
    }

    /// Pass 1: newest surviving offset per key across the listed sealed
    /// segments. Keys whose newest sealed record is a tombstone that has
    /// already survived one pass are dropped entirely.
    fn latest_keyed_offsets(
        &self,
        sealed: &[u64],
        stats: &mut CompactionStats,
    ) -> crate::Result<HashMap<Bytes, (u64, bool)>> {
        let mut latest: HashMap<Bytes, (u64, bool)> = HashMap::new();
        for &base in sealed {
            let seg = match self.segments().get(&base) {
                Some(s) => s,
                None => continue, // dropped by retention since we listed it
            };
            let read = seg.read_from(seg.base_offset(), u64::MAX)?;
            stats.records_before = stats
                .records_before
                .saturating_add(read.records.len() as u64);
            stats.bytes_before += seg.size_bytes();
            for rec in read.records {
                if let Some(k) = rec.key.clone() {
                    latest.insert(k, (rec.offset, rec.is_tombstone()));
                }
            }
        }
        Ok(latest)
    }

    /// Rewrites the one sealed segment at `base`, keeping only the
    /// records that survive against `latest`. The rewrite replaces the
    /// segment in place (same base offset) and invalidates its read-
    /// cache entry so readers never see the pre-compaction records.
    fn compact_segment(
        &mut self,
        base: u64,
        latest: &HashMap<Bytes, (u64, bool)>,
        drop_tombstones: bool,
        stats: &mut CompactionStats,
    ) -> crate::Result<()> {
        self.metrics().compact.inc();
        if self.config().injector.tick("log.compact") {
            return Err(crate::LogError::Injected("log.compact"));
        }
        let seg = match self.segments().get(&base) {
            Some(s) => s,
            None => return Ok(()), // dropped by retention since listed
        };
        let read = seg.read_from(seg.base_offset(), u64::MAX)?;
        let survivors: Vec<_> = read
            .records
            .into_iter()
            .filter(|rec| match &rec.key {
                None => true,
                Some(k) => match latest.get(k) {
                    Some(&(newest, is_tomb)) => {
                        if rec.offset != newest {
                            return false;
                        }
                        if is_tomb && drop_tombstones {
                            stats.tombstones_removed += 1;
                            return false;
                        }
                        true
                    }
                    // Pass 1 indexed every keyed record in these same
                    // segments; if an entry is somehow absent, keeping
                    // the record is the safe direction.
                    None => true,
                },
            })
            .collect();
        let storage = self.storage_kind().create(base)?;
        let mut rebuilt = Segment::new(base, storage, self.index_interval());
        for rec in &survivors {
            rebuilt.append(rec)?;
        }
        rebuilt.seal();
        stats.records_after += rebuilt.record_count();
        stats.bytes_after += rebuilt.size_bytes();
        self.segments_mut().insert(base, rebuilt);
        self.invalidate_read_cache(base);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::log::{Log, LogConfig, RetentionPolicy};
    use bytes::Bytes;
    use liquid_sim::clock::SimClock;

    fn compacting_log(segment_bytes: u64) -> Log {
        let cfg = LogConfig {
            segment_bytes,
            retention: RetentionPolicy::Compact {
                max_age_ms: None,
                max_bytes: None,
            },
            ..LogConfig::default()
        };
        Log::open(cfg, SimClock::new(0).shared()).unwrap()
    }

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    #[test]
    fn compaction_keeps_latest_per_key() {
        let mut log = compacting_log(512);
        // 200 updates over 10 keys.
        for i in 0..200 {
            log.append(Some(b(&format!("k{}", i % 10))), b(&format!("v{i}")))
                .unwrap();
        }
        let stats = log.compact().unwrap();
        assert!(stats.records_after < stats.records_before);
        assert!(stats.bytes_after < stats.bytes_before);
        assert!(stats.dedup_ratio() > 0.5);
        // Latest value per key is still readable; stale ones are gone.
        let all = log.read(log.start_offset(), u64::MAX).unwrap();
        let k3: Vec<_> = all
            .records
            .iter()
            .filter(|r| r.key.as_deref() == Some(b"k3"))
            .collect();
        // Sealed segments hold at most one k3; the active segment may
        // hold a few recent ones.
        let newest = k3.last().unwrap();
        assert_eq!(newest.value, b("v193"));
    }

    #[test]
    fn consumer_offsets_remain_valid_after_compaction() {
        let mut log = compacting_log(256);
        for i in 0..100 {
            log.append(Some(b(&format!("k{}", i % 5))), b(&format!("v{i}")))
                .unwrap();
        }
        let end = log.next_offset();
        log.compact().unwrap();
        assert_eq!(log.next_offset(), end, "log end must not move");
        // Reading from any old offset still works (returns records at or
        // after it).
        let out = log.read(50, u64::MAX).unwrap();
        assert!(out.records.iter().all(|r| r.offset >= 50));
    }

    #[test]
    fn keyless_records_survive() {
        let mut log = compacting_log(128);
        for i in 0..50 {
            log.append(None, b(&format!("event-{i}"))).unwrap();
        }
        let before = log.record_count();
        let stats = log.compact().unwrap();
        assert_eq!(log.record_count(), before);
        assert_eq!(stats.records_before, stats.records_after);
    }

    #[test]
    fn tombstone_deletes_key_after_second_pass() {
        let mut log = compacting_log(128);
        for i in 0..30 {
            log.append(Some(b("user")), b(&format!("profile-{i}")))
                .unwrap();
        }
        // Tombstone, then enough data to seal its segment.
        log.append(Some(b("user")), Bytes::new()).unwrap();
        for i in 0..30 {
            log.append(Some(b("filler")), b(&format!("f-{i}"))).unwrap();
        }
        // First pass: tombstone survives (lagging readers see it).
        log.compact().unwrap();
        let after_first = log.read(log.start_offset(), u64::MAX).unwrap();
        assert!(
            after_first
                .records
                .iter()
                .any(|r| r.key.as_deref() == Some(b"user") && r.is_tombstone()),
            "tombstone must survive the first pass"
        );
        // Second pass: tombstone dropped.
        let stats = log.compact().unwrap();
        assert!(stats.tombstones_removed >= 1);
        let after_second = log.read(log.start_offset(), u64::MAX).unwrap();
        assert!(
            !after_second
                .records
                .iter()
                .any(|r| r.key.as_deref() == Some(b"user")),
            "key must be gone after the second pass"
        );
    }

    #[test]
    fn compaction_on_empty_log_is_noop() {
        let mut log = compacting_log(1024);
        let stats = log.compact().unwrap();
        assert_eq!(stats, Default::default());
    }

    #[test]
    fn active_segment_never_compacted() {
        let mut log = compacting_log(1 << 20); // nothing ever seals
        for i in 0..100 {
            log.append(Some(b("k")), b(&format!("v{i}"))).unwrap();
        }
        let stats = log.compact().unwrap();
        assert_eq!(stats.records_before, 0);
        assert_eq!(log.record_count(), 100);
    }

    #[test]
    fn compaction_invalidates_read_cache() {
        use crate::cache::{ReadCacheConfig, SegmentReadCache};
        let mut log = compacting_log(256);
        let cache = SegmentReadCache::new(ReadCacheConfig::default());
        log.attach_read_cache(cache.clone(), 3);
        for i in 0..100 {
            log.append(Some(b(&format!("k{}", i % 5))), b(&format!("v{i}")))
                .unwrap();
        }
        // Warm the cache with the pre-compaction segments.
        log.read(0, u64::MAX).unwrap();
        assert!(cache.cached_segments() > 0);
        log.compact().unwrap();
        // Post-compaction reads must reflect the rewrite, not the cached
        // pre-compaction records: record 2 ("k2" -> "v2") was superseded
        // dozens of times, so it must be gone — if the cache still held
        // the pre-compaction segment it would resurface here.
        let out = log.read(0, u64::MAX).unwrap();
        assert!(
            !out.records.iter().any(|r| r.offset == 2),
            "cache served a stale pre-compaction record"
        );
    }

    #[test]
    fn changelog_shrinks_with_skew() {
        // Zipf-like scenario: most updates hit few keys; compaction
        // should reclaim most of the space — the §4.1 claim.
        let mut log = compacting_log(1024);
        for i in 0..1000 {
            let key = format!("k{}", i % 7);
            log.append(Some(b(&key)), b("payload-payload-payload"))
                .unwrap();
        }
        let stats = log.compact().unwrap();
        assert!(
            stats.dedup_ratio() > 0.9,
            "ratio {} too low",
            stats.dedup_ratio()
        );
    }
}
