//! The multi-segment log: rolling, retention, timestamp lookup, and the
//! page-cache hook used by the anti-caching experiments.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use liquid_obs::{CounterHandle, HistogramHandle, Obs};
use liquid_sim::clock::{SharedClock, Ts};
use liquid_sim::failure::FailureInjector;
use liquid_sim::lockdep::Mutex;
use liquid_sim::pagecache::PageCache;

use crate::batch::RecordBatch;
use crate::cache::SegmentReadCache;
use crate::error::LogError;
use crate::record::Record;
use crate::segment::Segment;
use crate::storage::StorageKind;

/// How old data is reclaimed (paper: "one month worth of data", or a
/// maximum size "for operational reasons"; §4.1 for compacted feeds).
///
/// This single typed policy replaces the old `CleanupPolicy` enum plus
/// the ad-hoc `max_age_ms`/`max_bytes` knob pair. Every deleting
/// variant reclaims space by dropping whole time-partitioned sealed
/// segments from the front of the log — an O(1) unlink per segment,
/// never a record rewrite — so retention cost is independent of how
/// much data is retired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RetentionPolicy {
    /// Never delete anything (the default).
    #[default]
    KeepAll,
    /// Drop whole sealed segments whose newest record is older than
    /// `max_age_ms`, and optionally also bound the total size.
    DropByAge {
        /// A sealed segment is dropped once its newest record is at
        /// least this old. Must be > 0.
        max_age_ms: u64,
        /// Additional size bound applied after the age pass, if any.
        max_bytes: Option<u64>,
    },
    /// Drop the oldest sealed segments while the log exceeds
    /// `max_bytes`.
    DropByBytes {
        /// Total log size to shrink back under. Must be > 0.
        max_bytes: u64,
    },
    /// Keep the latest record per key (changelog topics, §4.1):
    /// segments are compacted one at a time, and the optional age/size
    /// bounds still drop whole expired segments from the front.
    Compact {
        /// Age bound applied on top of compaction, if any.
        max_age_ms: Option<u64>,
        /// Size bound applied on top of compaction, if any.
        max_bytes: Option<u64>,
    },
}

impl RetentionPolicy {
    /// Retention that never deletes anything.
    pub fn keep_forever() -> Self {
        RetentionPolicy::KeepAll
    }

    /// The age bound, if this policy has one.
    pub fn max_age_ms(&self) -> Option<u64> {
        match *self {
            RetentionPolicy::DropByAge { max_age_ms, .. } => Some(max_age_ms),
            RetentionPolicy::Compact { max_age_ms, .. } => max_age_ms,
            _ => None,
        }
    }

    /// The size bound, if this policy has one.
    pub fn max_bytes(&self) -> Option<u64> {
        match *self {
            RetentionPolicy::DropByAge { max_bytes, .. } => max_bytes,
            RetentionPolicy::DropByBytes { max_bytes } => Some(max_bytes),
            RetentionPolicy::Compact { max_bytes, .. } => max_bytes,
            RetentionPolicy::KeepAll => None,
        }
    }

    /// Whether the latest record per key is kept by compaction.
    pub fn is_compacted(&self) -> bool {
        matches!(self, RetentionPolicy::Compact { .. })
    }

    /// Returns the policy with an age bound of `max_age_ms`, keeping
    /// any size bound and the compaction choice it already carries.
    pub fn with_max_age_ms(self, max_age_ms: u64) -> Self {
        match self {
            RetentionPolicy::KeepAll => RetentionPolicy::DropByAge {
                max_age_ms,
                max_bytes: None,
            },
            RetentionPolicy::DropByAge { max_bytes, .. } => RetentionPolicy::DropByAge {
                max_age_ms,
                max_bytes,
            },
            RetentionPolicy::DropByBytes { max_bytes } => RetentionPolicy::DropByAge {
                max_age_ms,
                max_bytes: Some(max_bytes),
            },
            RetentionPolicy::Compact { max_bytes, .. } => RetentionPolicy::Compact {
                max_age_ms: Some(max_age_ms),
                max_bytes,
            },
        }
    }

    /// Returns the policy with a size bound of `max_bytes`, keeping any
    /// age bound and the compaction choice it already carries.
    pub fn with_max_bytes(self, max_bytes: u64) -> Self {
        match self {
            RetentionPolicy::KeepAll => RetentionPolicy::DropByBytes { max_bytes },
            RetentionPolicy::DropByAge { max_age_ms, .. } => RetentionPolicy::DropByAge {
                max_age_ms,
                max_bytes: Some(max_bytes),
            },
            RetentionPolicy::DropByBytes { .. } => RetentionPolicy::DropByBytes { max_bytes },
            RetentionPolicy::Compact { max_age_ms, .. } => RetentionPolicy::Compact {
                max_age_ms,
                max_bytes: Some(max_bytes),
            },
        }
    }

    /// Returns the compacted form of the policy, carrying over any
    /// age/size bounds it already declares.
    pub fn compacted(self) -> Self {
        RetentionPolicy::Compact {
            max_age_ms: self.max_age_ms(),
            max_bytes: self.max_bytes(),
        }
    }

    /// Rejects degenerate bounds (a zero bound would drop every sealed
    /// segment on every pass). The error names the offending bound;
    /// callers wrap it into their own typed error.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.max_age_ms() == Some(0) {
            return Err("max_age_ms must be > 0");
        }
        if self.max_bytes() == Some(0) {
            return Err("max_bytes must be > 0");
        }
        Ok(())
    }
}

/// Log configuration.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Roll the active segment after it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Also roll once the active segment spans this much wall-clock
    /// time (oldest record at least this old), so segments partition
    /// the stream by time and age-based retention can drop whole
    /// segments. `None` rolls by size only.
    pub segment_ms: Option<u64>,
    /// Sparse-index granularity (bytes between index entries).
    pub index_interval_bytes: u64,
    /// Retention policy (what to drop, and whether to compact).
    pub retention: RetentionPolicy,
    /// Segment storage backend.
    pub storage: StorageKind,
    /// Fault injector for append / roll / compaction crash points.
    /// Disabled by default; cloned logs share its schedule.
    pub injector: FailureInjector,
    /// Observability domain the log reports into. Cloned configs share
    /// instruments; the default is a fresh private domain.
    pub obs: Obs,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_bytes: 1024 * 1024,
            segment_ms: None,
            index_interval_bytes: 4096,
            retention: RetentionPolicy::keep_forever(),
            storage: StorageKind::Memory,
            injector: FailureInjector::disabled(),
            obs: Obs::default(),
        }
    }
}

/// Handles into the registry for the log hot paths, resolved once at
/// open. The counters are the twin metrics of the `log.*` fault sites.
#[derive(Debug, Clone)]
pub(crate) struct LogMetrics {
    pub(crate) append: CounterHandle,
    pub(crate) append_batch: CounterHandle,
    pub(crate) roll: CounterHandle,
    pub(crate) compact: CounterHandle,
    pub(crate) segment_drop: CounterHandle,
    pub(crate) append_bytes: HistogramHandle,
    pub(crate) batch_records: HistogramHandle,
}

impl LogMetrics {
    fn resolve(obs: &Obs) -> Self {
        let reg = obs.registry();
        LogMetrics {
            append: reg.counter("log.append"),
            append_batch: reg.counter("log.append-batch"),
            roll: reg.counter("log.roll"),
            compact: reg.counter("log.compact"),
            segment_drop: reg.counter("log.segment-drop"),
            append_bytes: reg.histogram("log.append.bytes"),
            batch_records: reg.histogram("log.append.batch_records"),
        }
    }
}

/// Result of a read, including the simulated I/O cost when a page-cache
/// model is attached (0 otherwise).
#[derive(Debug)]
pub struct ReadOutcome {
    /// Records starting at the requested offset.
    pub records: Vec<Record>,
    /// Simulated nanoseconds charged by the page-cache model.
    pub simulated_cost_ns: u64,
}

/// A partition's commit log.
pub struct Log {
    config: LogConfig,
    clock: SharedClock,
    /// Sealed + active segments, keyed by base offset. Never empty.
    segments: BTreeMap<u64, Segment>,
    /// First offset still readable (advanced by retention).
    start_offset: u64,
    /// Optional page-cache model; `log_id` namespaces file ids.
    cache: Option<(Arc<Mutex<PageCache>>, u64)>,
    /// Optional sharded segment-read cache; `log_id` namespaces the
    /// cached segment ids so many logs can share one cache.
    read_cache: Option<(Arc<SegmentReadCache>, u64)>,
    /// Number of completed compaction passes (tombstone lifecycle).
    compaction_generation: u64,
    /// Registry handles for the hot paths.
    metrics: LogMetrics,
}

impl Log {
    /// Opens (or creates) a log. For file storage, existing segments are
    /// recovered from disk.
    pub fn open(config: LogConfig, clock: SharedClock) -> crate::Result<Self> {
        let mut segments = BTreeMap::new();
        let bases = config.storage.existing_segments()?;
        for &base in &bases {
            let storage = config.storage.open(base)?;
            let mut seg = Segment::recover(base, storage, config.index_interval_bytes)?;
            seg.seal();
            segments.insert(base, seg);
        }
        let mut log = Log {
            start_offset: segments
                .values()
                .next()
                .map(|s| s.base_offset())
                .unwrap_or(0),
            metrics: LogMetrics::resolve(&config.obs),
            config,
            clock,
            segments,
            cache: None,
            read_cache: None,
            compaction_generation: 0,
        };
        // The newest recovered segment becomes active again; if none,
        // start fresh at offset 0.
        let next = log.segments.values().next_back().map(Segment::next_offset);
        match next {
            Some(next) => log.roll_new_segment(next)?,
            None => log.roll_new_segment(0)?,
        }
        Ok(log)
    }

    /// Convenience: in-memory log with default config.
    pub fn in_memory(clock: SharedClock) -> Self {
        // lint:allow(panic-reachability, reason=default config uses in-memory storage with a disabled injector; open has no fallible step on that path)
        Log::open(LogConfig::default(), clock).expect("memory log cannot fail")
    }

    /// Attaches a page-cache model; all subsequent reads/writes are
    /// charged through it. `log_id` must be unique per cache.
    pub fn attach_cache(&mut self, cache: Arc<Mutex<PageCache>>, log_id: u64) {
        self.cache = Some((cache, log_id));
    }

    /// Attaches a sharded segment-read cache. Reads of sealed segments
    /// are served from it as zero-copy slices; only a miss decodes the
    /// segment from storage (and fills the cache). `log_id` must be
    /// unique per cache so segment ids never collide across logs.
    pub fn attach_read_cache(&mut self, cache: Arc<SegmentReadCache>, log_id: u64) {
        self.read_cache = Some((cache, log_id));
    }

    /// The configuration.
    pub fn config(&self) -> &LogConfig {
        &self.config
    }

    /// Offset the next appended record will receive (log-end offset).
    pub fn next_offset(&self) -> u64 {
        self.active().next_offset()
    }

    /// First readable offset (0 until retention deletes data).
    pub fn start_offset(&self) -> u64 {
        self.start_offset
    }

    /// Total bytes across all segments.
    pub fn size_bytes(&self) -> u64 {
        self.segments.values().map(|s| s.size_bytes()).sum()
    }

    /// Total records across all segments.
    pub fn record_count(&self) -> u64 {
        self.segments.values().map(|s| s.record_count()).sum()
    }

    /// Number of segments (including the active one).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Appends with the current clock time as the record timestamp.
    pub fn append(&mut self, key: Option<Bytes>, value: Bytes) -> crate::Result<u64> {
        let now = self.clock.now();
        self.append_with_timestamp(key, value, now)
    }

    /// Appends a record with an explicit timestamp; returns its offset.
    pub fn append_with_timestamp(
        &mut self,
        key: Option<Bytes>,
        value: Bytes,
        timestamp: Ts,
    ) -> crate::Result<u64> {
        self.metrics.append.inc();
        self.metrics.append_bytes.record(value.len() as u64);
        if self.config.injector.tick("log.append") {
            return Err(LogError::Injected("log.append"));
        }
        let offset = self.next_offset();
        let record = Record {
            offset,
            timestamp,
            key,
            value,
        };
        self.maybe_roll()?;
        let file_id = self.file_id(self.active_base());
        let (pos, len) = self.active_mut().append(&record)?;
        if let Some((cache, _)) = &self.cache {
            cache.lock().write(file_id, pos, len as usize);
        }
        Ok(offset)
    }

    /// Appends a batch of `(key, value)` pairs as one group-commit,
    /// stamping every record with the current clock time. Returns the
    /// offset of the first record. See
    /// [`append_record_batch`](Self::append_record_batch).
    pub fn append_batch(&mut self, batch: Vec<(Option<Bytes>, Bytes)>) -> crate::Result<u64> {
        let now = self.clock.now();
        let base = self.next_offset();
        self.append_record_batch(RecordBatch::from_pairs(batch, now))?;
        Ok(base)
    }

    /// Group-commit append: the whole batch is one decision point — one
    /// fault-injector tick (`log.append-batch`), one roll check, one
    /// metrics record — instead of one per record, which is what makes
    /// the batched produce path scale (ROADMAP item 1).
    ///
    /// Atomicity: the injector tick happens *before* the first record
    /// is written, so an injected crash drops the batch whole — a torn
    /// batch is never half-appended by fault injection. Offsets are
    /// assigned sequentially from the current log end, overwriting
    /// whatever offsets the records carried. Because the batch is
    /// indivisible, the roll threshold is checked once up front and the
    /// active segment may overshoot `segment_bytes` by up to one batch.
    ///
    /// Returns `(base_offset, records, payload_bytes)` of the appended
    /// run; an empty batch appends nothing and ticks nothing.
    pub fn append_record_batch(&mut self, batch: RecordBatch) -> crate::Result<(u64, u64, u64)> {
        let records = batch.len() as u64;
        if records == 0 {
            return Ok((self.next_offset(), 0, 0));
        }
        let payload_bytes = batch.payload_bytes();
        self.metrics.append_batch.inc();
        self.metrics.batch_records.record(records);
        self.metrics.append.add(records);
        self.metrics.append_bytes.record(payload_bytes);
        if self.config.injector.tick("log.append-batch") {
            return Err(LogError::Injected("log.append-batch"));
        }
        self.maybe_roll()?;
        let base = self.next_offset();
        let file_id = self.file_id(self.active_base());
        // Accumulate the page span so the cache model is charged once
        // for the whole group-commit write.
        let mut span: Option<(u64, u64)> = None;
        for mut record in batch.into_records() {
            record.offset = self.next_offset();
            let (pos, len) = self.active_mut().append(&record)?;
            span = Some(match span {
                Some((start, total)) => (start, total + len),
                None => (pos, len),
            });
        }
        if let (Some((cache, _)), Some((start, total))) = (&self.cache, span) {
            cache.lock().write(file_id, start, total as usize);
        }
        Ok((base, records, payload_bytes))
    }

    /// Reads up to `max_bytes` of records starting at `offset`,
    /// continuing across segment boundaries. `offset == next_offset()`
    /// yields an empty read (the caller is tailing the log).
    pub fn read(&self, offset: u64, max_bytes: u64) -> crate::Result<ReadOutcome> {
        let end = self.next_offset();
        if offset < self.start_offset || offset > end {
            return Err(LogError::OffsetOutOfRange {
                requested: offset,
                start: self.start_offset,
                end,
            });
        }
        let mut records = Vec::new();
        let mut cost = 0u64;
        let mut budget = max_bytes;
        let mut cursor = offset;
        // Candidate segments: the one containing `cursor` and everything
        // after it.
        let start_base = self
            .segments
            .range(..=cursor)
            .next_back()
            .or_else(|| self.segments.iter().next())
            .map(|(&b, _)| b)
            .unwrap_or(cursor);
        for (&base, seg) in self.segments.range(start_base..) {
            if budget == 0 {
                break;
            }
            let from = cursor.max(seg.base_offset());
            if from >= seg.next_offset() {
                continue;
            }
            // Hot path: sealed (immutable) segments are served from the
            // read cache as zero-copy slices; only a miss decodes the
            // segment from storage below and pays the page-cache cost.
            let mut storage_read: Option<(u64, u64)> = None;
            let cached = match (&self.read_cache, seg.is_sealed()) {
                (Some((rc, _)), true) => {
                    let sid = self.read_cache_id(base);
                    match rc.get(sid, from, budget) {
                        Some(slice) => Some(slice),
                        None => {
                            let read = seg.read_from(seg.base_offset(), u64::MAX)?;
                            storage_read = Some((read.start_pos, read.bytes_scanned));
                            let whole = rc.insert(sid, read.records, &self.config.injector)?;
                            Some(crate::cache::slice_from(&whole, from, budget))
                        }
                    }
                }
                _ => None,
            };
            let segment_records = match cached {
                Some(slice) => slice,
                None => {
                    let read = seg.read_from(from, budget)?;
                    storage_read = Some((read.start_pos, read.bytes_scanned));
                    read.records
                }
            };
            // One page-cache charge per storage read, at a single lock
            // site after all fallible work; cache hits never touch
            // storage and skip the charge entirely.
            if let (Some((cache, _)), Some((start_pos, scanned))) = (&self.cache, storage_read) {
                let file_id = self.file_id(base);
                cost = cost.saturating_add(
                    cache
                        .lock()
                        .read(file_id, start_pos, scanned as usize)
                        .cost_ns,
                );
            }
            let bytes: u64 = segment_records.iter().map(|r| r.wire_size() as u64).sum();
            budget = budget.saturating_sub(bytes);
            if let Some(last) = segment_records.last() {
                cursor = last.offset.checked_add(1).ok_or(LogError::OffsetOverflow {
                    what: "advancing the read cursor past the last record",
                    value: last.offset,
                })?;
            }
            records.extend(segment_records);
        }
        Ok(ReadOutcome {
            records,
            simulated_cost_ns: cost,
        })
    }

    /// First offset whose record timestamp is `>= ts` (rewind by time).
    pub fn offset_for_timestamp(&self, ts: Ts) -> crate::Result<Option<u64>> {
        for seg in self.segments.values() {
            if seg.max_timestamp() >= ts {
                if let Some(off) = seg.offset_for_timestamp(ts)? {
                    return Ok(Some(off));
                }
            }
        }
        Ok(None)
    }

    /// Applies the retention policy: whole sealed segments are dropped
    /// from the front by age and then by size — each drop is one O(1)
    /// storage unlink, never a record rewrite. Returns the base offsets
    /// of the dropped segments.
    pub fn enforce_retention(&mut self) -> crate::Result<Vec<u64>> {
        let now = self.clock.now();
        let mut deleted = Vec::new();
        if let Some(max_age) = self.config.retention.max_age_ms() {
            loop {
                let victim = self.sealed_bases().first().copied().filter(|b| {
                    self.segments
                        .get(b)
                        .is_some_and(|s| s.max_timestamp() + max_age <= now)
                });
                match victim {
                    Some(base) => {
                        self.drop_segment(base)?;
                        deleted.push(base);
                    }
                    None => break,
                }
            }
        }
        if let Some(max_bytes) = self.config.retention.max_bytes() {
            while self.size_bytes() > max_bytes {
                let Some(base) = self.sealed_bases().first().copied() else {
                    break;
                };
                self.drop_segment(base)?;
                deleted.push(base);
            }
        }
        Ok(deleted)
    }

    /// Discards all records with offsets `>= offset` (replica divergence
    /// repair, §4.3). Returns how many records were dropped.
    pub fn truncate_to(&mut self, offset: u64) -> crate::Result<u64> {
        let before = self.record_count();
        // Remove whole segments past the cut.
        let doomed: Vec<u64> = self
            .segments
            .keys()
            .copied()
            .filter(|&b| b >= offset)
            .collect();
        for base in doomed {
            self.drop_segment_keep_start(base)?;
        }
        // Rebuild the boundary segment without the suffix.
        if let Some((&base, seg)) = self.segments.iter().next_back() {
            if seg.next_offset() > offset {
                let keep = seg.read_from(seg.base_offset(), u64::MAX)?;
                self.drop_segment_keep_start(base)?;
                let storage = self.config.storage.create(base)?;
                let mut rebuilt = Segment::new(base, storage, self.config.index_interval_bytes);
                for rec in keep.records.into_iter().filter(|r| r.offset < offset) {
                    rebuilt.append(&rec)?;
                }
                self.segments.insert(base, rebuilt);
            }
        }
        if self.segments.is_empty() {
            self.roll_new_segment(offset)?;
            self.start_offset = self.start_offset.min(offset);
        } else if let Some(last) = self.segments.values().next_back() {
            // Reactivate the last remaining segment for appends by
            // rolling a fresh active segment after it.
            let (next, sealed) = (last.next_offset(), last.is_sealed());
            if sealed {
                self.roll_new_segment(next)?;
            }
        }
        Ok(before - self.record_count())
    }

    /// Flushes the active segment.
    pub fn flush(&mut self) -> crate::Result<()> {
        self.active_mut().flush()
    }

    /// Iterates over sealed segments' `(base, record_count, size_bytes)`
    /// (used by compaction and tests).
    pub fn sealed_segment_info(&self) -> Vec<(u64, u64, u64)> {
        self.segments
            .values()
            .filter(|s| s.is_sealed())
            .map(|s| (s.base_offset(), s.record_count(), s.size_bytes()))
            .collect()
    }

    pub(crate) fn active(&self) -> &Segment {
        // lint:allow(panic-reachability, reason=open() always rolls a segment and nothing removes the last one, so the map is never empty)
        self.segments.values().next_back().expect("log non-empty")
    }

    pub(crate) fn active_base(&self) -> u64 {
        // lint:allow(panic-reachability, reason=open() always rolls a segment and nothing removes the last one, so the map is never empty)
        *self.segments.keys().next_back().expect("log non-empty")
    }

    fn active_mut(&mut self) -> &mut Segment {
        let base = self.active_base();
        // lint:allow(panic-reachability, reason=base came from active_base on the same map under &mut self, so the entry is present)
        self.segments.get_mut(&base).expect("active exists")
    }

    pub(crate) fn sealed_bases(&self) -> Vec<u64> {
        self.segments
            .iter()
            .filter(|(_, s)| s.is_sealed())
            .map(|(&b, _)| b)
            .collect()
    }

    pub(crate) fn segments_mut(&mut self) -> &mut BTreeMap<u64, Segment> {
        &mut self.segments
    }

    pub(crate) fn segments(&self) -> &BTreeMap<u64, Segment> {
        &self.segments
    }

    pub(crate) fn storage_kind(&self) -> &StorageKind {
        &self.config.storage
    }

    pub(crate) fn metrics(&self) -> &LogMetrics {
        &self.metrics
    }

    pub(crate) fn index_interval(&self) -> u64 {
        self.config.index_interval_bytes
    }

    /// Completed compaction passes over this log.
    pub fn compaction_generation(&self) -> u64 {
        self.compaction_generation
    }

    pub(crate) fn bump_compaction_generation(&mut self) {
        self.compaction_generation += 1;
    }

    fn file_id(&self, base: u64) -> u64 {
        match &self.cache {
            Some((_, log_id)) => (log_id << 40) | (base & 0xFF_FFFF_FFFF),
            None => base,
        }
    }

    fn maybe_roll(&mut self) -> crate::Result<()> {
        let now = self.clock.now();
        let (size, next, opened_at) = {
            let a = self.active();
            (
                a.size_bytes(),
                a.next_offset(),
                a.time_range().map(|(min, _)| min),
            )
        };
        let size_due = size >= self.config.segment_bytes;
        // Time-partitioning: roll a non-empty active segment once its
        // oldest record ages past `segment_ms`, so each segment covers a
        // bounded time range and age retention drops whole segments.
        let time_due = match (self.config.segment_ms, opened_at) {
            (Some(ms), Some(min)) => min.saturating_add(ms) <= now,
            _ => false,
        };
        if size_due || time_due {
            self.metrics.roll.inc();
            if self.config.injector.tick("log.roll") {
                return Err(LogError::Injected("log.roll"));
            }
            self.active_mut().seal();
            self.roll_new_segment(next)?;
        }
        Ok(())
    }

    fn roll_new_segment(&mut self, base: u64) -> crate::Result<()> {
        let storage = self.config.storage.create(base)?;
        self.segments.insert(
            base,
            Segment::new(base, storage, self.config.index_interval_bytes),
        );
        Ok(())
    }

    fn drop_segment(&mut self, base: u64) -> crate::Result<()> {
        self.metrics.segment_drop.inc();
        if self.config.injector.tick("log.segment-drop") {
            return Err(LogError::Injected("log.segment-drop"));
        }
        self.drop_segment_keep_start(base)?;
        // Retention advances the start offset to the oldest remaining
        // segment (deletion always removes the oldest first).
        if let Some(first) = self.segments.values().next() {
            self.start_offset = self.start_offset.max(first.base_offset());
        }
        Ok(())
    }

    fn drop_segment_keep_start(&mut self, base: u64) -> crate::Result<()> {
        self.segments.remove(&base);
        self.config.storage.destroy(base)?;
        if let Some((cache, _)) = &self.cache {
            let fid = self.file_id(base);
            cache.lock().evict_file(fid);
        }
        self.invalidate_read_cache(base);
        Ok(())
    }

    /// Drops the cached copy of segment `base` from the read cache, if
    /// any. Called whenever a segment is removed or rewritten (retention
    /// drop, truncation, compaction) so the cache never serves a retired
    /// segment's records.
    pub(crate) fn invalidate_read_cache(&self, base: u64) {
        if let Some((rc, _)) = &self.read_cache {
            rc.invalidate(self.read_cache_id(base));
        }
    }

    fn read_cache_id(&self, base: u64) -> u64 {
        match &self.read_cache {
            Some((_, log_id)) => (log_id << 40) | (base & 0xFF_FFFF_FFFF),
            None => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_sim::clock::SimClock;
    use liquid_sim::pagecache::{PageCache, PageCacheConfig};

    fn log_with(segment_bytes: u64) -> (Log, SimClock) {
        let clock = SimClock::new(0);
        let cfg = LogConfig {
            segment_bytes,
            index_interval_bytes: 256,
            ..LogConfig::default()
        };
        (Log::open(cfg, clock.shared()).unwrap(), clock)
    }

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    #[test]
    fn append_read_roundtrip() {
        let (mut log, _) = log_with(1 << 20);
        for i in 0..100 {
            let off = log
                .append(Some(b(&format!("k{i}"))), b(&format!("v{i}")))
                .unwrap();
            assert_eq!(off, i);
        }
        let out = log.read(0, u64::MAX).unwrap();
        assert_eq!(out.records.len(), 100);
        assert_eq!(out.records[37].value, b("v37"));
        let mid = log.read(50, u64::MAX).unwrap();
        assert_eq!(mid.records.len(), 50);
        assert_eq!(mid.records[0].offset, 50);
    }

    #[test]
    fn rolls_segments_at_threshold() {
        let (mut log, _) = log_with(256);
        for i in 0..100 {
            log.append(None, b(&format!("value-{i:04}"))).unwrap();
        }
        assert!(log.segment_count() > 1, "should have rolled");
        // Reads spanning segments still return everything.
        let out = log.read(0, u64::MAX).unwrap();
        assert_eq!(out.records.len(), 100);
    }

    #[test]
    fn tail_read_is_empty_not_error() {
        let (mut log, _) = log_with(1 << 20);
        log.append(None, b("x")).unwrap();
        let out = log.read(1, u64::MAX).unwrap();
        assert!(out.records.is_empty());
    }

    #[test]
    fn out_of_range_read_errors() {
        let (mut log, _) = log_with(1 << 20);
        log.append(None, b("x")).unwrap();
        assert!(matches!(
            log.read(5, 1),
            Err(LogError::OffsetOutOfRange { end: 1, .. })
        ));
    }

    #[test]
    fn timestamps_support_rewind_by_time() {
        let (mut log, clock) = log_with(512);
        for i in 0..50 {
            clock.set(i * 100);
            log.append(None, b(&format!("v{i}"))).unwrap();
        }
        assert_eq!(log.offset_for_timestamp(0).unwrap(), Some(0));
        assert_eq!(log.offset_for_timestamp(2_000).unwrap(), Some(20));
        assert_eq!(log.offset_for_timestamp(2_050).unwrap(), Some(21));
        assert_eq!(log.offset_for_timestamp(1_000_000).unwrap(), None);
    }

    #[test]
    fn retention_by_age_deletes_old_segments() {
        let clock = SimClock::new(0);
        let cfg = LogConfig {
            segment_bytes: 256,
            retention: RetentionPolicy::DropByAge {
                max_age_ms: 1_000,
                max_bytes: None,
            },
            ..LogConfig::default()
        };
        let mut log = Log::open(cfg, clock.shared()).unwrap();
        for i in 0..50 {
            log.append(None, b(&format!("value-{i:05}"))).unwrap();
        }
        let before = log.segment_count();
        assert!(before > 2);
        clock.advance(10_000);
        // New appends after the gap: old segments now out of window.
        for i in 0..10 {
            log.append(None, b(&format!("new-{i}"))).unwrap();
        }
        let deleted = log.enforce_retention().unwrap();
        assert!(!deleted.is_empty());
        assert!(log.start_offset() > 0);
        // Reading from before the start offset now fails.
        assert!(log.read(0, 1).is_err());
        // Reading from the start offset works.
        assert!(log.read(log.start_offset(), u64::MAX).is_ok());
    }

    #[test]
    fn retention_by_size_bounds_log() {
        let clock = SimClock::new(0);
        let cfg = LogConfig {
            segment_bytes: 512,
            retention: RetentionPolicy::DropByBytes { max_bytes: 2_048 },
            ..LogConfig::default()
        };
        let mut log = Log::open(cfg, clock.shared()).unwrap();
        for i in 0..500 {
            log.append(None, b(&format!("value-{i:06}"))).unwrap();
        }
        log.enforce_retention().unwrap();
        assert!(
            log.size_bytes() <= 2_048 + 512,
            "size {} should be bounded",
            log.size_bytes()
        );
        assert!(log.start_offset() > 0);
    }

    #[test]
    fn retention_never_deletes_active_segment() {
        let clock = SimClock::new(0);
        let cfg = LogConfig {
            segment_bytes: 1 << 20, // everything fits in the active segment
            retention: RetentionPolicy::DropByAge {
                max_age_ms: 1,
                max_bytes: Some(1),
            },
            ..LogConfig::default()
        };
        let mut log = Log::open(cfg, clock.shared()).unwrap();
        for _ in 0..10 {
            log.append(None, b("x")).unwrap();
        }
        clock.advance(1_000_000);
        let deleted = log.enforce_retention().unwrap();
        assert!(deleted.is_empty());
        assert_eq!(log.read(0, u64::MAX).unwrap().records.len(), 10);
    }

    #[test]
    fn truncate_to_discards_suffix() {
        let (mut log, _) = log_with(256);
        for i in 0..50 {
            log.append(None, b(&format!("value-{i:04}"))).unwrap();
        }
        let dropped = log.truncate_to(20).unwrap();
        assert_eq!(dropped, 30);
        assert_eq!(log.next_offset(), 20);
        assert_eq!(log.read(0, u64::MAX).unwrap().records.len(), 20);
        // Appends continue from the truncation point.
        let off = log.append(None, b("after")).unwrap();
        assert_eq!(off, 20);
    }

    #[test]
    fn file_backed_log_recovers_after_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "liquid-log-recover-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let cfg = LogConfig {
            segment_bytes: 256,
            storage: StorageKind::Files(dir.clone()),
            ..LogConfig::default()
        };
        let clock = SimClock::new(0);
        {
            let mut log = Log::open(cfg.clone(), clock.shared()).unwrap();
            for i in 0..30 {
                log.append(Some(b(&format!("k{i}"))), b(&format!("v{i}")))
                    .unwrap();
            }
            log.flush().unwrap();
        }
        let log = Log::open(cfg, clock.shared()).unwrap();
        assert_eq!(log.next_offset(), 30);
        let out = log.read(0, u64::MAX).unwrap();
        assert_eq!(out.records.len(), 30);
        assert_eq!(out.records[29].value, b("v29"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn page_cache_charging_hot_vs_cold() {
        let clock = SimClock::new(0);
        let cache = Arc::new(Mutex::new(
            "log.pagecache",
            PageCache::new(
                PageCacheConfig {
                    capacity_pages: 8,
                    prefetch_pages: 0,
                    ..PageCacheConfig::default()
                },
                clock.shared(),
            ),
        ));
        let cfg = LogConfig {
            segment_bytes: 4096,
            ..LogConfig::default()
        };
        let mut log = Log::open(cfg, clock.shared()).unwrap();
        log.attach_cache(cache, 1);
        let payload = "p".repeat(1024);
        for _ in 0..200 {
            log.append(None, b(&payload)).unwrap();
        }
        // Tail read (hot) vs rewind read (cold).
        let tail = log.read(log.next_offset() - 2, u64::MAX).unwrap();
        let cold = log.read(0, 2048).unwrap();
        assert!(
            cold.simulated_cost_ns > tail.simulated_cost_ns,
            "cold {} should exceed hot {}",
            cold.simulated_cost_ns,
            tail.simulated_cost_ns
        );
    }

    #[test]
    fn batch_append_returns_first_offset() {
        let (mut log, _) = log_with(1 << 20);
        log.append(None, b("pre")).unwrap();
        let first = log
            .append_batch(vec![(None, b("a")), (None, b("b")), (None, b("c"))])
            .unwrap();
        assert_eq!(first, 1);
        assert_eq!(log.next_offset(), 4);
    }

    #[test]
    fn retention_policy_builders_compose() {
        let p = RetentionPolicy::keep_forever();
        assert_eq!(p, RetentionPolicy::KeepAll);
        assert_eq!(p.max_age_ms(), None);
        assert_eq!(p.max_bytes(), None);
        assert!(!p.is_compacted());
        let aged = p.with_max_age_ms(1_000);
        assert_eq!(aged.max_age_ms(), Some(1_000));
        let both = aged.with_max_bytes(2_048);
        assert_eq!(
            both,
            RetentionPolicy::DropByAge {
                max_age_ms: 1_000,
                max_bytes: Some(2_048),
            }
        );
        // Compacting carries the bounds along; adding bounds to a
        // compacted policy keeps it compacted.
        let compact = both.compacted();
        assert!(compact.is_compacted());
        assert_eq!(compact.max_age_ms(), Some(1_000));
        assert_eq!(compact.max_bytes(), Some(2_048));
        let compact2 = RetentionPolicy::KeepAll.compacted().with_max_bytes(512);
        assert!(compact2.is_compacted());
        assert_eq!(compact2.max_bytes(), Some(512));
        // Switching from bytes-only to an age bound keeps the bytes.
        let switched = RetentionPolicy::DropByBytes { max_bytes: 9 }.with_max_age_ms(7);
        assert_eq!(
            switched,
            RetentionPolicy::DropByAge {
                max_age_ms: 7,
                max_bytes: Some(9),
            }
        );
    }

    #[test]
    fn retention_policy_validation_rejects_zero_bounds() {
        assert!(RetentionPolicy::KeepAll.validate().is_ok());
        assert!(RetentionPolicy::DropByBytes { max_bytes: 1 }
            .validate()
            .is_ok());
        assert!(RetentionPolicy::DropByBytes { max_bytes: 0 }
            .validate()
            .is_err());
        assert!(RetentionPolicy::DropByAge {
            max_age_ms: 0,
            max_bytes: None,
        }
        .validate()
        .is_err());
        assert!(RetentionPolicy::Compact {
            max_age_ms: None,
            max_bytes: Some(0),
        }
        .validate()
        .is_err());
    }

    #[test]
    fn time_based_roll_partitions_segments_by_age() {
        let clock = SimClock::new(0);
        let cfg = LogConfig {
            segment_bytes: 1 << 30, // size never triggers
            segment_ms: Some(1_000),
            ..LogConfig::default()
        };
        let mut log = Log::open(cfg, clock.shared()).unwrap();
        for i in 0..10 {
            clock.set(i * 400);
            log.append(None, b(&format!("v{i}"))).unwrap();
        }
        assert!(
            log.segment_count() >= 3,
            "expected time-based rolls, got {} segments",
            log.segment_count()
        );
        // Every sealed segment spans at most segment_ms plus one append
        // interval (the roll happens on the append after expiry).
        for seg in log.segments().values().filter(|s| s.is_sealed()) {
            let (min, max) = seg.time_range().unwrap();
            assert!(max - min <= 1_400, "segment spans {} ms", max - min);
        }
        let out = log.read(0, u64::MAX).unwrap();
        assert_eq!(out.records.len(), 10);
    }

    #[test]
    fn time_based_roll_never_rolls_empty_segments() {
        let clock = SimClock::new(0);
        let cfg = LogConfig {
            segment_bytes: 1 << 30,
            segment_ms: Some(10),
            ..LogConfig::default()
        };
        let mut log = Log::open(cfg, clock.shared()).unwrap();
        clock.advance(1_000_000); // long idle gap, nothing to roll
        log.append(None, b("first")).unwrap();
        assert_eq!(log.segment_count(), 1);
    }

    #[test]
    fn read_cache_serves_sealed_segments() {
        use crate::cache::{ReadCacheConfig, SegmentReadCache};
        let obs = Obs::default();
        let cache = SegmentReadCache::new(ReadCacheConfig {
            capacity_bytes: 1 << 20,
            shards: 4,
            obs: obs.clone(),
        });
        let clock = SimClock::new(0);
        let cfg = LogConfig {
            segment_bytes: 256,
            index_interval_bytes: 128,
            ..LogConfig::default()
        };
        let mut log = Log::open(cfg, clock.shared()).unwrap();
        log.attach_read_cache(cache, 1);
        for i in 0..60 {
            log.append(Some(b(&format!("k{i}"))), b(&format!("value-{i:04}")))
                .unwrap();
        }
        assert!(log.segment_count() > 2);
        let cold = log.read(0, u64::MAX).unwrap();
        assert_eq!(cold.records.len(), 60);
        let snapshot = obs.snapshot();
        let misses = snapshot.counter("log.cache.miss");
        assert!(misses > 0, "first sweep should miss");
        let hot = log.read(0, u64::MAX).unwrap();
        assert_eq!(hot.records.len(), 60);
        let snapshot = obs.snapshot();
        assert!(
            snapshot.counter("log.cache.hit") > 0,
            "second sweep should hit"
        );
        assert_eq!(
            snapshot.counter("log.cache.miss"),
            misses,
            "second sweep should add no misses"
        );
        // Byte-for-byte identical to the uncached read.
        for (a, c) in hot.records.iter().zip(cold.records.iter()) {
            assert_eq!(a.offset, c.offset);
            assert_eq!(a.key, c.key);
            assert_eq!(a.value, c.value);
        }
    }

    #[test]
    fn read_cache_is_invalidated_by_retention_and_truncation() {
        use crate::cache::{ReadCacheConfig, SegmentReadCache};
        let obs = Obs::default();
        let cache = SegmentReadCache::new(ReadCacheConfig {
            capacity_bytes: 1 << 20,
            shards: 2,
            obs: obs.clone(),
        });
        let clock = SimClock::new(0);
        let cfg = LogConfig {
            segment_bytes: 256,
            retention: RetentionPolicy::DropByBytes { max_bytes: 1_024 },
            ..LogConfig::default()
        };
        let mut log = Log::open(cfg, clock.shared()).unwrap();
        log.attach_read_cache(cache.clone(), 7);
        for i in 0..200 {
            log.append(None, b(&format!("value-{i:06}"))).unwrap();
        }
        log.read(0, u64::MAX).unwrap(); // warm the cache
        let warm = cache.cached_bytes();
        assert!(warm > 0);
        let deleted = log.enforce_retention().unwrap();
        assert!(!deleted.is_empty());
        assert!(
            cache.cached_bytes() < warm,
            "retention must invalidate dropped segments"
        );
        // Reads after retention resume at the new start and never see
        // retired records.
        let out = log.read(log.start_offset(), u64::MAX).unwrap();
        assert!(out.records.iter().all(|r| r.offset >= log.start_offset()));
        // Truncation invalidates too.
        let before = cache.cached_bytes();
        log.read(log.start_offset(), u64::MAX).unwrap();
        log.truncate_to(log.start_offset()).unwrap();
        assert!(cache.cached_bytes() <= before);
    }

    #[test]
    fn record_count_and_sizes() {
        let (mut log, _) = log_with(128);
        for i in 0..20 {
            log.append(None, b(&format!("v{i}"))).unwrap();
        }
        assert_eq!(log.record_count(), 20);
        assert!(log.size_bytes() > 0);
        assert!(!log.sealed_segment_info().is_empty());
    }
}
