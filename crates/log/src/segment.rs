//! Log segments.
//!
//! A segment stores a contiguous run of records beginning at its *base
//! offset*. The active (last) segment accepts appends; older segments are
//! sealed and immutable, which is what makes whole-segment deletion
//! (retention) and rewriting (compaction) safe and cheap.
//!
//! Each segment maintains:
//! * a **sparse offset index** — `(offset, byte position)` entries added
//!   every `index_interval_bytes` of appended data, so a read seeks near
//!   the requested offset and scans at most one interval;
//! * a **time index** — `(timestamp, offset)` entries with monotonically
//!   increasing timestamps, supporting offset-for-timestamp queries
//!   (rewindability, §3.1).

use liquid_sim::clock::Ts;

use crate::error::LogError;
use crate::record::Record;
use crate::storage::SegmentStorage;

/// Result of a ranged read, carrying enough information for the caller
/// to charge a page-cache model.
#[derive(Debug)]
pub struct SegmentRead {
    /// Decoded records, starting at the requested offset.
    pub records: Vec<Record>,
    /// Byte position in the segment where scanning started.
    pub start_pos: u64,
    /// Bytes scanned (index seek + record decode).
    pub bytes_scanned: u64,
}

/// One segment of the log.
pub struct Segment {
    base_offset: u64,
    next_offset: u64,
    storage: Box<dyn SegmentStorage>,
    /// Sparse `(offset, position)` pairs; always contains `(base, 0)`
    /// once the first record is appended.
    index: Vec<(u64, u64)>,
    /// `(timestamp, offset)` pairs with strictly increasing timestamps.
    time_index: Vec<(Ts, u64)>,
    bytes_since_index: u64,
    index_interval_bytes: u64,
    min_timestamp: Option<Ts>,
    max_timestamp: Ts,
    records: u64,
    sealed: bool,
}

impl Segment {
    /// Creates an empty segment starting at `base_offset`.
    pub fn new(
        base_offset: u64,
        storage: Box<dyn SegmentStorage>,
        index_interval_bytes: u64,
    ) -> Self {
        Segment {
            base_offset,
            next_offset: base_offset,
            storage,
            index: Vec::new(),
            time_index: Vec::new(),
            bytes_since_index: 0,
            index_interval_bytes: index_interval_bytes.max(1),
            min_timestamp: None,
            max_timestamp: 0,
            records: 0,
            sealed: false,
        }
    }

    /// Rebuilds a segment by scanning existing storage from byte 0
    /// (restart recovery). Stops at the first corrupt/truncated record,
    /// truncating storage there (torn final write).
    pub fn recover(
        base_offset: u64,
        storage: Box<dyn SegmentStorage>,
        index_interval_bytes: u64,
    ) -> crate::Result<Self> {
        let mut seg = Segment::new(base_offset, storage, index_interval_bytes);
        let total = seg.storage.len();
        let mut pos = 0u64;
        while pos < total {
            let remaining = total.saturating_sub(pos) as usize;
            let chunk = seg.storage.read_at(pos, remaining)?;
            match Record::decode(&chunk) {
                Ok((rec, used)) => {
                    seg.note_appended(&rec, pos, used as u64);
                    pos = pos.saturating_add(used as u64);
                }
                Err(_) => {
                    // Torn tail: discard everything from here.
                    seg.storage.truncate(pos)?;
                    break;
                }
            }
        }
        Ok(seg)
    }

    /// First offset in this segment.
    pub fn base_offset(&self) -> u64 {
        self.base_offset
    }

    /// Offset the next appended record will receive.
    pub fn next_offset(&self) -> u64 {
        self.next_offset
    }

    /// Number of records in the segment. After compaction offsets are
    /// sparse, so this is tracked explicitly rather than derived from the
    /// offset range.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.storage.len()
    }

    /// Largest record timestamp seen (0 if empty). Retention uses this:
    /// a segment is deletable once its newest record is out of window.
    pub fn max_timestamp(&self) -> Ts {
        self.max_timestamp
    }

    /// The `(oldest, newest)` record timestamps, or `None` if the
    /// segment is empty — the time range this segment partitions.
    /// Recovery replays appends, so reopened segments keep their range.
    pub fn time_range(&self) -> Option<(Ts, Ts)> {
        self.min_timestamp.map(|min| (min, self.max_timestamp))
    }

    /// Whether the segment has been sealed against appends.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Seals the segment; subsequent appends panic.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Number of sparse-index entries (exposed for the index-granularity
    /// ablation).
    pub fn index_entries(&self) -> usize {
        self.index.len()
    }

    /// Appends a record whose `offset` must equal [`next_offset`]
    /// (offsets are assigned by the owning [`Log`](crate::Log)).
    /// Returns `(byte position, encoded length)`.
    ///
    /// [`next_offset`]: Self::next_offset
    pub fn append(&mut self, record: &Record) -> crate::Result<(u64, u64)> {
        assert!(!self.sealed, "append to sealed segment");
        assert!(
            record.offset >= self.next_offset,
            "segment offsets must increase: {} < {}",
            record.offset,
            self.next_offset
        );
        let mut buf = Vec::with_capacity(record.wire_size());
        record.encode(&mut buf);
        let pos = self.storage.append(&buf)?;
        self.note_appended(record, pos, buf.len() as u64);
        Ok((pos, buf.len() as u64))
    }

    fn note_appended(&mut self, record: &Record, pos: u64, len: u64) {
        if self.index.is_empty() || self.bytes_since_index >= self.index_interval_bytes {
            self.index.push((record.offset, pos));
            self.bytes_since_index = 0;
        }
        self.bytes_since_index += len;
        self.min_timestamp = Some(match self.min_timestamp {
            Some(min) => min.min(record.timestamp),
            None => record.timestamp,
        });
        if record.timestamp > self.max_timestamp {
            self.max_timestamp = record.timestamp;
            match self.time_index.last() {
                Some(&(last_ts, _)) if record.timestamp <= last_ts => {}
                _ => self.time_index.push((record.timestamp, record.offset)),
            }
        }
        // Saturate rather than wrap: a wrapped next_offset would silently
        // re-assign offset 0 and corrupt the log's dense-offset invariant.
        self.next_offset = record.offset.saturating_add(1);
        self.records += 1;
    }

    /// Byte position where a scan for `offset` should begin, via the
    /// sparse index.
    pub fn seek_position(&self, offset: u64) -> u64 {
        match self.index.binary_search_by_key(&offset, |&(o, _)| o) {
            // A miss falls back to byte 0: scanning from the segment
            // start is always correct, just slower.
            Ok(i) => self.index.get(i).map_or(0, |&(_, p)| p),
            Err(0) => 0,
            Err(i) => self.index.get(i.saturating_sub(1)).map_or(0, |&(_, p)| p),
        }
    }

    /// Reads records starting at `offset` until `max_bytes` of encoded
    /// data have been returned (at least one record if any remain).
    pub fn read_from(&self, offset: u64, max_bytes: u64) -> crate::Result<SegmentRead> {
        if offset < self.base_offset || offset > self.next_offset {
            return Err(LogError::OffsetOutOfRange {
                requested: offset,
                start: self.base_offset,
                end: self.next_offset,
            });
        }
        let start_pos = self.seek_position(offset);
        let total = self.storage.len();
        let mut pos = start_pos;
        let mut out = Vec::new();
        let mut returned_bytes = 0u64;
        while pos < total {
            let remaining = total.saturating_sub(pos) as usize;
            let chunk = self.storage.read_at(pos, remaining.min(64 * 1024))?;
            let (rec, used) = match Record::decode(&chunk) {
                Ok(ok) => ok,
                Err(LogError::Corrupt(_)) if chunk.len() < remaining => {
                    // Record longer than our probe window: read it fully.
                    let chunk = self.storage.read_at(pos, remaining)?;
                    Record::decode(&chunk)?
                }
                Err(e) => return Err(e),
            };
            if rec.offset >= offset {
                returned_bytes = returned_bytes.saturating_add(used as u64);
                out.push(rec);
                if returned_bytes >= max_bytes {
                    pos = pos.saturating_add(used as u64);
                    break;
                }
            }
            pos = pos.saturating_add(used as u64);
        }
        Ok(SegmentRead {
            records: out,
            start_pos,
            bytes_scanned: pos.saturating_sub(start_pos),
        })
    }

    /// First offset whose record timestamp is `>= ts`, if any.
    pub fn offset_for_timestamp(&self, ts: Ts) -> crate::Result<Option<u64>> {
        // Find the latest time-index entry strictly before ts to bound
        // the scan, then walk records.
        let start_offset = match self.time_index.binary_search_by_key(&ts, |&(t, _)| t) {
            Ok(i) => return Ok(self.time_index.get(i).map(|&(_, o)| o)),
            Err(0) => self.base_offset,
            Err(i) => self
                .time_index
                .get(i - 1)
                .map_or(self.base_offset, |&(_, o)| o),
        };
        let mut offset = start_offset;
        while offset < self.next_offset {
            let read = self.read_from(offset, 1)?;
            match read.records.first() {
                Some(rec) if rec.timestamp >= ts => return Ok(Some(rec.offset)),
                Some(rec) => {
                    offset = rec.offset.checked_add(1).ok_or(LogError::OffsetOverflow {
                        what: "advancing the timestamp scan past a record",
                        value: rec.offset,
                    })?;
                }
                None => break,
            }
        }
        Ok(None)
    }

    /// Flushes the underlying storage.
    pub fn flush(&mut self) -> crate::Result<()> {
        self.storage.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use bytes::Bytes;

    fn seg(interval: u64) -> Segment {
        Segment::new(100, Box::new(MemStorage::new()), interval)
    }

    fn rec(offset: u64, ts: Ts, val: &str) -> Record {
        Record {
            offset,
            timestamp: ts,
            key: Some(Bytes::from(format!("k{offset}"))),
            value: Bytes::from(val.to_string()),
        }
    }

    #[test]
    fn append_assigns_dense_offsets() {
        let mut s = seg(1024);
        for i in 0..10 {
            s.append(&rec(100 + i, i, "v")).unwrap();
        }
        assert_eq!(s.base_offset(), 100);
        assert_eq!(s.next_offset(), 110);
        assert_eq!(s.record_count(), 10);
    }

    #[test]
    fn next_offset_saturates_instead_of_wrapping_at_max() {
        // Regression: `next_offset = offset + 1` used to wrap to 0 for a
        // record at u64::MAX, silently re-opening the offset space and
        // breaking the monotonic-offset invariant.
        let mut s = Segment::new(u64::MAX, Box::new(MemStorage::new()), 1024);
        s.append(&rec(u64::MAX, 7, "last")).unwrap();
        assert_eq!(s.next_offset(), u64::MAX, "must saturate, not wrap to 0");
        assert_eq!(s.record_count(), 1);
        // The saturated bound also keeps the timestamp scan from running
        // off the end of the offset space.
        assert!(s.offset_for_timestamp(100).unwrap().is_none());
    }

    #[test]
    fn seek_position_misses_fall_back_to_safe_scan_starts() {
        // Regression: index binary-search misses used to index with the
        // raw Err(i) result; now every miss maps to a position that is
        // correct to scan from (0 or the last entry at or before it).
        let mut s = seg(1); // index every record
        for i in 0..5 {
            s.append(&rec(100 + i, i, "v")).unwrap();
        }
        assert_eq!(s.seek_position(0), 0, "before the first entry");
        let last = s.seek_position(104);
        // Far past the end: clamp to the last indexed position.
        assert_eq!(s.seek_position(u64::MAX), last);
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn append_rejects_regressing_offset() {
        let mut s = seg(1024);
        s.append(&rec(105, 0, "v")).unwrap();
        s.append(&rec(100, 0, "v")).unwrap();
    }

    #[test]
    fn append_allows_offset_gaps_for_compaction() {
        let mut s = seg(1024);
        s.append(&rec(100, 0, "a")).unwrap();
        s.append(&rec(107, 1, "b")).unwrap();
        assert_eq!(s.record_count(), 2);
        assert_eq!(s.next_offset(), 108);
        // Reading from inside the gap yields the next present record.
        let r = s.read_from(103, u64::MAX).unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].offset, 107);
    }

    #[test]
    fn read_from_start_and_middle() {
        let mut s = seg(64);
        for i in 0..20 {
            s.append(&rec(100 + i, i, &format!("value-{i}"))).unwrap();
        }
        let all = s.read_from(100, u64::MAX).unwrap();
        assert_eq!(all.records.len(), 20);
        let mid = s.read_from(110, u64::MAX).unwrap();
        assert_eq!(mid.records.len(), 10);
        assert_eq!(mid.records[0].offset, 110);
    }

    #[test]
    fn read_respects_max_bytes() {
        let mut s = seg(1024);
        for i in 0..10 {
            s.append(&rec(100 + i, i, "0123456789")).unwrap();
        }
        let one = s.read_from(100, 1).unwrap();
        assert_eq!(one.records.len(), 1, "must return at least one record");
        let some = s.read_from(100, 100).unwrap();
        assert!(some.records.len() < 10 && !some.records.is_empty());
    }

    #[test]
    fn read_at_log_end_is_empty() {
        let mut s = seg(1024);
        s.append(&rec(100, 0, "v")).unwrap();
        let r = s.read_from(101, u64::MAX).unwrap();
        assert!(r.records.is_empty());
    }

    #[test]
    fn read_out_of_range_errors() {
        let s = seg(1024);
        assert!(matches!(
            s.read_from(99, 1),
            Err(LogError::OffsetOutOfRange { .. })
        ));
        assert!(matches!(
            s.read_from(101, 1),
            Err(LogError::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn sparse_index_bounds_scan() {
        let mut s = seg(64);
        for i in 0..100 {
            s.append(&rec(100 + i, i, "xxxxxxxxxxxxxxxx")).unwrap();
        }
        assert!(s.index_entries() > 1, "interval should create entries");
        assert!(s.index_entries() < 100, "index must stay sparse");
        // Seek position for a late offset should be well past byte 0.
        assert!(s.seek_position(190) > 0);
        let r = s.read_from(190, u64::MAX).unwrap();
        assert_eq!(r.records[0].offset, 190);
        // The scan should not have started at position zero.
        assert!(r.start_pos > 0);
    }

    #[test]
    fn offset_for_timestamp_finds_first_at_or_after() {
        let mut s = seg(64);
        for i in 0..50 {
            s.append(&rec(100 + i, i * 10, "v")).unwrap();
        }
        assert_eq!(s.offset_for_timestamp(0).unwrap(), Some(100));
        assert_eq!(s.offset_for_timestamp(100).unwrap(), Some(110));
        assert_eq!(s.offset_for_timestamp(101).unwrap(), Some(111));
        assert_eq!(s.offset_for_timestamp(495).unwrap(), None);
    }

    #[test]
    fn max_timestamp_tracks_largest() {
        let mut s = seg(1024);
        s.append(&rec(100, 50, "v")).unwrap();
        s.append(&rec(101, 20, "v")).unwrap(); // out of order
        s.append(&rec(102, 80, "v")).unwrap();
        assert_eq!(s.max_timestamp(), 80);
    }

    #[test]
    fn time_range_spans_oldest_to_newest() {
        let mut s = seg(1024);
        assert_eq!(s.time_range(), None);
        s.append(&rec(100, 50, "v")).unwrap();
        assert_eq!(s.time_range(), Some((50, 50)));
        s.append(&rec(101, 20, "v")).unwrap(); // out of order
        s.append(&rec(102, 80, "v")).unwrap();
        assert_eq!(s.time_range(), Some((20, 80)));
    }

    #[test]
    fn recover_restores_time_range() {
        let mut storage = MemStorage::new();
        let mut buf = Vec::new();
        for i in 0..5u64 {
            rec(200 + i, 10 + i * 7, "val").encode(&mut buf);
        }
        storage.append(&buf).unwrap();
        let s = Segment::recover(200, Box::new(storage), 64).unwrap();
        assert_eq!(s.time_range(), Some((10, 38)));
    }

    #[test]
    fn seal_blocks_appends() {
        let mut s = seg(1024);
        s.append(&rec(100, 0, "v")).unwrap();
        s.seal();
        assert!(s.is_sealed());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.append(&rec(101, 0, "v")).ok();
        }));
        assert!(result.is_err());
    }

    #[test]
    fn recover_rebuilds_from_bytes() {
        let mut storage = MemStorage::new();
        let mut buf = Vec::new();
        for i in 0..5u64 {
            rec(200 + i, i, "val").encode(&mut buf);
        }
        storage.append(&buf).unwrap();
        let s = Segment::recover(200, Box::new(storage), 64).unwrap();
        assert_eq!(s.next_offset(), 205);
        let r = s.read_from(202, u64::MAX).unwrap();
        assert_eq!(r.records.len(), 3);
    }

    #[test]
    fn recover_truncates_torn_tail() {
        let mut storage = MemStorage::new();
        let mut buf = Vec::new();
        for i in 0..3u64 {
            rec(i, i, "val").encode(&mut buf);
        }
        // Simulate a torn write: half a record at the end.
        let mut torn = Vec::new();
        rec(3, 3, "val").encode(&mut torn);
        buf.extend_from_slice(&torn[..torn.len() / 2]);
        storage.append(&buf).unwrap();
        let s = Segment::recover(0, Box::new(storage), 64).unwrap();
        assert_eq!(s.next_offset(), 3, "torn record must be dropped");
    }

    #[test]
    fn large_record_spanning_probe_window() {
        let mut s = seg(1024);
        let big = "x".repeat(200 * 1024); // bigger than the 64 KiB probe
        s.append(&Record {
            offset: 100,
            timestamp: 1,
            key: None,
            value: Bytes::from(big.clone()),
        })
        .unwrap();
        let r = s.read_from(100, u64::MAX).unwrap();
        assert_eq!(r.records[0].value.len(), big.len());
    }
}
