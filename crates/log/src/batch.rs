//! Record batches: the unit of the batched hot path (§3.1 throughput).
//!
//! A [`RecordBatch`] is an ordered run of [`Record`]s that travels the
//! produce → append → replicate → fetch → deliver pipeline as one unit.
//! Payloads are ref-counted [`Bytes`] slices, so the bytes of a message
//! are copied exactly once — into the [`BatchBuilder`]'s arena at
//! produce time (or adopted as-is when the caller already holds
//! `Bytes`) — and every later hop shares them by reference count.
//!
//! Batches are *observationally transparent*: appending a batch yields
//! the same log as appending its records one by one, and splitting or
//! merging batches at any boundary changes nothing a reader can see.
//! The batch-semantics proptests in `tests/properties.rs` hold the
//! implementation to that contract.

use bytes::Bytes;
use liquid_sim::clock::Ts;

use crate::record::Record;

/// An ordered run of records moving through the hot path as one unit.
///
/// Records inside a batch have not necessarily been assigned offsets
/// yet: a producer-side batch carries offset 0 on every record until
/// [`Log::append_record_batch`](crate::Log::append_record_batch)
/// assigns the real ones; a batch built from a fetch carries the
/// offsets the log assigned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordBatch {
    records: Vec<Record>,
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RecordBatch::default()
    }

    /// Starts an arena-backed builder: every pushed key/value is copied
    /// once into one contiguous buffer shared by all records.
    pub fn builder() -> BatchBuilder {
        BatchBuilder::default()
    }

    /// Adopts `(key, value)` pairs without copying — the payloads keep
    /// whatever buffers they already share. All records get `timestamp`.
    pub fn from_pairs(pairs: Vec<(Option<Bytes>, Bytes)>, timestamp: Ts) -> Self {
        RecordBatch {
            records: pairs
                .into_iter()
                .map(|(key, value)| Record::new(key, value, timestamp))
                .collect(),
        }
    }

    /// Wraps already-materialized records (e.g. a replication fetch)
    /// without copying payload bytes.
    pub fn from_records(records: Vec<Record>) -> Self {
        RecordBatch { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sum of payload (value) bytes across the batch.
    pub fn payload_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.value.len() as u64).sum()
    }

    /// Sum of serialized record sizes (what an append will write).
    pub fn wire_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.wire_size() as u64).sum()
    }

    /// Offset of the first record, if any (meaningful after append).
    pub fn base_offset(&self) -> Option<u64> {
        self.records.first().map(|r| r.offset)
    }

    /// The records, in order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the batch into its records (payloads still shared).
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    /// Appends a record to the batch.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// Re-stamps every record with `timestamp` (broker-assigned time at
    /// append, matching the unbatched produce path). Payloads are
    /// untouched — no bytes are copied.
    pub fn stamped(mut self, timestamp: Ts) -> Self {
        for r in &mut self.records {
            r.timestamp = timestamp;
        }
        self
    }

    /// Splits into `[0, mid)` and `[mid, len)` without copying payload
    /// bytes. Appending the two halves in order is observationally
    /// identical to appending the original.
    ///
    /// # Panics
    ///
    /// Panics if `mid > len` (same contract as `slice::split_at`).
    pub fn split_at(mut self, mid: usize) -> (RecordBatch, RecordBatch) {
        let tail = self.records.split_off(mid);
        (self, RecordBatch { records: tail })
    }

    /// Concatenates `other` after `self` without copying payload bytes.
    pub fn merge(mut self, other: RecordBatch) -> RecordBatch {
        self.records.extend(other.records);
        self
    }

    /// Iterates the records lazily (consumer-side decomposition).
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }
}

impl IntoIterator for RecordBatch {
    type Item = Record;
    type IntoIter = std::vec::IntoIter<Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a> IntoIterator for &'a RecordBatch {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Accumulates records into one contiguous arena, so a message's bytes
/// are copied exactly once at produce time and shared (ref-counted) by
/// every later hop. [`BatchBuilder::build`] freezes the arena into a
/// single [`Bytes`] and hands each record zero-copy slices of it.
#[derive(Debug, Default)]
pub struct BatchBuilder {
    arena: Vec<u8>,
    entries: Vec<BatchEntry>,
}

/// Arena coordinates of one pending record: optional key range, value
/// range, timestamp.
type BatchEntry = (Option<(usize, usize)>, (usize, usize), Ts);

impl BatchBuilder {
    /// Copies `key`/`value` into the arena (the single produce-time
    /// copy) and schedules a record carrying `timestamp`.
    pub fn push(&mut self, key: Option<&[u8]>, value: &[u8], timestamp: Ts) -> &mut Self {
        let key_range = key.map(|k| {
            let lo = self.arena.len();
            self.arena.extend_from_slice(k);
            (lo, self.arena.len())
        });
        let lo = self.arena.len();
        self.arena.extend_from_slice(value);
        let value_range = (lo, self.arena.len());
        self.entries.push((key_range, value_range, timestamp));
        self
    }

    /// Records accumulated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Arena bytes accumulated so far (size-threshold checks).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Freezes the arena and builds the batch: every key and value is a
    /// zero-copy slice of the one shared buffer.
    pub fn build(self) -> RecordBatch {
        let arena = Bytes::from(self.arena);
        RecordBatch {
            records: self
                .entries
                .into_iter()
                .map(|(key_range, (vlo, vhi), timestamp)| {
                    Record::new(
                        key_range.map(|(klo, khi)| arena.slice(klo..khi)),
                        arena.slice(vlo..vhi),
                        timestamp,
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    #[test]
    fn builder_copies_once_into_shared_arena() {
        let mut bb = RecordBatch::builder();
        bb.push(Some(b"k0"), b"value-zero", 1);
        bb.push(None, b"value-one", 2);
        bb.push(Some(b"k2"), b"value-two", 3);
        let batch = bb.build();
        assert_eq!(batch.len(), 3);
        // All slices point into one contiguous arena: consecutive
        // payloads are adjacent in memory.
        let r = batch.records();
        let k0 = r[0].key.as_ref().map(|k| k.as_slice().as_ptr());
        let v0 = r[0].value.as_slice().as_ptr();
        let v1 = r[1].value.as_slice().as_ptr();
        let base = k0.expect("keyed record");
        assert_eq!(ptr_distance(base, v0), 2, "key then value");
        assert_eq!(
            ptr_distance(v0, v1),
            "value-zero".len(),
            "arena is contiguous"
        );
        assert_eq!(r[0].timestamp, 1);
        assert_eq!(r[2].key.as_deref(), Some(b"k2".as_ref()));
    }

    // Pointer distance between two slices of the same allocation —
    // plain usize math on addresses.
    fn ptr_distance(lo: *const u8, hi: *const u8) -> usize {
        (hi as usize) - (lo as usize)
    }

    #[test]
    fn from_pairs_adopts_without_copy() {
        let v = b("shared-payload");
        let batch = RecordBatch::from_pairs(vec![(None, v.clone())], 9);
        // Zero-copy adoption: the record's value points at the same
        // backing memory as the caller's Bytes.
        assert_eq!(
            batch.records()[0].value.as_slice().as_ptr(),
            v.as_slice().as_ptr()
        );
        assert_eq!(batch.payload_bytes(), v.len() as u64);
    }

    #[test]
    fn split_and_merge_roundtrip() {
        let mut bb = RecordBatch::builder();
        for i in 0..10 {
            bb.push(None, format!("v{i}").as_bytes(), i);
        }
        let original = bb.build();
        for mid in 0..=original.len() {
            let (a, z) = original.clone().split_at(mid);
            assert_eq!(a.len(), mid);
            let back = a.merge(z);
            assert_eq!(back, original, "split at {mid} then merge is identity");
        }
    }

    #[test]
    fn sizes_and_iteration() {
        let batch = RecordBatch::from_pairs(vec![(Some(b("k")), b("vv")), (None, b("www"))], 0);
        assert_eq!(batch.payload_bytes(), 5);
        assert!(batch.wire_bytes() > batch.payload_bytes());
        let values: Vec<&[u8]> = batch.iter().map(|r| r.value.as_slice()).collect();
        assert_eq!(values, vec![b"vv".as_ref(), b"www".as_ref()]);
        assert_eq!(batch.clone().into_iter().count(), 2);
        assert!(RecordBatch::new().is_empty());
        assert_eq!(RecordBatch::new().base_offset(), None);
    }
}
