//! Pluggable segment storage.
//!
//! Two backends implement [`SegmentStorage`]:
//!
//! * [`MemStorage`] — a `Vec<u8>`; fast and deterministic, used by most
//!   tests and by experiments where the page-cache *model* supplies the
//!   I/O costs (charging real disk I/O would double-count).
//! * [`FileStorage`] — a real file using positional reads; used by the
//!   durability examples and recovery tests.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

/// Byte-level storage for one segment: append-at-end plus positional
/// reads.
pub trait SegmentStorage: Send + Sync {
    /// Appends `data`, returning the byte position it was written at.
    fn append(&mut self, data: &[u8]) -> io::Result<u64>;
    /// Reads exactly `len` bytes starting at `pos`. Short data is an
    /// error. Returns `Bytes` so decode can hand out zero-copy record
    /// slices of the chunk: the storage boundary is the *one* place the
    /// fetch path is allowed to copy, and each chunk copy is amortized
    /// across every record decoded from it.
    fn read_at(&self, pos: u64, len: usize) -> io::Result<Bytes>;
    /// Current size in bytes.
    fn len(&self) -> u64;
    /// Whether the storage is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Flushes buffered data to the backing medium.
    fn flush(&mut self) -> io::Result<()>;
    /// Truncates storage to `len` bytes (used when a replica discards a
    /// divergent suffix).
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// Which backend a log should create segments with.
#[derive(Debug, Clone)]
pub enum StorageKind {
    /// In-memory segments.
    Memory,
    /// File-backed segments under this directory, one file per segment
    /// named `<base_offset>.seg`.
    Files(PathBuf),
}

impl StorageKind {
    /// Creates storage for a segment with the given base offset.
    pub fn create(&self, base_offset: u64) -> io::Result<Box<dyn SegmentStorage>> {
        match self {
            StorageKind::Memory => Ok(Box::new(MemStorage::new())),
            StorageKind::Files(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("{base_offset:020}.seg"));
                Ok(Box::new(FileStorage::create(&path)?))
            }
        }
    }

    /// Removes the backing medium of a deleted segment, if any.
    pub fn destroy(&self, base_offset: u64) -> io::Result<()> {
        if let StorageKind::Files(dir) = self {
            let path = dir.join(format!("{base_offset:020}.seg"));
            if path.exists() {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// Lists base offsets of segments already on the medium (for log
    /// recovery after restart). Memory storage has none.
    pub fn existing_segments(&self) -> io::Result<Vec<u64>> {
        match self {
            StorageKind::Memory => Ok(Vec::new()),
            StorageKind::Files(dir) => {
                if !dir.exists() {
                    return Ok(Vec::new());
                }
                let mut bases = Vec::new();
                for entry in std::fs::read_dir(dir)? {
                    let entry = entry?;
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if let Some(stem) = name.strip_suffix(".seg") {
                        if let Ok(base) = stem.parse::<u64>() {
                            bases.push(base);
                        }
                    }
                }
                bases.sort_unstable();
                Ok(bases)
            }
        }
    }

    /// Opens existing storage for a segment (recovery path).
    pub fn open(&self, base_offset: u64) -> io::Result<Box<dyn SegmentStorage>> {
        match self {
            StorageKind::Memory => Ok(Box::new(MemStorage::new())),
            StorageKind::Files(dir) => {
                let path = dir.join(format!("{base_offset:020}.seg"));
                Ok(Box::new(FileStorage::open(&path)?))
            }
        }
    }
}

/// In-memory segment storage.
#[derive(Debug, Default)]
pub struct MemStorage {
    data: Vec<u8>,
}

impl MemStorage {
    /// New, empty storage.
    pub fn new() -> Self {
        MemStorage { data: Vec::new() }
    }
}

impl SegmentStorage for MemStorage {
    fn append(&mut self, data: &[u8]) -> io::Result<u64> {
        let pos = self.data.len() as u64;
        // lint:allow(hot-copy, reason=storage boundary: append copies the frame into the durable medium, the one sanctioned copy on the write path)
        self.data.extend_from_slice(data);
        Ok(pos)
    }

    fn read_at(&self, pos: u64, len: usize) -> io::Result<Bytes> {
        let start = pos as usize;
        let end = start
            .checked_add(len)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "overflow"))?;
        if end > self.data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("read [{start}, {end}) beyond len {}", self.data.len()),
            ));
        }
        // lint:allow(hot-copy, reason=storage boundary: one chunk copy out of the medium per read, amortized across every record decoded from the chunk)
        Ok(Bytes::copy_from_slice(&self.data[start..end]))
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // lint:allow(dropped-result, reason=this is std Vec::truncate returning unit, not the Result-returning Storage::truncate it shadows by name)
        self.data.truncate(len as usize);
        Ok(())
    }
}

/// File-backed segment storage using positional reads.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
    len: u64,
}

impl FileStorage {
    /// Creates (truncating) a segment file.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStorage { file, len: 0 })
    }

    /// Opens an existing segment file for read/append.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FileStorage { file, len })
    }
}

impl SegmentStorage for FileStorage {
    fn append(&mut self, data: &[u8]) -> io::Result<u64> {
        let pos = self.len;
        self.file.seek(SeekFrom::Start(pos))?;
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        Ok(pos)
    }

    fn read_at(&self, pos: u64, len: usize) -> io::Result<Bytes> {
        // Bytes::from adopts the read buffer without copying.
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            let mut buf = vec![0u8; len];
            self.file.read_exact_at(&mut buf, pos)?;
            Ok(Bytes::from(buf))
        }
        #[cfg(not(unix))]
        {
            let mut file = self.file.try_clone()?;
            file.seek(SeekFrom::Start(pos))?;
            let mut buf = vec![0u8; len];
            file.read_exact(&mut buf)?;
            Ok(Bytes::from(buf))
        }
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.len = len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut s: Box<dyn SegmentStorage>) {
        assert!(s.is_empty());
        let p0 = s.append(b"hello").unwrap();
        let p1 = s.append(b" world").unwrap();
        assert_eq!(p0, 0);
        assert_eq!(p1, 5);
        assert_eq!(s.len(), 11);
        assert_eq!(s.read_at(0, 5).unwrap(), b"hello");
        assert_eq!(s.read_at(6, 5).unwrap(), b"world");
        assert!(s.read_at(8, 10).is_err(), "read past end must fail");
        s.truncate(5).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.read_at(0, 5).unwrap(), b"hello");
        let p2 = s.append(b"!").unwrap();
        assert_eq!(p2, 5);
        s.flush().unwrap();
    }

    #[test]
    fn mem_storage_contract() {
        exercise(Box::new(MemStorage::new()));
    }

    #[test]
    fn file_storage_contract() {
        let dir = std::env::temp_dir().join(format!("liquid-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-contract.seg");
        exercise(Box::new(FileStorage::create(&path).unwrap()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_storage_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("liquid-log-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.seg");
        {
            let mut s = FileStorage::create(&path).unwrap();
            s.append(b"durable").unwrap();
            s.flush().unwrap();
        }
        let s = FileStorage::open(&path).unwrap();
        assert_eq!(s.len(), 7);
        assert_eq!(s.read_at(0, 7).unwrap(), b"durable");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn storage_kind_memory_roundtrip() {
        let kind = StorageKind::Memory;
        let mut s = kind.create(0).unwrap();
        s.append(b"x").unwrap();
        assert_eq!(s.len(), 1);
        assert!(kind.existing_segments().unwrap().is_empty());
        kind.destroy(0).unwrap();
    }

    #[test]
    fn storage_kind_files_lists_and_destroys() {
        let dir = std::env::temp_dir().join(format!("liquid-log-kind-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kind = StorageKind::Files(dir.clone());
        let mut a = kind.create(0).unwrap();
        a.append(b"a").unwrap();
        let mut b = kind.create(1024).unwrap();
        b.append(b"b").unwrap();
        assert_eq!(kind.existing_segments().unwrap(), vec![0, 1024]);
        kind.destroy(0).unwrap();
        assert_eq!(kind.existing_segments().unwrap(), vec![1024]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
