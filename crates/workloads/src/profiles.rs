//! Keyed profile updates — the data-cleaning / compaction workload.
//!
//! "This is particularly important in scenarios in which only a small
//! percentage of data changes periodically, such as user profile
//! updates" (§3.2). Updates are heavily skewed: a few very active users
//! rewrite their profiles constantly, which is exactly where log
//! compaction (§4.1) and incremental processing (§4.2) pay off.

use bytes::Bytes;
use liquid_sim::clock::Ts;
use liquid_sim::rng::{seeded, Zipf};
use rand::rngs::StdRng;
use rand::Rng;

/// One profile update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileUpdate {
    /// User whose profile changed.
    pub user_id: u64,
    /// Monotone revision per user (filled in by the generator as a
    /// global sequence; uniqueness is what matters).
    pub revision: u64,
    /// Free-text profile payload (headline, skills, …).
    pub payload: String,
    /// Event time (ms).
    pub timestamp: Ts,
}

impl ProfileUpdate {
    /// Compaction key: the user.
    pub fn key(&self) -> Bytes {
        Bytes::from(format!("user-{}", self.user_id))
    }

    /// Wire encoding.
    pub fn encode(&self) -> Bytes {
        Bytes::from(format!(
            "{}|{}|{}|{}",
            self.user_id, self.revision, self.timestamp, self.payload
        ))
    }

    /// Parses the wire encoding.
    pub fn decode(data: &[u8]) -> Option<ProfileUpdate> {
        let s = std::str::from_utf8(data).ok()?;
        let mut it = s.splitn(4, '|');
        Some(ProfileUpdate {
            user_id: it.next()?.parse().ok()?,
            revision: it.next()?.parse().ok()?,
            timestamp: it.next()?.parse().ok()?,
            payload: it.next()?.to_string(),
        })
    }
}

/// Deterministic generator of skewed profile updates.
pub struct ProfileUpdateGen {
    rng: StdRng,
    users: Zipf,
    next_revision: u64,
    now: Ts,
    payload_bytes: usize,
}

impl ProfileUpdateGen {
    /// A generator over `users` users with skew `s` (1.0 = classic).
    pub fn new(seed: u64, users: usize, skew: f64) -> Self {
        ProfileUpdateGen {
            rng: seeded(seed),
            users: Zipf::new(users, skew),
            next_revision: 1,
            now: 0,
            payload_bytes: 64,
        }
    }

    /// Sets the payload size per update.
    pub fn with_payload_bytes(mut self, n: usize) -> Self {
        self.payload_bytes = n.max(1);
        self
    }

    /// Produces the next update.
    pub fn next_update(&mut self) -> ProfileUpdate {
        self.now += self.rng.gen_range(1..10);
        let revision = self.next_revision;
        self.next_revision += 1;
        let user_id = self.users.sample(&mut self.rng) as u64;
        let filler: String = (0..self.payload_bytes)
            .map(|_| (b'a' + self.rng.gen_range(0..26)) as char)
            .collect();
        ProfileUpdate {
            user_id,
            revision,
            payload: format!("headline r{revision}: {filler}"),
            timestamp: self.now,
        }
    }

    /// Produces a batch.
    pub fn batch(&mut self, n: usize) -> Vec<ProfileUpdate> {
        (0..n).map(|_| self.next_update()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_including_pipes_in_payload() {
        let u = ProfileUpdate {
            user_id: 3,
            revision: 8,
            payload: "skills: a|b|c".into(),
            timestamp: 55,
        };
        assert_eq!(ProfileUpdate::decode(&u.encode()), Some(u));
    }

    #[test]
    fn revisions_are_unique() {
        let mut g = ProfileUpdateGen::new(1, 100, 1.0);
        let batch = g.batch(500);
        let revs: std::collections::HashSet<u64> = batch.iter().map(|u| u.revision).collect();
        assert_eq!(revs.len(), 500);
    }

    #[test]
    fn skew_concentrates_updates() {
        let mut g = ProfileUpdateGen::new(2, 10_000, 1.1);
        let batch = g.batch(10_000);
        let distinct: std::collections::HashSet<u64> = batch.iter().map(|u| u.user_id).collect();
        assert!(
            distinct.len() < 6_000,
            "{} distinct users in 10k updates — not skewed",
            distinct.len()
        );
    }

    #[test]
    fn payload_size_respected() {
        let mut g = ProfileUpdateGen::new(3, 10, 1.0).with_payload_bytes(256);
        let u = g.next_update();
        assert!(u.payload.len() >= 256);
    }

    #[test]
    fn deterministic() {
        let a = ProfileUpdateGen::new(9, 50, 1.0).batch(10);
        let b = ProfileUpdateGen::new(9, 50, 1.0).batch(10);
        assert_eq!(a, b);
    }
}
