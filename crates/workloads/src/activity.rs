//! User activity events (page views, clicks, searches).

use bytes::Bytes;
use liquid_sim::clock::Ts;
use liquid_sim::rng::{seeded, Zipf};
use rand::rngs::StdRng;
use rand::Rng;

/// What the user did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Page view.
    View,
    /// Click on a link or button.
    Click,
    /// Like/reaction.
    Like,
    /// Share/repost.
    Share,
    /// Search query.
    Search,
}

impl Action {
    const ALL: [Action; 5] = [
        Action::View,
        Action::Click,
        Action::Like,
        Action::Share,
        Action::Search,
    ];

    /// Short wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Action::View => "view",
            Action::Click => "click",
            Action::Like => "like",
            Action::Share => "share",
            Action::Search => "search",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<Action> {
        Self::ALL.into_iter().find(|a| a.as_str() == s)
    }
}

/// One user-activity event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityEvent {
    /// Acting user.
    pub user_id: u64,
    /// Action performed.
    pub action: Action,
    /// Page id visited/acted on.
    pub page_id: u64,
    /// Event time (ms).
    pub timestamp: Ts,
}

impl ActivityEvent {
    /// Partitioning/compaction key: the user.
    pub fn key(&self) -> Bytes {
        Bytes::from(format!("user-{}", self.user_id))
    }

    /// Wire encoding.
    pub fn encode(&self) -> Bytes {
        Bytes::from(format!(
            "{}|{}|{}|{}",
            self.user_id,
            self.action.as_str(),
            self.page_id,
            self.timestamp
        ))
    }

    /// Parses the wire encoding.
    pub fn decode(data: &[u8]) -> Option<ActivityEvent> {
        let s = std::str::from_utf8(data).ok()?;
        let mut it = s.split('|');
        Some(ActivityEvent {
            user_id: it.next()?.parse().ok()?,
            action: Action::parse(it.next()?)?,
            page_id: it.next()?.parse().ok()?,
            timestamp: it.next()?.parse().ok()?,
        })
    }
}

/// Deterministic activity generator with Zipf-skewed users and pages.
pub struct ActivityGen {
    rng: StdRng,
    users: Zipf,
    pages: Zipf,
    now: Ts,
    /// Mean inter-event gap (ms).
    gap_ms: u64,
}

impl ActivityGen {
    /// A generator over `users` users and `pages` pages with classic
    /// web skew (s = 1.0).
    pub fn new(seed: u64, users: usize, pages: usize) -> Self {
        ActivityGen {
            rng: seeded(seed),
            users: Zipf::new(users, 1.0),
            pages: Zipf::new(pages, 1.0),
            now: 0,
            gap_ms: 10,
        }
    }

    /// Sets the mean gap between events (drives event time).
    pub fn with_gap_ms(mut self, gap_ms: u64) -> Self {
        self.gap_ms = gap_ms.max(1);
        self
    }

    /// Produces the next event.
    pub fn next_event(&mut self) -> ActivityEvent {
        self.now += self.rng.gen_range(1..=self.gap_ms * 2);
        let action = Action::ALL[self.rng.gen_range(0..Action::ALL.len())];
        ActivityEvent {
            user_id: self.users.sample(&mut self.rng) as u64,
            action,
            page_id: self.pages.sample(&mut self.rng) as u64,
            timestamp: self.now,
        }
    }

    /// Produces a batch.
    pub fn batch(&mut self, n: usize) -> Vec<ActivityEvent> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = ActivityEvent {
            user_id: 42,
            action: Action::Click,
            page_id: 7,
            timestamp: 1234,
        };
        assert_eq!(ActivityEvent::decode(&e.encode()), Some(e.clone()));
        assert_eq!(e.key(), Bytes::from_static(b"user-42"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(ActivityEvent::decode(b"nope"), None);
        assert_eq!(ActivityEvent::decode(b"1|dance|2|3"), None);
        assert_eq!(ActivityEvent::decode(&[0xFF, 0xFE]), None);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = ActivityGen::new(7, 100, 50).batch(20);
        let b: Vec<_> = ActivityGen::new(7, 100, 50).batch(20);
        assert_eq!(a, b);
        let c: Vec<_> = ActivityGen::new(8, 100, 50).batch(20);
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_increase() {
        let mut g = ActivityGen::new(1, 10, 10);
        let batch = g.batch(100);
        assert!(batch.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
    }

    #[test]
    fn users_are_skewed() {
        let mut g = ActivityGen::new(3, 1000, 10);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if g.next_event().user_id <= 10 {
                head += 1;
            }
        }
        assert!(head > n / 4, "top-10 users got only {head}/{n} events");
    }

    #[test]
    fn action_parse_all() {
        for a in Action::ALL {
            assert_eq!(Action::parse(a.as_str()), Some(a));
        }
        assert_eq!(Action::parse("dance"), None);
    }
}
