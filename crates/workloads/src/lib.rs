//! Synthetic workload generators for the paper's use cases (§5.1).
//!
//! LinkedIn's production traffic is proprietary; these generators
//! produce events with the same *shape* — skewed keys, realistic
//! dimensions, injectable anomalies — so the examples and experiments
//! drive the identical code paths:
//!
//! * [`activity`] — user activity (page views, clicks, searches) with
//!   Zipf-distributed users; the "source-of-truth" feed of Figure 1;
//! * [`rum`] — real-user-monitoring page-load events with CDN and
//!   region dimensions plus injectable CDN slowdowns (site-speed
//!   monitoring use case);
//! * [`calls`] — REST call trees sharing a request id, emitted as
//!   individual out-of-order span events (call-graph assembly);
//! * [`profiles`] — keyed profile updates with heavy skew (data
//!   cleaning / compaction experiments);
//! * [`metrics`] — host operational metrics (operational analysis).
//!
//! Every generator is deterministic given a seed. Events encode to
//! pipe-delimited UTF-8 so they stay greppable in logs and tests.

#![forbid(unsafe_code)]

pub mod activity;
pub mod calls;
pub mod metrics;
pub mod profiles;
pub mod rum;

pub use activity::{Action, ActivityEvent, ActivityGen};
pub use calls::{CallSpan, CallTraceGen};
pub use metrics::{HostMetric, MetricsGen};
pub use profiles::{ProfileUpdate, ProfileUpdateGen};
pub use rum::{RumEvent, RumGen};
