//! Real-user-monitoring (RUM) events — the site-speed use case (§5.1).
//!
//! "When a client visits a webpage, an event is created that contains a
//! timestamp, the page or resource loaded, the time that it took to
//! load, the IP address location of the requesting client and the CDN
//! used to serve the resource."

use bytes::Bytes;
use liquid_sim::clock::Ts;
use liquid_sim::rng::{seeded, Zipf};
use rand::rngs::StdRng;
use rand::Rng;

/// Content delivery networks serving resources.
pub const CDNS: [&str; 4] = ["cdn-east", "cdn-west", "cdn-eu", "cdn-apac"];
/// Client regions.
pub const REGIONS: [&str; 5] = ["us", "eu", "in", "br", "jp"];

/// One page-load measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RumEvent {
    /// Event time (ms).
    pub timestamp: Ts,
    /// Page loaded.
    pub page_id: u64,
    /// Observed load time (ms).
    pub load_time_ms: u64,
    /// Client region.
    pub region: String,
    /// CDN that served the resource.
    pub cdn: String,
}

impl RumEvent {
    /// Grouping key used by the monitoring pipeline: the CDN.
    pub fn key(&self) -> Bytes {
        Bytes::from(self.cdn.clone())
    }

    /// Wire encoding.
    pub fn encode(&self) -> Bytes {
        Bytes::from(format!(
            "{}|{}|{}|{}|{}",
            self.timestamp, self.page_id, self.load_time_ms, self.region, self.cdn
        ))
    }

    /// Parses the wire encoding.
    pub fn decode(data: &[u8]) -> Option<RumEvent> {
        let s = std::str::from_utf8(data).ok()?;
        let mut it = s.split('|');
        Some(RumEvent {
            timestamp: it.next()?.parse().ok()?,
            page_id: it.next()?.parse().ok()?,
            load_time_ms: it.next()?.parse().ok()?,
            region: it.next()?.to_string(),
            cdn: it.next()?.to_string(),
        })
    }
}

/// Deterministic RUM generator with injectable CDN slowdowns.
pub struct RumGen {
    rng: StdRng,
    pages: Zipf,
    now: Ts,
    base_load_ms: u64,
    /// CDN index currently degraded (multiplies load times), if any.
    degraded_cdn: Option<(usize, u64)>,
}

impl RumGen {
    /// A generator over `pages` pages with ~`base_load_ms` typical
    /// load times.
    pub fn new(seed: u64, pages: usize, base_load_ms: u64) -> Self {
        RumGen {
            rng: seeded(seed),
            pages: Zipf::new(pages, 0.9),
            now: 0,
            base_load_ms: base_load_ms.max(1),
            degraded_cdn: None,
        }
    }

    /// Degrades one CDN: its load times are multiplied by `factor`
    /// until [`clear_anomaly`](Self::clear_anomaly).
    pub fn inject_cdn_slowdown(&mut self, cdn_index: usize, factor: u64) {
        assert!(cdn_index < CDNS.len(), "cdn index out of range");
        self.degraded_cdn = Some((cdn_index, factor.max(1)));
    }

    /// Ends the injected anomaly.
    pub fn clear_anomaly(&mut self) {
        self.degraded_cdn = None;
    }

    /// Produces the next event.
    pub fn next_event(&mut self) -> RumEvent {
        self.now += self.rng.gen_range(1..20);
        let cdn_index = self.rng.gen_range(0..CDNS.len());
        let region = REGIONS[self.rng.gen_range(0..REGIONS.len())];
        // Load time: base plus a long-ish tail.
        let mut load = self.base_load_ms + self.rng.gen_range(0..self.base_load_ms * 2);
        if self.rng.gen_range(0..100) < 5 {
            load += self.base_load_ms * self.rng.gen_range(3..8); // tail
        }
        if let Some((slow, factor)) = self.degraded_cdn {
            if slow == cdn_index {
                load *= factor;
            }
        }
        RumEvent {
            timestamp: self.now,
            page_id: self.pages.sample(&mut self.rng) as u64,
            load_time_ms: load,
            region: region.to_string(),
            cdn: CDNS[cdn_index].to_string(),
        }
    }

    /// Produces a batch.
    pub fn batch(&mut self, n: usize) -> Vec<RumEvent> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = RumEvent {
            timestamp: 99,
            page_id: 12,
            load_time_ms: 340,
            region: "eu".into(),
            cdn: "cdn-east".into(),
        };
        assert_eq!(RumEvent::decode(&e.encode()), Some(e.clone()));
        assert_eq!(e.key(), Bytes::from_static(b"cdn-east"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(RumEvent::decode(b"1|2"), None);
        assert_eq!(RumEvent::decode(b"x|y|z|a|b"), None);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RumGen::new(5, 100, 200).batch(10);
        let b = RumGen::new(5, 100, 200).batch(10);
        assert_eq!(a, b);
    }

    #[test]
    fn injected_slowdown_visible_in_means() {
        let mut g = RumGen::new(9, 50, 100);
        let normal = g.batch(2000);
        g.inject_cdn_slowdown(0, 10);
        let degraded = g.batch(2000);
        let mean = |evs: &[RumEvent], cdn: &str| {
            let xs: Vec<u64> = evs
                .iter()
                .filter(|e| e.cdn == cdn)
                .map(|e| e.load_time_ms)
                .collect();
            xs.iter().sum::<u64>() as f64 / xs.len().max(1) as f64
        };
        let before = mean(&normal, CDNS[0]);
        let after = mean(&degraded, CDNS[0]);
        assert!(
            after > before * 5.0,
            "slowdown not visible: {before} -> {after}"
        );
        // Other CDNs unaffected (within noise).
        let other_before = mean(&normal, CDNS[1]);
        let other_after = mean(&degraded, CDNS[1]);
        assert!(other_after < other_before * 2.0);
    }

    #[test]
    fn clear_anomaly_restores() {
        let mut g = RumGen::new(2, 10, 100);
        g.inject_cdn_slowdown(1, 20);
        g.clear_anomaly();
        let evs = g.batch(1000);
        let max = evs
            .iter()
            .filter(|e| e.cdn == CDNS[1])
            .map(|e| e.load_time_ms)
            .max()
            .unwrap();
        assert!(max < 100 * 20, "anomaly still active: max {max}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cdn_index_panics() {
        RumGen::new(0, 10, 100).inject_cdn_slowdown(99, 2);
    }
}
