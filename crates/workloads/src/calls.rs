//! REST call traces — the call-graph assembly use case (§5.1).
//!
//! "Dynamic web pages are built from thousands of REST calls … Liquid
//! records each event produced by the REST calls and stores them in the
//! messaging layer with a unique id per user call; the processing layer
//! processes these events to assemble the call graph."

use bytes::Bytes;
use liquid_sim::clock::Ts;
use liquid_sim::rng::seeded;
use rand::rngs::StdRng;
use rand::Rng;

/// One REST call (span) within a request's call tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSpan {
    /// Request id shared by every span of one page build.
    pub request_id: u64,
    /// This span's index within the request.
    pub span_id: u32,
    /// Parent span (`None` for the root front-end call).
    pub parent_id: Option<u32>,
    /// Service that handled the call.
    pub service: String,
    /// Start time (ms).
    pub start_ts: Ts,
    /// Duration (ms).
    pub duration_ms: u64,
    /// Total spans in this request (assigned by the front-end, which
    /// knows how many calls it issued) — lets assemblers detect
    /// completeness without timeouts.
    pub total_spans: u32,
}

impl CallSpan {
    /// Partitioning key: the request id, so one task sees a whole tree.
    pub fn key(&self) -> Bytes {
        Bytes::from(format!("req-{}", self.request_id))
    }

    /// Wire encoding.
    pub fn encode(&self) -> Bytes {
        Bytes::from(format!(
            "{}|{}|{}|{}|{}|{}|{}",
            self.request_id,
            self.span_id,
            self.parent_id.map(|p| p as i64).unwrap_or(-1),
            self.service,
            self.start_ts,
            self.duration_ms,
            self.total_spans
        ))
    }

    /// Parses the wire encoding.
    pub fn decode(data: &[u8]) -> Option<CallSpan> {
        let s = std::str::from_utf8(data).ok()?;
        let mut it = s.split('|');
        let request_id = it.next()?.parse().ok()?;
        let span_id = it.next()?.parse().ok()?;
        let parent: i64 = it.next()?.parse().ok()?;
        Some(CallSpan {
            request_id,
            span_id,
            parent_id: (parent >= 0).then_some(parent as u32),
            service: it.next()?.to_string(),
            start_ts: it.next()?.parse().ok()?,
            duration_ms: it.next()?.parse().ok()?,
            total_spans: it.next()?.parse().ok()?,
        })
    }
}

const SERVICES: [&str; 8] = [
    "frontend",
    "profile",
    "feed",
    "search",
    "ads",
    "messaging",
    "graph",
    "media",
];

/// Generates call trees and emits their spans out of order (as they
/// would arrive from distributed machines).
pub struct CallTraceGen {
    rng: StdRng,
    next_request: u64,
    now: Ts,
    /// Spans per request (min, max).
    fanout: (u32, u32),
    /// Probability (percent) of an anomalously slow span.
    slow_pct: u32,
}

impl CallTraceGen {
    /// A generator producing requests of 3–12 spans with 2% slow calls.
    pub fn new(seed: u64) -> Self {
        CallTraceGen {
            rng: seeded(seed),
            next_request: 1,
            now: 0,
            fanout: (3, 12),
            slow_pct: 2,
        }
    }

    /// Sets the span count range per request.
    pub fn with_fanout(mut self, min: u32, max: u32) -> Self {
        assert!(min >= 1 && min <= max, "invalid fanout");
        self.fanout = (min, max);
        self
    }

    /// Sets the probability (percent) of anomalously slow spans.
    pub fn with_slow_pct(mut self, pct: u32) -> Self {
        self.slow_pct = pct.min(100);
        self
    }

    /// Generates one request's spans, delivered out of order.
    pub fn next_trace(&mut self) -> Vec<CallSpan> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.now += self.rng.gen_range(1..50);
        let n = self.rng.gen_range(self.fanout.0..=self.fanout.1);
        let mut spans = Vec::with_capacity(n as usize);
        for span_id in 0..n {
            let parent_id = if span_id == 0 {
                None
            } else {
                // Attach to a random earlier span: a tree, not a chain.
                Some(self.rng.gen_range(0..span_id))
            };
            let slow = self.rng.gen_range(0..100) < self.slow_pct;
            let duration = if slow {
                self.rng.gen_range(500..2_000)
            } else {
                self.rng.gen_range(1..50)
            };
            let service = if span_id == 0 {
                "frontend"
            } else {
                SERVICES[self.rng.gen_range(1..SERVICES.len())]
            };
            spans.push(CallSpan {
                request_id,
                span_id,
                parent_id,
                service: service.to_string(),
                start_ts: self.now + span_id as u64,
                duration_ms: duration,
                total_spans: n,
            });
        }
        // Spans arrive out of order in production.
        for i in (1..spans.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            spans.swap(i, j);
        }
        spans
    }

    /// Generates spans for `n` requests, interleaved across requests
    /// (as the messaging layer would see them).
    pub fn batch(&mut self, n: usize) -> Vec<CallSpan> {
        let mut traces: Vec<Vec<CallSpan>> = (0..n).map(|_| self.next_trace()).collect();
        let mut out = Vec::new();
        // Round-robin drain to interleave requests.
        while !traces.is_empty() {
            traces.retain_mut(|t| {
                if let Some(s) = t.pop() {
                    out.push(s);
                }
                !t.is_empty()
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn roundtrip() {
        let s = CallSpan {
            request_id: 9,
            span_id: 3,
            parent_id: Some(1),
            service: "feed".into(),
            start_ts: 100,
            duration_ms: 25,
            total_spans: 5,
        };
        assert_eq!(CallSpan::decode(&s.encode()), Some(s.clone()));
        let root = CallSpan {
            parent_id: None,
            ..s
        };
        assert_eq!(CallSpan::decode(&root.encode()), Some(root));
    }

    #[test]
    fn trace_forms_a_tree() {
        let mut g = CallTraceGen::new(11);
        for _ in 0..50 {
            let mut spans = g.next_trace();
            spans.sort_by_key(|s| s.span_id);
            assert_eq!(spans[0].parent_id, None, "span 0 is the root");
            for s in &spans[1..] {
                let p = s.parent_id.expect("non-root has a parent");
                assert!(p < s.span_id, "parents precede children");
            }
            // All spans share the request id.
            assert!(spans.iter().all(|s| s.request_id == spans[0].request_id));
        }
    }

    #[test]
    fn spans_arrive_out_of_order() {
        let mut g = CallTraceGen::new(1).with_fanout(8, 12);
        let shuffled = (0..20).any(|_| {
            let t = g.next_trace();
            t.windows(2).any(|w| w[0].span_id > w[1].span_id)
        });
        assert!(shuffled, "traces should not arrive sorted");
    }

    #[test]
    fn batch_interleaves_requests() {
        let mut g = CallTraceGen::new(3).with_fanout(4, 4);
        let batch = g.batch(5);
        assert_eq!(batch.len(), 20);
        // The first 5 spans should come from multiple requests.
        let heads: std::collections::HashSet<u64> =
            batch[..5].iter().map(|s| s.request_id).collect();
        assert!(heads.len() > 1, "requests should interleave");
    }

    #[test]
    fn slow_pct_controls_anomalies() {
        let mut g = CallTraceGen::new(7).with_slow_pct(0);
        let spans = g.batch(100);
        assert!(spans.iter().all(|s| s.duration_ms < 500));
        let mut g2 = CallTraceGen::new(7).with_slow_pct(100);
        let spans2 = g2.batch(20);
        assert!(spans2.iter().all(|s| s.duration_ms >= 500));
    }

    #[test]
    fn request_ids_unique_and_dense() {
        let mut g = CallTraceGen::new(2);
        let batch = g.batch(10);
        let mut by_req: HashMap<u64, usize> = HashMap::new();
        for s in &batch {
            *by_req.entry(s.request_id).or_default() += 1;
        }
        assert_eq!(by_req.len(), 10);
    }
}
