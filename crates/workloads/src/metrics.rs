//! Host operational metrics — the operational-analysis use case (§5.1).
//!
//! "Analyzing operational data, such as metrics, alerts and logs, is
//! crucial to react to potential problems quickly." The generator emits
//! per-host CPU/memory/error-rate samples with injectable incidents
//! (a host pinned at 100% CPU, an error-rate spike).

use bytes::Bytes;
use liquid_sim::clock::Ts;
use liquid_sim::rng::seeded;
use rand::rngs::StdRng;
use rand::Rng;

/// One metrics sample from one host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostMetric {
    /// Host identifier.
    pub host: String,
    /// Sample time (ms).
    pub timestamp: Ts,
    /// CPU utilization, percent.
    pub cpu_pct: u8,
    /// Memory utilization, percent.
    pub mem_pct: u8,
    /// Errors logged since the last sample.
    pub errors: u32,
}

impl HostMetric {
    /// Grouping key: the host.
    pub fn key(&self) -> Bytes {
        Bytes::from(self.host.clone())
    }

    /// Wire encoding.
    pub fn encode(&self) -> Bytes {
        Bytes::from(format!(
            "{}|{}|{}|{}|{}",
            self.host, self.timestamp, self.cpu_pct, self.mem_pct, self.errors
        ))
    }

    /// Parses the wire encoding.
    pub fn decode(data: &[u8]) -> Option<HostMetric> {
        let s = std::str::from_utf8(data).ok()?;
        let mut it = s.split('|');
        Some(HostMetric {
            host: it.next()?.to_string(),
            timestamp: it.next()?.parse().ok()?,
            cpu_pct: it.next()?.parse().ok()?,
            mem_pct: it.next()?.parse().ok()?,
            errors: it.next()?.parse().ok()?,
        })
    }
}

/// Deterministic metrics generator over a fixed host fleet.
pub struct MetricsGen {
    rng: StdRng,
    hosts: usize,
    now: Ts,
    interval_ms: u64,
    /// Host index currently misbehaving, if any.
    incident_host: Option<usize>,
}

impl MetricsGen {
    /// A generator over `hosts` hosts sampling every `interval_ms`.
    pub fn new(seed: u64, hosts: usize, interval_ms: u64) -> Self {
        assert!(hosts > 0, "need at least one host");
        MetricsGen {
            rng: seeded(seed),
            hosts,
            now: 0,
            interval_ms: interval_ms.max(1),
            incident_host: None,
        }
    }

    /// Pins one host at 100% CPU with a high error rate.
    pub fn inject_incident(&mut self, host_index: usize) {
        assert!(host_index < self.hosts, "host index out of range");
        self.incident_host = Some(host_index);
    }

    /// Resolves the incident.
    pub fn resolve_incident(&mut self) {
        self.incident_host = None;
    }

    /// Produces one sample per host for the next interval.
    pub fn next_round(&mut self) -> Vec<HostMetric> {
        self.now += self.interval_ms;
        (0..self.hosts)
            .map(|h| {
                let incident = self.incident_host == Some(h);
                HostMetric {
                    host: format!("host-{h:04}"),
                    timestamp: self.now,
                    cpu_pct: if incident {
                        100
                    } else {
                        self.rng.gen_range(5..70)
                    },
                    mem_pct: self.rng.gen_range(30..85),
                    errors: if incident {
                        self.rng.gen_range(50..200)
                    } else {
                        self.rng.gen_range(0..3)
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = HostMetric {
            host: "host-0001".into(),
            timestamp: 500,
            cpu_pct: 42,
            mem_pct: 63,
            errors: 2,
        };
        assert_eq!(HostMetric::decode(&m.encode()), Some(m));
    }

    #[test]
    fn one_sample_per_host_per_round() {
        let mut g = MetricsGen::new(1, 8, 1000);
        let round = g.next_round();
        assert_eq!(round.len(), 8);
        let hosts: std::collections::HashSet<&String> = round.iter().map(|m| &m.host).collect();
        assert_eq!(hosts.len(), 8);
        assert!(round.iter().all(|m| m.timestamp == 1000));
        assert_eq!(g.next_round()[0].timestamp, 2000);
    }

    #[test]
    fn incident_visible() {
        let mut g = MetricsGen::new(2, 4, 100);
        g.inject_incident(2);
        let round = g.next_round();
        assert_eq!(round[2].cpu_pct, 100);
        assert!(round[2].errors >= 50);
        assert!(round[0].cpu_pct < 100);
        g.resolve_incident();
        let round2 = g.next_round();
        assert!(round2[2].cpu_pct < 100);
    }

    #[test]
    fn deterministic() {
        let a = MetricsGen::new(4, 3, 10).next_round();
        let b = MetricsGen::new(4, 3, 10).next_round();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_incident_index() {
        MetricsGen::new(0, 2, 10).inject_incident(5);
    }
}
