//! Aggregation helpers over task state.
//!
//! The paper lists "a dictionary of statistics" as canonical task state
//! (§3.2) and the operational-analysis use case needs "aggregate values
//! to facilitate analysis" (§5.1). These helpers layer the common
//! aggregates — counters, sums, min/max, top-k — over a
//! [`StateStore`], so they survive failures via the changelog like any
//! other state.

use bytes::Bytes;

use crate::state::StateStore;

/// Keyed counters and sums with a shared namespace prefix.
#[derive(Debug, Clone, Copy)]
pub struct KeyedAggregate<'a> {
    prefix: &'a str,
}

impl<'a> KeyedAggregate<'a> {
    /// Creates an aggregate family under `prefix` (e.g. `"errors"`).
    pub fn new(prefix: &'a str) -> Self {
        KeyedAggregate { prefix }
    }

    fn key(&self, key: &[u8]) -> Vec<u8> {
        let mut k = format!("agg|{}|", self.prefix).into_bytes();
        k.extend_from_slice(key);
        k
    }

    /// Adds `delta`, returning the new total.
    pub fn add(&self, store: &mut StateStore, key: &[u8], delta: u64) -> crate::Result<u64> {
        let skey = self.key(key);
        let next = self.get(store, key) + delta;
        store.put(
            Bytes::from(skey),
            Bytes::copy_from_slice(&next.to_le_bytes()),
        )?;
        Ok(next)
    }

    /// Current total (0 if absent).
    pub fn get(&self, store: &mut StateStore, key: &[u8]) -> u64 {
        store
            .get(&self.key(key))
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0)
    }

    /// Raises the stored value to `candidate` if larger; returns the
    /// current maximum.
    pub fn max(&self, store: &mut StateStore, key: &[u8], candidate: u64) -> crate::Result<u64> {
        let cur = self.get(store, key);
        if candidate > cur {
            let skey = self.key(key);
            store.put(
                Bytes::from(skey),
                Bytes::copy_from_slice(&candidate.to_le_bytes()),
            )?;
            Ok(candidate)
        } else {
            Ok(cur)
        }
    }

    /// All `(key, value)` pairs of this family, in key order.
    pub fn scan(&self, store: &mut StateStore) -> Vec<(Bytes, u64)> {
        let lo = format!("agg|{}|", self.prefix).into_bytes();
        let mut hi = lo.clone();
        hi.push(0xFF);
        store
            .range(Some(&lo), Some(&hi))
            .into_iter()
            .filter_map(|(k, v)| {
                let value = u64::from_le_bytes(v.as_ref().try_into().ok()?);
                Some((k.slice(lo.len()..), value))
            })
            .collect()
    }

    /// The `k` largest entries, descending (ties broken by key).
    pub fn top_k(&self, store: &mut StateStore, k: usize) -> Vec<(Bytes, u64)> {
        let mut all = self.scan(store);
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        // lint:allow(dropped-result, reason=this is std Vec::truncate returning unit, not the Result-returning Storage::truncate it shadows by name)
        all.truncate(k);
        all
    }
}

/// Running mean/min/max over `u64` samples, stored per key.
#[derive(Debug, Clone, Copy)]
pub struct RunningStats<'a> {
    prefix: &'a str,
}

/// A point-in-time read of [`RunningStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsView {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (u64::MAX when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl StatsView {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl<'a> RunningStats<'a> {
    /// Creates a stats family under `prefix`.
    pub fn new(prefix: &'a str) -> Self {
        RunningStats { prefix }
    }

    fn key(&self, key: &[u8]) -> Vec<u8> {
        let mut k = format!("stats|{}|", self.prefix).into_bytes();
        k.extend_from_slice(key);
        k
    }

    /// Records one sample; returns the updated view.
    pub fn record(
        &self,
        store: &mut StateStore,
        key: &[u8],
        sample: u64,
    ) -> crate::Result<StatsView> {
        let mut v = self.get(store, key);
        v.count += 1;
        v.sum += sample;
        v.min = v.min.min(sample);
        v.max = v.max.max(sample);
        let mut buf = Vec::with_capacity(32);
        buf.extend_from_slice(&v.count.to_le_bytes());
        buf.extend_from_slice(&v.sum.to_le_bytes());
        buf.extend_from_slice(&v.min.to_le_bytes());
        buf.extend_from_slice(&v.max.to_le_bytes());
        store.put(Bytes::from(self.key(key)), Bytes::from(buf))?;
        Ok(v)
    }

    /// Current view (empty view if absent or malformed).
    pub fn get(&self, store: &mut StateStore, key: &[u8]) -> StatsView {
        store
            .get(&self.key(key))
            .as_deref()
            .and_then(stats_view_from_bytes)
            .unwrap_or(StatsView {
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
            })
    }
}

/// Decodes the 32-byte stats encoding; `None` on any size mismatch —
/// a malformed value reads as the empty view rather than panicking.
fn stats_view_from_bytes(v: &[u8]) -> Option<StatsView> {
    Some(StatsView {
        count: u64::from_le_bytes(v.get(0..8)?.try_into().ok()?),
        sum: u64::from_le_bytes(v.get(8..16)?.try_into().ok()?),
        min: u64::from_le_bytes(v.get(16..24)?.try_into().ok()?),
        max: u64::from_le_bytes(v.get(24..32)?.try_into().ok()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_counts_and_scan() {
        let mut s = StateStore::ephemeral();
        let errors = KeyedAggregate::new("errors");
        errors.add(&mut s, b"host-1", 3).unwrap();
        errors.add(&mut s, b"host-2", 1).unwrap();
        assert_eq!(errors.add(&mut s, b"host-1", 2).unwrap(), 5);
        assert_eq!(errors.get(&mut s, b"host-1"), 5);
        assert_eq!(errors.get(&mut s, b"ghost"), 0);
        let all = errors.scan(&mut s);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], (Bytes::from_static(b"host-1"), 5));
    }

    #[test]
    fn families_are_isolated() {
        let mut s = StateStore::ephemeral();
        let a = KeyedAggregate::new("a");
        let b = KeyedAggregate::new("b");
        a.add(&mut s, b"k", 1).unwrap();
        b.add(&mut s, b"k", 10).unwrap();
        assert_eq!(a.get(&mut s, b"k"), 1);
        assert_eq!(b.get(&mut s, b"k"), 10);
        assert_eq!(a.scan(&mut s).len(), 1);
    }

    #[test]
    fn max_tracks_peak() {
        let mut s = StateStore::ephemeral();
        let cpu = KeyedAggregate::new("maxcpu");
        cpu.max(&mut s, b"h", 40).unwrap();
        cpu.max(&mut s, b"h", 90).unwrap();
        assert_eq!(cpu.max(&mut s, b"h", 60).unwrap(), 90);
    }

    #[test]
    fn top_k_orders_descending() {
        let mut s = StateStore::ephemeral();
        let views = KeyedAggregate::new("views");
        for (k, n) in [
            ("page-a", 5u64),
            ("page-b", 50),
            ("page-c", 20),
            ("page-d", 50),
        ] {
            views.add(&mut s, k.as_bytes(), n).unwrap();
        }
        let top = views.top_k(&mut s, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].1, 50);
        assert_eq!(top[1].1, 50);
        assert_eq!(top[2], (Bytes::from_static(b"page-c"), 20));
        // Ties broken by key: page-b before page-d.
        assert_eq!(top[0].0, Bytes::from_static(b"page-b"));
    }

    #[test]
    fn running_stats_accumulate() {
        let mut s = StateStore::ephemeral();
        let load = RunningStats::new("load");
        load.record(&mut s, b"cdn", 100).unwrap();
        load.record(&mut s, b"cdn", 300).unwrap();
        let v = load.record(&mut s, b"cdn", 200).unwrap();
        assert_eq!(v.count, 3);
        assert_eq!(v.sum, 600);
        assert_eq!(v.min, 100);
        assert_eq!(v.max, 300);
        assert_eq!(v.mean(), 200.0);
        let empty = load.get(&mut s, b"other");
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn aggregates_survive_changelog_recovery() {
        use liquid_messaging::{Cluster, ClusterConfig, TopicConfig, TopicPartition};
        use liquid_sim::clock::SimClock;
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic("cl", TopicConfig::with_partitions(1).compacted())
            .unwrap();
        let tp = TopicPartition::new("cl", 0);
        {
            let mut s = StateStore::with_changelog(c.clone(), tp.clone()).unwrap();
            let agg = KeyedAggregate::new("n");
            agg.add(&mut s, b"k", 7).unwrap();
        }
        let mut restored = StateStore::with_changelog(c, tp).unwrap();
        restored.restore_from_changelog().unwrap();
        assert_eq!(KeyedAggregate::new("n").get(&mut restored, b"k"), 7);
    }
}
