//! Jobs: task-per-partition execution, checkpointing, recovery.
//!
//! A job consumes one or more input feeds and is split into one task per
//! partition. Progress is checkpointed to the offset manager together
//! with metadata annotations (software version), and state lives in
//! changelog-backed stores — so a restarted job resumes incrementally:
//! it restores state from the changelog and continues from its last
//! committed offsets instead of re-reading history (§4.2).

use std::collections::{BTreeMap, HashMap};

use liquid_kv::LsmConfig;
use liquid_messaging::{AckLevel, Cluster, TopicConfig, TopicPartition};
use liquid_obs::{CounterHandle, GaugeHandle, Obs};
use liquid_sim::failure::FailureInjector;

use crate::error::ProcessingError;
use crate::state::StateStore;
use crate::task::{Outputs, StreamTask, TaskContext};

/// Where a job with no committed offsets begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobStart {
    /// Resume from committed offsets; fall back to the earliest
    /// retained data (default — incremental processing).
    #[default]
    Committed,
    /// Always start from the earliest retained data (reprocessing).
    Earliest,
    /// Only new data.
    Latest,
}

/// Job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Job name; also namespaces the checkpoint group and changelog.
    pub name: String,
    /// Software version, stored as a checkpoint annotation (§4.2).
    pub version: String,
    /// Input topics. Partition `i` of every input is handled by task `i`.
    pub inputs: Vec<String>,
    /// Acknowledgement level for outputs and changelog writes.
    pub acks: AckLevel,
    /// Checkpoint after this many messages per task (0 = only manual).
    pub checkpoint_every: u64,
    /// Whether tasks get changelog-backed state.
    pub stateful: bool,
    /// Start position when no checkpoint exists.
    pub start: JobStart,
    /// Bytes fetched per input partition per `run_once` round.
    pub fetch_bytes: u64,
    /// Bootstrap inputs (Samza-style): processed to completion before
    /// any other input is touched — e.g. a table feed that must be
    /// materialized before the stream side probes it.
    pub bootstrap: Vec<String>,
    /// Fault injector for checkpoint / changelog-restore crash points.
    pub injector: FailureInjector,
    /// Fault injector threaded into every task's state store.
    pub state_injector: FailureInjector,
}

impl JobConfig {
    /// A stateful job named `name` reading `inputs`.
    pub fn new(name: &str, inputs: &[&str]) -> Self {
        JobConfig {
            name: name.to_string(),
            version: "v1".to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            acks: AckLevel::Leader,
            checkpoint_every: 1000,
            stateful: true,
            start: JobStart::Committed,
            fetch_bytes: 1 << 20,
            bootstrap: Vec::new(),
            injector: FailureInjector::disabled(),
            state_injector: FailureInjector::disabled(),
        }
    }

    /// Marks an input as a bootstrap stream: each round drains it fully
    /// before non-bootstrap inputs are read.
    pub fn bootstrap_input(mut self, topic: &str) -> Self {
        self.bootstrap.push(topic.to_string());
        self
    }

    /// Sets the software version annotation.
    pub fn version(mut self, v: &str) -> Self {
        self.version = v.to_string();
        self
    }

    /// Makes the job stateless (no changelog, no store persistence).
    pub fn stateless(mut self) -> Self {
        self.stateful = false;
        self
    }

    /// Sets the start position for unseen partitions.
    pub fn start_from(mut self, start: JobStart) -> Self {
        self.start = start;
        self
    }

    /// Sets the checkpoint interval in messages.
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// The changelog topic backing this job's state.
    pub fn changelog_topic(&self) -> String {
        format!("__{}-state", self.name)
    }

    /// The checkpoint group in the offset manager.
    pub fn checkpoint_group(&self) -> String {
        format!("job-{}", self.name)
    }
}

/// Pre-resolved registry handles for the job's execution counters.
/// Handles are atomic, so tasks on parallel threads update them without
/// a lock (the old lockdep-tracked `job.metrics` mutex is gone). Twin
/// counters mirror the `task.checkpoint` / `task.restore` fault sites.
#[derive(Debug, Clone)]
struct JobMetrics {
    rounds: CounterHandle,
    parallel_rounds: CounterHandle,
    messages: CounterHandle,
    checkpoints: CounterHandle,
    max_task_batch: GaugeHandle,
    task_checkpoint: CounterHandle,
    task_restore: CounterHandle,
}

impl JobMetrics {
    fn resolve(obs: &Obs) -> Self {
        let reg = obs.registry();
        JobMetrics {
            rounds: reg.counter("job.rounds"),
            parallel_rounds: reg.counter("job.parallel_rounds"),
            messages: reg.counter("job.messages"),
            checkpoints: reg.counter("job.checkpoints"),
            max_task_batch: reg.gauge("job.max_task_batch"),
            task_checkpoint: reg.counter("task.checkpoint"),
            task_restore: reg.counter("task.restore"),
        }
    }
}

struct TaskInstance {
    partition: u32,
    task: Box<dyn StreamTask>,
    store: StateStore,
    outputs: Outputs,
    positions: HashMap<TopicPartition, u64>,
    since_checkpoint: u64,
    /// Span of the last message this task processed (0 = none seen);
    /// stamped onto the task's checkpoint trace events so a checkpoint
    /// is causally linked to the produce that triggered it.
    last_span: u64,
}

/// A running job.
pub struct Job {
    cluster: Cluster,
    config: JobConfig,
    tasks: Vec<TaskInstance>,
    processed_total: u64,
    restored_records: u64,
    metrics: JobMetrics,
}

impl Job {
    /// Instantiates a job: creates the changelog topic if needed,
    /// restores task state from it, and positions every task at its
    /// committed offset (or the configured fallback).
    pub fn new<F>(cluster: &Cluster, config: JobConfig, mut factory: F) -> crate::Result<Self>
    where
        F: FnMut(u32) -> Box<dyn StreamTask>,
    {
        if config.inputs.is_empty() {
            return Err(ProcessingError::InvalidConfig(
                "job needs at least one input".into(),
            ));
        }
        let mut partitions = 0;
        for input in &config.inputs {
            partitions = partitions.max(cluster.partition_count(input)?);
        }
        if config.stateful {
            let changelog = config.changelog_topic();
            match cluster.create_topic(
                &changelog,
                TopicConfig::with_partitions(partitions)
                    .compacted()
                    .segment_bytes(64 * 1024),
            ) {
                Ok(()) => {}
                Err(liquid_messaging::MessagingError::TopicExists(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        let group = config.checkpoint_group();
        let metrics = JobMetrics::resolve(cluster.obs());
        let mut tasks = Vec::with_capacity(partitions as usize);
        let mut restored_records = 0;
        for p in 0..partitions {
            let mut store = if config.stateful {
                StateStore::with_changelog_config(
                    cluster.clone(),
                    TopicPartition::new(config.changelog_topic(), p),
                    LsmConfig {
                        injector: config.state_injector.clone(),
                        // State stores record into the cluster's sink so
                        // `kv.*` instruments land in the same registry.
                        obs: cluster.obs().clone(),
                        ..LsmConfig::default()
                    },
                )?
            } else {
                StateStore::ephemeral()
            };
            if config.stateful {
                metrics.task_restore.inc();
                if config.injector.tick("task.restore") {
                    // Crash before replaying the changelog: no state was
                    // restored, the job instance never came up.
                    return Err(ProcessingError::Injected("task.restore"));
                }
                restored_records += store.restore_from_changelog()?;
            }
            let mut positions = HashMap::new();
            for input in &config.inputs {
                if p >= cluster.partition_count(input)? {
                    continue;
                }
                let tp = TopicPartition::new(input.clone(), p);
                let committed = cluster.offsets().fetch_offset(&group, &tp);
                let offset = match (config.start, committed) {
                    (JobStart::Committed, Some(o)) => o,
                    (JobStart::Committed, None) | (JobStart::Earliest, _) => {
                        cluster.earliest_offset(&tp)?
                    }
                    (JobStart::Latest, _) => cluster.latest_offset(&tp)?,
                };
                positions.insert(tp, offset);
            }
            let mut instance = TaskInstance {
                partition: p,
                task: factory(p),
                store,
                outputs: Outputs::new(cluster.clone(), config.acks),
                positions,
                since_checkpoint: 0,
                last_span: 0,
            };
            let mut ctx = TaskContext {
                partition: p,
                input: None,
                store: &mut instance.store,
                outputs: &mut instance.outputs,
            };
            instance.task.init(&mut ctx)?;
            tasks.push(instance);
        }
        Ok(Job {
            cluster: cluster.clone(),
            config,
            tasks,
            processed_total: 0,
            restored_records,
            metrics,
        })
    }

    /// The job configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Number of tasks (= partitions of the widest input).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Messages processed over the job's lifetime (this instance).
    pub fn processed(&self) -> u64 {
        self.processed_total
    }

    /// Changelog records replayed during construction (recovery cost).
    pub fn restored_records(&self) -> u64 {
        self.restored_records
    }

    /// The observability handle shared with the cluster (registry +
    /// tracer): job counters live under `job.*` in the same registry.
    pub fn obs(&self) -> &Obs {
        self.cluster.obs()
    }

    /// A point-in-time snapshot of every registered instrument.
    pub fn snapshot(&self) -> liquid_obs::Snapshot {
        self.cluster.obs().snapshot()
    }

    /// Runs one round: every task fetches one batch from each of its
    /// input partitions and processes it. Returns messages processed.
    pub fn run_once(&mut self) -> crate::Result<u64> {
        self.run_once_limited(u64::MAX)
    }

    /// Like [`run_once`](Self::run_once) but stops each task after
    /// `max_messages_per_task` (resource-isolation throttling, §4.4).
    pub fn run_once_limited(&mut self, max_messages_per_task: u64) -> crate::Result<u64> {
        let mut processed = 0;
        let checkpoint_every = self.config.checkpoint_every;
        for t in &mut self.tasks {
            processed += run_task_once(
                &self.cluster,
                &self.config,
                t,
                max_messages_per_task,
                &self.metrics,
            )?;
            if checkpoint_every > 0 && t.since_checkpoint >= checkpoint_every {
                checkpoint_task(&self.cluster, &self.config, t, &self.metrics)?;
            }
        }
        self.metrics.rounds.inc();
        self.processed_total += processed;
        Ok(processed)
    }

    /// Like [`run_once`](Self::run_once) but tasks execute on one OS
    /// thread each — the in-process analogue of Samza running a job's
    /// tasks in parallel containers. Tasks are independent by
    /// construction (disjoint partitions, private state), so this is
    /// safe without additional locking.
    pub fn run_once_parallel(&mut self) -> crate::Result<u64> {
        let cluster = &self.cluster;
        let config = &self.config;
        let metrics = &self.metrics;
        let results: Vec<crate::Result<u64>> = liquid_sim::thread::scope(|scope| {
            let handles: Vec<_> = self
                .tasks
                .iter_mut()
                .map(|t| scope.spawn(move || run_task_once(cluster, config, t, u64::MAX, metrics)))
                .collect();
            handles
                .into_iter()
                // A panicking task is a bug in user task code;
                // sim::thread join re-raises it with its original
                // payload instead of masking it.
                .map(|h| h.join())
                .collect()
        });
        let mut processed = 0;
        for r in results {
            processed += r?;
        }
        let checkpoint_every = self.config.checkpoint_every;
        if checkpoint_every > 0 {
            for t in &mut self.tasks {
                if t.since_checkpoint >= checkpoint_every {
                    checkpoint_task(&self.cluster, &self.config, t, &self.metrics)?;
                }
            }
        }
        self.metrics.parallel_rounds.inc();
        self.processed_total += processed;
        Ok(processed)
    }

    /// Runs rounds until no input remains (bounded by `max_rounds`).
    /// Returns total messages processed.
    pub fn run_until_idle(&mut self, max_rounds: usize) -> crate::Result<u64> {
        let mut total = 0;
        for _ in 0..max_rounds {
            let n = self.run_once()?;
            total += n;
            if n == 0 {
                break;
            }
        }
        Ok(total)
    }

    /// Invokes every task's `window` callback.
    pub fn tick_windows(&mut self) -> crate::Result<()> {
        for t in &mut self.tasks {
            let mut ctx = TaskContext {
                partition: t.partition,
                input: None,
                store: &mut t.store,
                outputs: &mut t.outputs,
            };
            t.task.window(&mut ctx)?;
        }
        Ok(())
    }

    /// Commits every task's positions to the offset manager, annotated
    /// with the job's software version.
    pub fn checkpoint(&mut self) -> crate::Result<()> {
        for t in &mut self.tasks {
            checkpoint_task(&self.cluster, &self.config, t, &self.metrics)?;
        }
        Ok(())
    }

    /// Total unprocessed messages across all tasks (consumer lag).
    pub fn lag(&self) -> crate::Result<u64> {
        let mut lag = 0u64;
        for t in &self.tasks {
            for (tp, &pos) in &t.positions {
                lag = lag.saturating_add(self.cluster.latest_offset(tp)?.saturating_sub(pos));
            }
        }
        Ok(lag)
    }

    /// Moves a task's position on one input partition — the rewind
    /// primitive (§3.1). No-op if the task does not consume that
    /// partition.
    pub fn seek_input(&mut self, topic: &str, partition: u32, offset: u64) {
        let tp = TopicPartition::new(topic, partition);
        for t in &mut self.tasks {
            if t.partition == partition && t.positions.contains_key(&tp) {
                t.positions.insert(tp.clone(), offset);
            }
        }
    }

    /// Read access to a task's state (assertions and serving).
    pub fn state(&mut self, partition: u32) -> Option<&mut StateStore> {
        self.tasks
            .iter_mut()
            .find(|t| t.partition == partition)
            .map(|t| &mut t.store)
    }

    /// Sum of live state keys across tasks.
    pub fn total_state_keys(&self) -> usize {
        self.tasks.iter().map(|t| t.store.len()).sum()
    }
}

/// One task's fetch-and-process round (shared by the sequential and
/// parallel drivers).
fn run_task_once(
    cluster: &Cluster,
    config: &JobConfig,
    t: &mut TaskInstance,
    max_messages: u64,
    metrics: &JobMetrics,
) -> crate::Result<u64> {
    let bootstrap = &config.bootstrap;
    let mut processed = 0;
    let mut budget = max_messages;
    // Deterministic order: bootstrap inputs first (fully drained before
    // anything else), then the rest sorted.
    let mut tps: Vec<TopicPartition> = t.positions.keys().cloned().collect();
    tps.sort_by_key(|tp| (!bootstrap.contains(&tp.topic), tp.clone()));
    let mut bootstrap_lag = 0u64;
    for tp in tps {
        let is_bootstrap = bootstrap.contains(&tp.topic);
        if !is_bootstrap && bootstrap_lag > 0 {
            // Bootstrap streams not yet caught up: defer.
            continue;
        }
        if budget == 0 {
            break;
        }
        let Some(&pos) = t.positions.get(&tp) else {
            continue; // partition dropped from the task's inputs
        };
        // Task input arrives as one batch whose payloads still share
        // the log's buffers; messages are materialized lazily one at a
        // time, so a budget cut mid-batch never pays for the tail.
        let batch = cluster.fetch_batch(&tp, pos, config.fetch_bytes)?;
        // Rendered lazily, once per partition batch, only when a traced
        // message actually needs it.
        let mut tp_site: Option<String> = None;
        for msg in batch.messages() {
            if budget == 0 {
                break;
            }
            let mut ctx = TaskContext {
                partition: t.partition,
                input: Some(tp.clone()),
                store: &mut t.store,
                outputs: &mut t.outputs,
            };
            t.task.process(&msg, &mut ctx)?;
            if msg.span != 0 {
                t.last_span = msg.span;
                let site = tp_site.get_or_insert_with(|| tp.to_string());
                cluster
                    .obs()
                    .tracer()
                    .record(msg.span, "task.deliver", site, msg.offset);
            }
            let next = msg
                .offset
                .checked_add(1)
                .ok_or(crate::ProcessingError::OffsetOverflow {
                    what: "advancing the task position past a message",
                    value: msg.offset,
                })?;
            t.positions.insert(tp.clone(), next);
            t.since_checkpoint += 1;
            budget -= 1;
            processed += 1;
        }
        if is_bootstrap {
            let current = t.positions.get(&tp).copied().unwrap_or(pos);
            bootstrap_lag =
                bootstrap_lag.saturating_add(cluster.latest_offset(&tp)?.saturating_sub(current));
        }
    }
    metrics.messages.add(processed);
    metrics.max_task_batch.set_max(processed);
    Ok(processed)
}

fn checkpoint_task(
    cluster: &Cluster,
    config: &JobConfig,
    t: &mut TaskInstance,
    metrics: &JobMetrics,
) -> crate::Result<()> {
    metrics.task_checkpoint.inc();
    if config.injector.tick("task.checkpoint") {
        // Crash before any position is committed: on restart the task
        // re-reads from its previous checkpoint (at-least-once).
        return Err(ProcessingError::Injected("task.checkpoint"));
    }
    let group = config.checkpoint_group();
    let mut metadata = BTreeMap::new();
    metadata.insert("version".to_string(), config.version.clone());
    // Sorted so a fault injected mid-checkpoint hits a deterministic
    // partial prefix of commits (still at-least-once on restart).
    let mut positions: Vec<(&TopicPartition, u64)> =
        t.positions.iter().map(|(tp, &o)| (tp, o)).collect();
    positions.sort_by(|a, b| a.0.cmp(b.0));
    for (tp, offset) in positions {
        cluster
            .offsets()
            .commit(&group, tp, offset, metadata.clone())?;
    }
    cluster.obs().tracer().record(
        t.last_span,
        "task.checkpoint",
        &config.checkpoint_group(),
        t.since_checkpoint,
    );
    t.since_checkpoint = 0;
    metrics.checkpoints.inc();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::FnTask;
    use bytes::Bytes;
    use liquid_messaging::{ClusterConfig, Message, TopicConfig};
    use liquid_sim::clock::SimClock;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn setup(partitions: u32) -> Cluster {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic("in", TopicConfig::with_partitions(partitions))
            .unwrap();
        c.create_topic("out", TopicConfig::with_partitions(partitions))
            .unwrap();
        c
    }

    fn fill(c: &Cluster, topic: &str, partition: u32, n: u64) {
        let tp = TopicPartition::new(topic, partition);
        for i in 0..n {
            c.produce_to(
                &tp,
                Some(b(&format!("k{i}"))),
                b(&format!("m{i}")),
                AckLevel::Leader,
            )
            .unwrap();
        }
    }

    fn counting_job(c: &Cluster, name: &str) -> Job {
        Job::new(c, JobConfig::new(name, &["in"]), |_| {
            Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                ctx.store().add_counter(b"seen", 1)?;
                ctx.send("out", m.key.clone(), m.value.clone())?;
                Ok(())
            }))
        })
        .unwrap()
    }

    #[test]
    fn job_processes_and_forwards() {
        let c = setup(2);
        fill(&c, "in", 0, 10);
        fill(&c, "in", 1, 5);
        let mut job = counting_job(&c, "etl");
        assert_eq!(job.task_count(), 2);
        let n = job.run_until_idle(10).unwrap();
        assert_eq!(n, 15);
        assert_eq!(job.processed(), 15);
        // Outputs forwarded.
        let total_out: u64 = (0..2)
            .map(|p| c.latest_offset(&TopicPartition::new("out", p)).unwrap())
            .sum();
        assert_eq!(total_out, 15);
        assert_eq!(job.lag().unwrap(), 0);
    }

    #[test]
    fn task_per_partition_state_is_isolated() {
        let c = setup(2);
        fill(&c, "in", 0, 10);
        fill(&c, "in", 1, 3);
        let mut job = counting_job(&c, "etl");
        job.run_until_idle(10).unwrap();
        assert_eq!(job.state(0).unwrap().get_counter(b"seen"), 10);
        assert_eq!(job.state(1).unwrap().get_counter(b"seen"), 3);
    }

    #[test]
    fn incremental_processing_resumes_from_checkpoint() {
        let c = setup(1);
        fill(&c, "in", 0, 100);
        {
            let mut job = counting_job(&c, "stats");
            job.run_until_idle(10).unwrap();
            job.checkpoint().unwrap();
        }
        // New data arrives; a fresh instance must only process the delta.
        fill(&c, "in", 0, 7);
        let mut job2 = counting_job(&c, "stats");
        let n = job2.run_until_idle(10).unwrap();
        assert_eq!(n, 7, "only the new data is processed");
        // And the counter continued from restored state.
        assert_eq!(job2.state(0).unwrap().get_counter(b"seen"), 107);
    }

    #[test]
    fn state_recovers_from_changelog_after_crash() {
        let c = setup(1);
        fill(&c, "in", 0, 50);
        {
            let mut job = counting_job(&c, "agg");
            job.run_until_idle(10).unwrap();
            job.checkpoint().unwrap();
            // Crash: instance dropped, local stores lost.
        }
        let mut job2 = counting_job(&c, "agg");
        assert!(job2.restored_records() > 0, "changelog replayed");
        assert_eq!(job2.state(0).unwrap().get_counter(b"seen"), 50);
    }

    #[test]
    fn uncheckpointed_work_is_reprocessed_at_least_once() {
        let c = setup(1);
        fill(&c, "in", 0, 20);
        {
            let mut job = Job::new(
                &c,
                JobConfig::new("dup", &["in"])
                    .checkpoint_every(0)
                    .stateless(),
                |_| {
                    Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                        ctx.send("out", None, m.value.clone())?;
                        Ok(())
                    }))
                },
            )
            .unwrap();
            job.run_until_idle(10).unwrap();
            // Crash before any checkpoint.
        }
        let mut job2 = Job::new(
            &c,
            JobConfig::new("dup", &["in"])
                .checkpoint_every(0)
                .stateless(),
            |_| {
                Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                    ctx.send("out", None, m.value.clone())?;
                    Ok(())
                }))
            },
        )
        .unwrap();
        job2.run_until_idle(10).unwrap();
        let out: u64 = c.latest_offset(&TopicPartition::new("out", 0)).unwrap();
        assert_eq!(out, 40, "all 20 inputs emitted twice — at-least-once");
    }

    #[test]
    fn version_annotation_recorded() {
        let c = setup(1);
        fill(&c, "in", 0, 5);
        let mut job = Job::new(
            &c,
            JobConfig::new("versioned", &["in"]).version("v7"),
            |_| Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(()))),
        )
        .unwrap();
        job.run_until_idle(10).unwrap();
        job.checkpoint().unwrap();
        let commit = c
            .offsets()
            .fetch("job-versioned", &TopicPartition::new("in", 0))
            .unwrap();
        assert_eq!(commit.metadata["version"], "v7");
        assert_eq!(commit.offset, 5);
    }

    #[test]
    fn reprocessing_start_earliest_ignores_checkpoint() {
        let c = setup(1);
        fill(&c, "in", 0, 30);
        {
            let mut job = counting_job(&c, "re");
            job.run_until_idle(10).unwrap();
            job.checkpoint().unwrap();
        }
        // Kappa-style: reprocess everything with a new version.
        let mut job2 = Job::new(
            &c,
            JobConfig::new("re", &["in"])
                .version("v2")
                .start_from(JobStart::Earliest)
                .stateless(),
            |_| Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(()))),
        )
        .unwrap();
        let n = job2.run_until_idle(10).unwrap();
        assert_eq!(n, 30, "full history reprocessed");
    }

    #[test]
    fn throttled_run_limits_messages() {
        let c = setup(1);
        fill(&c, "in", 0, 100);
        let mut job = counting_job(&c, "slow");
        let n = job.run_once_limited(10).unwrap();
        assert_eq!(n, 10);
        assert_eq!(job.lag().unwrap(), 90);
    }

    #[test]
    fn parallel_round_matches_sequential_results() {
        let c = setup(4);
        for p in 0..4 {
            fill(&c, "in", p, 250);
        }
        let mut job = counting_job(&c, "par");
        let n = job.run_once_parallel().unwrap();
        assert_eq!(n, 1000);
        for p in 0..4 {
            assert_eq!(job.state(p).unwrap().get_counter(b"seen"), 250);
        }
        // Outputs all forwarded, lag drained.
        assert_eq!(job.lag().unwrap(), 0);
        assert_eq!(job.run_once_parallel().unwrap(), 0);
        // Parallel tasks updated the shared atomic registry handles.
        #[cfg(not(feature = "obs-off"))]
        {
            let snap = job.snapshot();
            assert_eq!(snap.counter("job.parallel_rounds"), 2);
            assert_eq!(snap.counter("job.messages"), 1000);
            assert_eq!(snap.gauge("job.max_task_batch"), Some(250));
        }
    }

    #[test]
    #[cfg(not(feature = "obs-off"))]
    fn snapshot_tracks_rounds_messages_and_checkpoints() {
        let c = setup(1);
        fill(&c, "in", 0, 30);
        let mut job = counting_job(&c, "meter");
        job.run_until_idle(10).unwrap();
        job.checkpoint().unwrap();
        let snap = job.snapshot();
        assert_eq!(snap.counter("job.messages"), 30);
        assert_eq!(snap.gauge("job.max_task_batch"), Some(30));
        assert!(
            snap.counter("job.rounds") >= 2,
            "processing round plus the idle round"
        );
        assert_eq!(snap.counter("job.parallel_rounds"), 0);
        assert_eq!(snap.counter("job.checkpoints"), 1);
        // Twin counter mirrors every pass through the fault site.
        assert_eq!(snap.counter("task.checkpoint"), 1);
    }

    #[test]
    #[cfg(not(feature = "obs-off"))]
    fn delivered_spans_match_produced_spans() {
        let c = setup(1);
        fill(&c, "in", 0, 3);
        let mut job = counting_job(&c, "traced");
        job.run_until_idle(10).unwrap();
        let events = job.obs().tracer().tail(256);
        let produced: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == "produce" && e.site == "in-0")
            .map(|e| e.span)
            .collect();
        let delivered: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == "task.deliver" && e.site == "in-0")
            .map(|e| e.span)
            .collect();
        assert_eq!(produced.len(), 3);
        assert_eq!(
            produced, delivered,
            "every delivered message carries the span minted at produce"
        );
    }

    #[test]
    fn latest_start_skips_history() {
        let c = setup(1);
        fill(&c, "in", 0, 50);
        let mut job = Job::new(
            &c,
            JobConfig::new("tail", &["in"])
                .start_from(JobStart::Latest)
                .stateless(),
            |_| Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(()))),
        )
        .unwrap();
        assert_eq!(job.run_until_idle(5).unwrap(), 0);
        fill(&c, "in", 0, 3);
        assert_eq!(job.run_until_idle(5).unwrap(), 3);
    }

    #[test]
    fn empty_inputs_rejected() {
        let c = setup(1);
        assert!(Job::new(&c, JobConfig::new("bad", &[]), |_| {
            Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(())))
        })
        .is_err());
    }

    #[test]
    fn task_error_propagates() {
        let c = setup(1);
        fill(&c, "in", 0, 1);
        let mut job = Job::new(&c, JobConfig::new("err", &["in"]).stateless(), |_| {
            Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| {
                Err(ProcessingError::Task("boom".into()))
            }))
        })
        .unwrap();
        assert!(matches!(
            job.run_once(),
            Err(ProcessingError::Task(msg)) if msg == "boom"
        ));
    }
}
