//! A declarative stream-transformation DSL.
//!
//! The paper's processing layer executes "arbitrary data processing …
//! ranging from data cleaning and normalization, to the computation of
//! aggregate statistics" (§1). Most such ETL jobs are a linear chain of
//! operators; this module lets them be declared instead of hand-written:
//!
//! ```
//! use liquid_processing::dsl::Stream;
//! use liquid_messaging::{AckLevel, Cluster, ClusterConfig, TopicConfig, TopicPartition};
//! use liquid_sim::clock::SimClock;
//! use bytes::Bytes;
//!
//! let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
//! cluster.create_topic("events", TopicConfig::with_partitions(1)).unwrap();
//! cluster.create_topic("shouted", TopicConfig::with_partitions(1)).unwrap();
//! let tp = TopicPartition::new("events", 0);
//! cluster.produce_to(&tp, None, Bytes::from_static(b"hello"), AckLevel::Leader).unwrap();
//!
//! let mut job = Stream::from("events")
//!     .filter(|r| !r.value.is_empty())
//!     .map_values(|v| Bytes::from(String::from_utf8_lossy(&v).to_uppercase().into_bytes()))
//!     .to("shouted")
//!     .into_job(&cluster, "shouter")
//!     .unwrap();
//! job.run_until_idle(5).unwrap();
//! let out = cluster.fetch_batch(&TopicPartition::new("shouted", 0), 0, u64::MAX).unwrap().into_messages();
//! assert_eq!(out[0].value, Bytes::from_static(b"HELLO"));
//! ```
//!
//! Chains compile into one ordinary [`Job`] — task-per-partition,
//! changelog-backed state for the keyed aggregates, checkpointing — so
//! everything the paper says about jobs applies unchanged.

use std::sync::Arc;

use bytes::Bytes;
use liquid_messaging::{Cluster, Message};
use liquid_sim::clock::Ts;

use crate::job::{Job, JobConfig};
use crate::task::{StreamTask, TaskContext};

/// One record flowing through a DSL chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Optional key (drives partitioning and keyed aggregates).
    pub key: Option<Bytes>,
    /// Payload.
    pub value: Bytes,
    /// Event time (ms).
    pub timestamp: Ts,
}

type MapFn = Arc<dyn Fn(Record) -> Record + Send + Sync>;
type FilterFn = Arc<dyn Fn(&Record) -> bool + Send + Sync>;
type FlatMapFn = Arc<dyn Fn(Record) -> Vec<Record> + Send + Sync>;
type ExtractFn = Arc<dyn Fn(&Record) -> u64 + Send + Sync>;

#[derive(Clone)]
enum Op {
    Map(MapFn),
    Filter(FilterFn),
    FlatMap(FlatMapFn),
    /// Emits `(key, running count)` per input record.
    CountByKey,
    /// Emits `(key, running sum of f(record))`.
    SumByKey(ExtractFn),
}

/// A declarative stream chain. Build with [`Stream::from`], terminate
/// with [`to`](Stream::to) + [`into_job`](Stream::into_job).
#[derive(Clone)]
pub struct Stream {
    inputs: Vec<String>,
    ops: Vec<Op>,
    sink: Option<String>,
}

impl Stream {
    /// Starts a chain reading one topic.
    pub fn from(topic: &str) -> Self {
        Stream {
            inputs: vec![topic.to_string()],
            ops: Vec::new(),
            sink: None,
        }
    }

    /// Starts a chain merging several topics (partition-aligned, as
    /// with any multi-input job).
    pub fn from_all(topics: &[&str]) -> Self {
        Stream {
            inputs: topics.iter().map(|t| t.to_string()).collect(),
            ops: Vec::new(),
            sink: None,
        }
    }

    /// Transforms each record.
    pub fn map(mut self, f: impl Fn(Record) -> Record + Send + Sync + 'static) -> Self {
        self.ops.push(Op::Map(Arc::new(f)));
        self
    }

    /// Transforms only the value.
    pub fn map_values(mut self, f: impl Fn(Bytes) -> Bytes + Send + Sync + 'static) -> Self {
        self.ops.push(Op::Map(Arc::new(move |mut r: Record| {
            r.value = f(r.value);
            r
        })));
        self
    }

    /// Re-keys each record (e.g. group RUM events by CDN).
    ///
    /// Note: re-keying changes *routing* (the sink partitions by the
    /// new key), but keyed aggregates in the same chain still group
    /// within the task's input partition. For a global per-key
    /// aggregate after re-keying, route through an intermediate topic
    /// and count in a second chain — the repartition-topic pattern (see
    /// `examples/streams_dsl.rs`).
    pub fn key_by(mut self, f: impl Fn(&Record) -> Bytes + Send + Sync + 'static) -> Self {
        self.ops.push(Op::Map(Arc::new(move |mut r: Record| {
            r.key = Some(f(&r));
            r
        })));
        self
    }

    /// Keeps only records the predicate accepts.
    pub fn filter(mut self, f: impl Fn(&Record) -> bool + Send + Sync + 'static) -> Self {
        self.ops.push(Op::Filter(Arc::new(f)));
        self
    }

    /// Expands each record into zero or more records.
    pub fn flat_map(mut self, f: impl Fn(Record) -> Vec<Record> + Send + Sync + 'static) -> Self {
        self.ops.push(Op::FlatMap(Arc::new(f)));
        self
    }

    /// Stateful: counts records per key; each input emits the key's
    /// updated count (as a decimal string value).
    pub fn count_by_key(mut self) -> Self {
        self.ops.push(Op::CountByKey);
        self
    }

    /// Stateful: sums `f(record)` per key; each input emits the key's
    /// updated sum (as a decimal string value).
    pub fn sum_by_key(mut self, f: impl Fn(&Record) -> u64 + Send + Sync + 'static) -> Self {
        self.ops.push(Op::SumByKey(Arc::new(f)));
        self
    }

    /// Sets the output topic.
    pub fn to(mut self, topic: &str) -> Self {
        self.sink = Some(topic.to_string());
        self
    }

    /// Whether the chain uses keyed state (needs a changelog).
    fn is_stateful(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, Op::CountByKey | Op::SumByKey(_)))
    }

    /// Compiles the chain into a running [`Job`] named `name`.
    pub fn into_job(self, cluster: &Cluster, name: &str) -> crate::Result<Job> {
        let inputs: Vec<&str> = self.inputs.iter().map(String::as_str).collect();
        let mut config = JobConfig::new(name, &inputs);
        if !self.is_stateful() {
            config = config.stateless();
        }
        let ops = self.ops;
        let sink = self.sink;
        Job::new(cluster, config, move |_| {
            Box::new(DslTask {
                ops: ops.clone(),
                sink: sink.clone(),
            })
        })
    }
}

struct DslTask {
    ops: Vec<Op>,
    sink: Option<String>,
}

impl StreamTask for DslTask {
    fn process(&mut self, message: &Message, ctx: &mut TaskContext<'_>) -> crate::Result<()> {
        let mut batch = vec![Record {
            key: message.key.clone(),
            value: message.value.clone(),
            timestamp: message.timestamp,
        }];
        for op in &self.ops {
            let mut next = Vec::with_capacity(batch.len());
            for record in batch {
                match op {
                    Op::Map(f) => next.push(f(record)),
                    Op::Filter(f) => {
                        if f(&record) {
                            next.push(record);
                        }
                    }
                    Op::FlatMap(f) => next.extend(f(record)),
                    Op::CountByKey => {
                        let key = record.key.clone().unwrap_or_default();
                        let mut skey = b"dsl|count|".to_vec();
                        skey.extend_from_slice(&key);
                        let n = ctx.store().add_counter(&skey, 1)?;
                        next.push(Record {
                            key: Some(key),
                            value: Bytes::from(n.to_string()),
                            timestamp: record.timestamp,
                        });
                    }
                    Op::SumByKey(f) => {
                        let delta = f(&record);
                        let key = record.key.clone().unwrap_or_default();
                        let mut skey = b"dsl|sum|".to_vec();
                        skey.extend_from_slice(&key);
                        let n = ctx.store().add_counter(&skey, delta)?;
                        next.push(Record {
                            key: Some(key),
                            value: Bytes::from(n.to_string()),
                            timestamp: record.timestamp,
                        });
                    }
                }
            }
            batch = next;
        }
        if let Some(sink) = self.sink.clone() {
            for record in batch {
                ctx.send(&sink, record.key, record.value)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_messaging::{AckLevel, ClusterConfig, TopicConfig, TopicPartition};
    use liquid_sim::clock::SimClock;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn setup(topics: &[&str]) -> Cluster {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        for t in topics {
            c.create_topic(t, TopicConfig::with_partitions(1)).unwrap();
        }
        c
    }

    fn feed(c: &Cluster, topic: &str, items: &[(&str, &str)]) {
        let tp = TopicPartition::new(topic, 0);
        for (k, v) in items {
            c.produce_to(&tp, Some(b(k)), b(v), AckLevel::Leader)
                .unwrap();
        }
    }

    fn drain(c: &Cluster, topic: &str) -> Vec<(Option<Bytes>, Bytes)> {
        c.fetch_batch(&TopicPartition::new(topic, 0), 0, u64::MAX)
            .unwrap()
            .into_messages()
            .into_iter()
            .map(|m| (m.key, m.value))
            .collect()
    }

    #[test]
    fn map_filter_chain() {
        let c = setup(&["in", "out"]);
        feed(
            &c,
            "in",
            &[("a", "keep-1"), ("b", "drop-2"), ("c", "keep-3")],
        );
        let mut job = Stream::from("in")
            .filter(|r| r.value.starts_with(b"keep"))
            .map_values(|v| Bytes::from(format!("<{}>", String::from_utf8_lossy(&v))))
            .to("out")
            .into_job(&c, "mf")
            .unwrap();
        job.run_until_idle(5).unwrap();
        let out = drain(&c, "out");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, b("<keep-1>"));
        assert_eq!(out[1].1, b("<keep-3>"));
    }

    #[test]
    fn flat_map_expands() {
        let c = setup(&["in", "out"]);
        feed(&c, "in", &[("k", "a b c")]);
        let mut job = Stream::from("in")
            .flat_map(|r| {
                String::from_utf8_lossy(&r.value)
                    .split_whitespace()
                    .map(|w| Record {
                        key: r.key.clone(),
                        value: Bytes::from(w.to_string()),
                        timestamp: r.timestamp,
                    })
                    .collect()
            })
            .to("out")
            .into_job(&c, "fm")
            .unwrap();
        job.run_until_idle(5).unwrap();
        assert_eq!(drain(&c, "out").len(), 3);
    }

    #[test]
    fn count_by_key_emits_running_counts() {
        let c = setup(&["in", "counts"]);
        feed(
            &c,
            "in",
            &[("u1", "x"), ("u2", "x"), ("u1", "x"), ("u1", "x")],
        );
        let mut job = Stream::from("in")
            .count_by_key()
            .to("counts")
            .into_job(&c, "counter")
            .unwrap();
        job.run_until_idle(5).unwrap();
        let out = drain(&c, "counts");
        assert_eq!(out.len(), 4);
        // Running counts per key: u1 -> 1,2,3; u2 -> 1.
        let u1: Vec<&Bytes> = out
            .iter()
            .filter(|(k, _)| k.as_deref() == Some(b"u1"))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(u1, vec![&b("1"), &b("2"), &b("3")]);
    }

    #[test]
    fn key_by_then_sum() {
        // The site-speed shape: re-key RUM events by CDN, sum load times.
        let c = setup(&["rum", "load-by-cdn"]);
        let tp = TopicPartition::new("rum", 0);
        for (cdn, load) in [("east", 100u64), ("west", 50), ("east", 200)] {
            c.produce_to(&tp, None, b(&format!("{cdn}|{load}")), AckLevel::Leader)
                .unwrap();
        }
        let mut job = Stream::from("rum")
            .key_by(|r| {
                let s = String::from_utf8_lossy(&r.value).to_string();
                Bytes::from(s.split('|').next().unwrap_or("?").to_string())
            })
            .sum_by_key(|r| {
                String::from_utf8_lossy(&r.value)
                    .split('|')
                    .nth(1)
                    .and_then(|x| x.parse().ok())
                    .unwrap_or(0)
            })
            .to("load-by-cdn")
            .into_job(&c, "sum")
            .unwrap();
        job.run_until_idle(5).unwrap();
        let out = drain(&c, "load-by-cdn");
        let east: Vec<&Bytes> = out
            .iter()
            .filter(|(k, _)| k.as_deref() == Some(b"east"))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(east, vec![&b("100"), &b("300")]);
    }

    #[test]
    fn stateful_dsl_state_survives_restart() {
        let c = setup(&["in", "counts"]);
        feed(&c, "in", &[("k", "1"), ("k", "2")]);
        {
            let mut job = Stream::from("in")
                .count_by_key()
                .to("counts")
                .into_job(&c, "durable")
                .unwrap();
            job.run_until_idle(5).unwrap();
            job.checkpoint().unwrap();
        }
        feed(&c, "in", &[("k", "3")]);
        let mut job2 = Stream::from("in")
            .count_by_key()
            .to("counts")
            .into_job(&c, "durable")
            .unwrap();
        job2.run_until_idle(5).unwrap();
        let out = drain(&c, "counts");
        // Counts continue: 1, 2 then 3 (not reset to 1).
        assert_eq!(out.last().unwrap().1, b("3"));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn stateless_chain_skips_changelog() {
        let c = setup(&["in", "out"]);
        let job = Stream::from("in")
            .map(|r| r)
            .to("out")
            .into_job(&c, "nostate")
            .unwrap();
        assert!(!job.config().stateful);
        assert!(!c.topic_names().iter().any(|t| t.contains("nostate")));
        let stateful = Stream::from("in")
            .count_by_key()
            .to("out")
            .into_job(&c, "withstate")
            .unwrap();
        assert!(stateful.config().stateful);
    }

    #[test]
    fn sinkless_chain_is_a_pure_aggregator() {
        let c = setup(&["in"]);
        feed(&c, "in", &[("a", "x"), ("a", "y")]);
        let mut job = Stream::from("in")
            .count_by_key()
            .into_job(&c, "agg")
            .unwrap();
        job.run_until_idle(5).unwrap();
        // State holds the count even with no output feed.
        let store = job.state(0).unwrap();
        assert_eq!(store.get_counter(b"dsl|count|a"), 2);
    }

    #[test]
    fn from_all_merges_inputs() {
        let c = setup(&["a", "b", "out"]);
        feed(&c, "a", &[("k", "from-a")]);
        feed(&c, "b", &[("k", "from-b")]);
        let mut job = Stream::from_all(&["a", "b"])
            .to("out")
            .into_job(&c, "merge")
            .unwrap();
        job.run_until_idle(5).unwrap();
        assert_eq!(drain(&c, "out").len(), 2);
    }
}
