//! Stream joins over explicit state (§3.2: "state can be represented as
//! arbitrary data structures", e.g. a dictionary used to enrich events).
//!
//! * [`StreamTableJoinTask`] materializes a (usually compacted) table
//!   feed into task state and enriches the stream side against it —
//!   the classic "user activity × user profile" join.
//! * [`WindowedStreamJoinTask`] buffers both sides in state and emits a
//!   pair whenever records with the same key arrive within the window —
//!   used by the call-graph assembly use case (§5.1).

use bytes::Bytes;
use liquid_messaging::Message;
use liquid_sim::clock::Ts;

use crate::task::{StreamTask, TaskContext};

/// Joins a stream against a table maintained from another feed.
///
/// Messages arriving on `table_topic` upsert task state (empty value =
/// delete). Messages on any other input are probes: the joiner closure
/// receives the probe and the current table value for its key and
/// returns an optional output value published to `output_topic`.
pub struct StreamTableJoinTask<F> {
    table_topic: String,
    output_topic: String,
    join: F,
}

impl<F> StreamTableJoinTask<F>
where
    F: FnMut(&Message, Option<&Bytes>) -> Option<Bytes> + Send,
{
    /// Creates a joiner. `table_topic` must be one of the job's inputs.
    pub fn new(table_topic: &str, output_topic: &str, join: F) -> Self {
        StreamTableJoinTask {
            table_topic: table_topic.to_string(),
            output_topic: output_topic.to_string(),
            join,
        }
    }
}

impl<F> StreamTask for StreamTableJoinTask<F>
where
    F: FnMut(&Message, Option<&Bytes>) -> Option<Bytes> + Send,
{
    fn process(&mut self, message: &Message, ctx: &mut TaskContext<'_>) -> crate::Result<()> {
        let from_table = ctx
            .input
            .as_ref()
            .map(|tp| tp.topic == self.table_topic)
            .unwrap_or(false);
        if from_table {
            let Some(key) = message.key.clone() else {
                return Ok(());
            };
            let mut skey = b"tbl|".to_vec();
            skey.extend_from_slice(&key);
            if message.value.is_empty() {
                ctx.store().delete(Bytes::from(skey))?;
            } else {
                ctx.store().put(Bytes::from(skey), message.value.clone())?;
            }
            return Ok(());
        }
        let table_value = match &message.key {
            Some(key) => {
                let mut skey = b"tbl|".to_vec();
                skey.extend_from_slice(key);
                ctx.store().get(&skey)
            }
            None => None,
        };
        if let Some(out) = (self.join)(message, table_value.as_ref()) {
            ctx.send(&self.output_topic.clone(), message.key.clone(), out)?;
        }
        Ok(())
    }
}

/// Joins two streams within an event-time window.
///
/// Both sides are buffered in state under `<side>|<key>|<ts>|<offset>`;
/// each arrival scans the opposite side's buffer for entries within
/// `window_ms` and emits one output per match via `combine`. Expired
/// buffer entries are garbage-collected on [`StreamTask::window`] ticks.
pub struct WindowedStreamJoinTask<F> {
    left_topic: String,
    output_topic: String,
    window_ms: u64,
    combine: F,
    max_event_time: Ts,
}

impl<F> WindowedStreamJoinTask<F>
where
    F: FnMut(&Bytes, &Bytes, &Bytes) -> Bytes + Send,
{
    /// Creates a windowed joiner; messages from `left_topic` are the
    /// "left" side, everything else the "right".
    pub fn new(left_topic: &str, output_topic: &str, window_ms: u64, combine: F) -> Self {
        WindowedStreamJoinTask {
            left_topic: left_topic.to_string(),
            output_topic: output_topic.to_string(),
            window_ms,
            combine,
            max_event_time: 0,
        }
    }
}

fn buffer_key(side: u8, key: &[u8], ts: Ts, offset: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(key.len() + 40);
    k.push(side);
    k.push(b'|');
    k.extend_from_slice(key);
    k.extend_from_slice(format!("|{ts:020}|{offset:020}").as_bytes());
    k
}

fn parse_buffer_ts(k: &[u8], key_len: usize) -> Option<Ts> {
    // layout: side(1) '|' key '|' ts(20) '|' offset(20)
    let ts_start = 2 + key_len + 1;
    std::str::from_utf8(k.get(ts_start..ts_start + 20)?)
        .ok()?
        .parse()
        .ok()
}

impl<F> StreamTask for WindowedStreamJoinTask<F>
where
    F: FnMut(&Bytes, &Bytes, &Bytes) -> Bytes + Send,
{
    fn process(&mut self, message: &Message, ctx: &mut TaskContext<'_>) -> crate::Result<()> {
        let Some(key) = message.key.clone() else {
            return Ok(()); // joins are keyed
        };
        let is_left = ctx
            .input
            .as_ref()
            .map(|tp| tp.topic == self.left_topic)
            .unwrap_or(false);
        let (own, other) = if is_left { (b'L', b'R') } else { (b'R', b'L') };
        self.max_event_time = self.max_event_time.max(message.timestamp);
        // Buffer own side.
        ctx.store().put(
            Bytes::from(buffer_key(own, &key, message.timestamp, message.offset)),
            message.value.clone(),
        )?;
        // Probe the other side: prefix scan over `<other>|<key>|`.
        let mut lo = vec![other, b'|'];
        lo.extend_from_slice(&key);
        lo.push(b'|');
        let mut hi = lo.clone();
        hi.push(0xFF);
        let matches = ctx.store().range(Some(&lo), Some(&hi));
        let output_topic = self.output_topic.clone();
        for (mk, mv) in matches {
            let Some(ts) = parse_buffer_ts(&mk, key.len()) else {
                continue;
            };
            if ts.abs_diff(message.timestamp) <= self.window_ms {
                let (left_v, right_v) = if is_left {
                    (&message.value, &mv)
                } else {
                    (&mv, &message.value)
                };
                let out = (self.combine)(&key, left_v, right_v);
                ctx.send(&output_topic, Some(key.clone()), out)?;
            }
        }
        Ok(())
    }

    fn window(&mut self, ctx: &mut TaskContext<'_>) -> crate::Result<()> {
        // GC: drop buffered entries older than the window.
        let cutoff = self.max_event_time.saturating_sub(self.window_ms);
        let doomed: Vec<Bytes> = ctx
            .store()
            .scan_all()
            .into_iter()
            .filter_map(|(k, _)| {
                if k.first() != Some(&b'L') && k.first() != Some(&b'R') {
                    return None;
                }
                // key length = total - fixed parts (2 prefix + 42 suffix)
                let key_len = k.len().checked_sub(2 + 42)?;
                let ts = parse_buffer_ts(&k, key_len)?;
                (ts < cutoff).then_some(k)
            })
            .collect();
        for k in doomed {
            ctx.store().delete(k)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobConfig};
    use liquid_messaging::{AckLevel, Cluster, ClusterConfig, TopicConfig, TopicPartition};
    use liquid_sim::clock::SimClock;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn setup() -> (Cluster, SimClock) {
        let clock = SimClock::new(0);
        let c = Cluster::new(ClusterConfig::with_brokers(1), clock.shared());
        for t in ["profiles", "activity", "enriched", "left", "right", "pairs"] {
            c.create_topic(t, TopicConfig::with_partitions(1)).unwrap();
        }
        (c, clock)
    }

    fn produce(c: &Cluster, topic: &str, key: &str, value: &str) {
        c.produce_to(
            &TopicPartition::new(topic, 0),
            Some(b(key)),
            b(value),
            AckLevel::Leader,
        )
        .unwrap();
    }

    #[test]
    fn stream_table_join_enriches() {
        let (c, _) = setup();
        produce(&c, "profiles", "u1", "Alice");
        produce(&c, "profiles", "u2", "Bob");
        produce(&c, "activity", "u1", "click");
        produce(&c, "activity", "u3", "view");
        let mut job = Job::new(
            &c,
            JobConfig::new("join", &["profiles", "activity"]).bootstrap_input("profiles"),
            |_| {
                Box::new(StreamTableJoinTask::new(
                    "profiles",
                    "enriched",
                    |probe: &Message, table: Option<&Bytes>| {
                        let name = table
                            .map(|t| String::from_utf8_lossy(t).to_string())
                            .unwrap_or_else(|| "unknown".to_string());
                        Some(Bytes::from(format!(
                            "{}:{}",
                            name,
                            String::from_utf8_lossy(&probe.value)
                        )))
                    },
                ))
            },
        )
        .unwrap();
        job.run_until_idle(10).unwrap();
        let out = c
            .fetch_batch(&TopicPartition::new("enriched", 0), 0, u64::MAX)
            .unwrap()
            .into_messages();
        assert_eq!(out.len(), 2);
        let values: Vec<String> = out
            .iter()
            .map(|m| String::from_utf8_lossy(&m.value).to_string())
            .collect();
        assert!(values.contains(&"Alice:click".to_string()));
        assert!(values.contains(&"unknown:view".to_string()));
    }

    #[test]
    fn table_delete_removes_enrichment() {
        let (c, _) = setup();
        produce(&c, "profiles", "u1", "Alice");
        // Tombstone.
        c.produce_to(
            &TopicPartition::new("profiles", 0),
            Some(b("u1")),
            Bytes::new(),
            AckLevel::Leader,
        )
        .unwrap();
        produce(&c, "activity", "u1", "click");
        let mut job = Job::new(
            &c,
            JobConfig::new("join2", &["profiles", "activity"]).bootstrap_input("profiles"),
            |_| {
                Box::new(StreamTableJoinTask::new(
                    "profiles",
                    "enriched",
                    |_: &Message, table: Option<&Bytes>| {
                        Some(Bytes::from(format!("{}", table.is_some())))
                    },
                ))
            },
        )
        .unwrap();
        job.run_until_idle(10).unwrap();
        let out = c
            .fetch_batch(&TopicPartition::new("enriched", 0), 0, u64::MAX)
            .unwrap()
            .into_messages();
        assert_eq!(out[0].value, b("false"));
    }

    #[test]
    fn windowed_join_pairs_within_window() {
        let (c, clock) = setup();
        clock.set(1_000);
        produce(&c, "left", "req-1", "frontend-call");
        clock.set(1_200);
        produce(&c, "right", "req-1", "backend-call");
        clock.set(50_000);
        produce(&c, "right", "req-1", "way-too-late");
        let mut job = Job::new(&c, JobConfig::new("wjoin", &["left", "right"]), |_| {
            Box::new(WindowedStreamJoinTask::new(
                "left",
                "pairs",
                1_000,
                |_k: &Bytes, l: &Bytes, r: &Bytes| {
                    Bytes::from(format!(
                        "{}+{}",
                        String::from_utf8_lossy(l),
                        String::from_utf8_lossy(r)
                    ))
                },
            ))
        })
        .unwrap();
        job.run_until_idle(10).unwrap();
        let out = c
            .fetch_batch(&TopicPartition::new("pairs", 0), 0, u64::MAX)
            .unwrap()
            .into_messages();
        assert_eq!(out.len(), 1, "only the in-window pair joins");
        assert_eq!(out[0].value, b("frontend-call+backend-call"));
    }

    #[test]
    fn windowed_join_gc_drops_expired_buffers() {
        let (c, clock) = setup();
        clock.set(0);
        produce(&c, "left", "k", "old");
        clock.set(100_000);
        produce(&c, "left", "k", "new");
        let mut job = Job::new(&c, JobConfig::new("gc", &["left", "right"]), |_| {
            Box::new(WindowedStreamJoinTask::new(
                "left",
                "pairs",
                1_000,
                |_: &Bytes, _: &Bytes, _: &Bytes| Bytes::new(),
            ))
        })
        .unwrap();
        job.run_until_idle(10).unwrap();
        assert_eq!(job.total_state_keys(), 2);
        job.tick_windows().unwrap();
        assert_eq!(job.total_state_keys(), 1, "expired buffer entry dropped");
    }

    #[test]
    fn keyless_messages_ignored_by_joins() {
        let (c, _) = setup();
        c.produce_to(
            &TopicPartition::new("left", 0),
            None,
            b("nokey"),
            AckLevel::Leader,
        )
        .unwrap();
        let mut job = Job::new(&c, JobConfig::new("nk", &["left", "right"]), |_| {
            Box::new(WindowedStreamJoinTask::new(
                "left",
                "pairs",
                1_000,
                |_: &Bytes, _: &Bytes, _: &Bytes| Bytes::new(),
            ))
        })
        .unwrap();
        job.run_until_idle(10).unwrap();
        assert_eq!(job.total_state_keys(), 0);
    }
}
