//! Multi-stage dataflow pipelines.
//!
//! Jobs communicate with other jobs exclusively through feeds in the
//! messaging layer, "which avoids the need for a back-pressure
//! mechanism" (§3.2): a slow downstream stage simply lags — its input
//! sits in the log — without ever slowing the upstream stage. The
//! [`Pipeline`] type wires such a chain and pumps it; experiment E1
//! measures end-to-end latency as stages are added.

use crate::job::Job;

/// One stage of a pipeline.
pub struct Stage {
    /// Human-readable name.
    pub name: String,
    /// The job implementing the stage.
    pub job: Job,
}

/// An ordered chain of jobs connected through topics.
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Appends a stage; stages run in insertion order each round.
    pub fn add_stage(&mut self, name: &str, job: Job) -> &mut Self {
        self.stages.push(Stage {
            name: name.to_string(),
            job,
        });
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Runs one round over every stage in order; returns messages
    /// processed per stage.
    pub fn run_round(&mut self) -> crate::Result<Vec<u64>> {
        let mut out = Vec::with_capacity(self.stages.len());
        for s in &mut self.stages {
            out.push(s.job.run_once()?);
        }
        Ok(out)
    }

    /// Pumps rounds until every stage is idle (or `max_rounds`).
    /// Returns total messages processed across stages.
    pub fn run_until_idle(&mut self, max_rounds: usize) -> crate::Result<u64> {
        let mut total = 0;
        for _ in 0..max_rounds {
            let round: u64 = self.run_round()?.iter().sum();
            total += round;
            if round == 0 {
                break;
            }
        }
        Ok(total)
    }

    /// Per-stage lag (unprocessed input messages).
    pub fn lags(&self) -> crate::Result<Vec<(String, u64)>> {
        self.stages
            .iter()
            .map(|s| Ok((s.name.clone(), s.job.lag()?)))
            .collect()
    }

    /// Checkpoints every stage.
    pub fn checkpoint(&mut self) -> crate::Result<()> {
        for s in &mut self.stages {
            s.job.checkpoint()?;
        }
        Ok(())
    }

    /// Access a stage's job by name.
    pub fn job_mut(&mut self, name: &str) -> Option<&mut Job> {
        self.stages
            .iter_mut()
            .find(|s| s.name == name)
            .map(|s| &mut s.job)
    }
}

#[cfg(test)]
mod tests {
    use crate::job::{Job, JobConfig};
    use crate::task::{FnTask, TaskContext};
    use bytes::Bytes;
    use liquid_messaging::{
        AckLevel, Cluster, ClusterConfig, Message, TopicConfig, TopicPartition,
    };
    use liquid_sim::clock::SimClock;

    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn forwarding_job(c: &Cluster, name: &str, input: &str, output: &str) -> Job {
        let out = output.to_string();
        Job::new(c, JobConfig::new(name, &[input]).stateless(), move |_| {
            let out = out.clone();
            Box::new(FnTask(move |m: &Message, ctx: &mut TaskContext<'_>| {
                // Uppercase transform to make each stage observable.
                let v = String::from_utf8_lossy(&m.value).to_string() + "+";
                ctx.send(&out, m.key.clone(), Bytes::from(v))?;
                Ok(())
            }))
        })
        .unwrap()
    }

    fn setup(stage_topics: &[&str]) -> Cluster {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        for t in stage_topics {
            c.create_topic(t, TopicConfig::with_partitions(1)).unwrap();
        }
        c
    }

    #[test]
    fn three_stage_pipeline_transforms_end_to_end() {
        let c = setup(&["s0", "s1", "s2", "s3"]);
        let mut p = Pipeline::new();
        p.add_stage("a", forwarding_job(&c, "a", "s0", "s1"));
        p.add_stage("b", forwarding_job(&c, "b", "s1", "s2"));
        p.add_stage("c", forwarding_job(&c, "c", "s2", "s3"));
        assert_eq!(p.len(), 3);
        for i in 0..5 {
            c.produce_to(
                &TopicPartition::new("s0", 0),
                None,
                b(&format!("m{i}")),
                AckLevel::Leader,
            )
            .unwrap();
        }
        let total = p.run_until_idle(10).unwrap();
        assert_eq!(total, 15, "5 messages × 3 stages");
        let out = c
            .fetch_batch(&TopicPartition::new("s3", 0), 0, u64::MAX)
            .unwrap()
            .into_messages();
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].value, b("m0+++"));
    }

    #[test]
    fn slow_consumer_lags_without_blocking_producer() {
        // The decoupling claim: the upstream stage processes everything
        // even though the downstream stage is throttled to a crawl.
        let c = setup(&["s0", "s1", "s2"]);
        let mut upstream = forwarding_job(&c, "up", "s0", "s1");
        let mut downstream = forwarding_job(&c, "down", "s1", "s2");
        for i in 0..100 {
            c.produce_to(
                &TopicPartition::new("s0", 0),
                None,
                b(&format!("m{i}")),
                AckLevel::Leader,
            )
            .unwrap();
        }
        upstream.run_until_idle(10).unwrap();
        assert_eq!(upstream.lag().unwrap(), 0, "producer side fully drained");
        downstream.run_once_limited(5).unwrap();
        assert_eq!(downstream.lag().unwrap(), 95, "consumer lags in the log");
        // Nothing was lost; the slow stage catches up later.
        downstream.run_until_idle(30).unwrap();
        assert_eq!(downstream.lag().unwrap(), 0);
    }

    #[test]
    fn lags_reports_per_stage() {
        let c = setup(&["s0", "s1", "s2"]);
        let mut p = Pipeline::new();
        p.add_stage("a", forwarding_job(&c, "a", "s0", "s1"));
        p.add_stage("b", forwarding_job(&c, "b", "s1", "s2"));
        c.produce_to(
            &TopicPartition::new("s0", 0),
            None,
            b("x"),
            AckLevel::Leader,
        )
        .unwrap();
        let lags = p.lags().unwrap();
        assert_eq!(lags[0], ("a".to_string(), 1));
        assert_eq!(lags[1], ("b".to_string(), 0));
        p.run_until_idle(5).unwrap();
        assert!(p.lags().unwrap().iter().all(|(_, l)| *l == 0));
    }

    #[test]
    fn job_mut_finds_stage() {
        let c = setup(&["s0", "s1"]);
        let mut p = Pipeline::new();
        p.add_stage("only", forwarding_job(&c, "only", "s0", "s1"));
        assert!(p.job_mut("only").is_some());
        assert!(p.job_mut("ghost").is_none());
        assert!(!p.is_empty());
    }
}
