//! Session windows.
//!
//! The site-speed use case (§5.1): "back-end applications can consume
//! already pre-processed data that divides user events per session."
//! A session groups a key's events separated by gaps smaller than an
//! inactivity timeout; a gap larger than the timeout closes the session.
//! Sessions live in the task's [`StateStore`] (changelog-backed) under
//! `sess|<key>` and close when the event-time watermark passes the
//! session's end plus the gap.

use bytes::Bytes;
use liquid_sim::clock::Ts;

use crate::state::StateStore;

const WATERMARK_KEY: &[u8] = b"~sess-watermark";

/// A closed (or in-flight) session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Session key (user, request, …).
    pub key: Bytes,
    /// Timestamp of the first event.
    pub start: Ts,
    /// Timestamp of the last event.
    pub end: Ts,
    /// Events in the session.
    pub events: u64,
}

impl Session {
    /// Session duration in ms.
    pub fn duration_ms(&self) -> u64 {
        self.end - self.start
    }
}

/// Sessionizer with a fixed inactivity gap.
#[derive(Debug, Clone, Copy)]
pub struct SessionWindow {
    /// Gap (ms) of inactivity that closes a session.
    pub gap_ms: u64,
}

impl SessionWindow {
    /// A sessionizer with the given inactivity gap.
    pub fn new(gap_ms: u64) -> Self {
        assert!(gap_ms > 0, "gap must be positive");
        SessionWindow { gap_ms }
    }

    fn state_key(key: &[u8]) -> Vec<u8> {
        let mut k = b"sess|".to_vec();
        k.extend_from_slice(key);
        k
    }

    fn encode(s: &Session) -> Bytes {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&s.start.to_le_bytes());
        out.extend_from_slice(&s.end.to_le_bytes());
        out.extend_from_slice(&s.events.to_le_bytes());
        Bytes::from(out)
    }

    fn decode(key: Bytes, v: &[u8]) -> Option<Session> {
        if v.len() != 24 {
            return None;
        }
        Some(Session {
            key,
            start: u64::from_le_bytes(v[0..8].try_into().ok()?),
            end: u64::from_le_bytes(v[8..16].try_into().ok()?),
            events: u64::from_le_bytes(v[16..24].try_into().ok()?),
        })
    }

    /// Records one event for `key` at `ts`. If the event's gap from the
    /// key's current session exceeds the timeout, that session closes
    /// and is returned; the event starts a new one.
    pub fn observe(
        &self,
        store: &mut StateStore,
        key: &[u8],
        ts: Ts,
    ) -> crate::Result<Option<Session>> {
        let skey = Self::state_key(key);
        let current = store
            .get(&skey)
            .and_then(|v| Self::decode(Bytes::copy_from_slice(key), &v));
        // Advance the watermark.
        let wm = store
            .get(WATERMARK_KEY)
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0);
        if ts > wm {
            store.put(
                Bytes::from_static(WATERMARK_KEY),
                Bytes::copy_from_slice(&ts.to_le_bytes()),
            )?;
        }
        let (closed, next) = match current {
            Some(mut s) if ts.saturating_sub(s.end) <= self.gap_ms => {
                // Extends the open session (late events also merge).
                s.end = s.end.max(ts);
                s.start = s.start.min(ts);
                s.events += 1;
                (None, s)
            }
            other => (
                other,
                Session {
                    key: Bytes::copy_from_slice(key),
                    start: ts,
                    end: ts,
                    events: 1,
                },
            ),
        };
        store.put(Bytes::from(skey), Self::encode(&next))?;
        Ok(closed)
    }

    /// Closes every session whose inactivity gap has elapsed relative to
    /// the event-time watermark; removes them from state.
    pub fn close_idle(&self, store: &mut StateStore) -> crate::Result<Vec<Session>> {
        let wm = store
            .get(WATERMARK_KEY)
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0);
        let mut out = Vec::new();
        for (k, v) in store.range(Some(b"sess|"), Some(b"sess}")) {
            let key = k.slice(5..);
            let Some(s) = Self::decode(key, &v) else {
                continue;
            };
            if s.end + self.gap_ms <= wm {
                out.push(s);
                store.delete(k)?;
            }
        }
        Ok(out)
    }

    /// Open sessions (diagnostics).
    pub fn open_sessions(&self, store: &mut StateStore) -> usize {
        store.range(Some(b"sess|"), Some(b"sess}")).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> StateStore {
        StateStore::ephemeral()
    }

    #[test]
    fn events_within_gap_form_one_session() {
        let w = SessionWindow::new(1_000);
        let mut s = store();
        assert!(w.observe(&mut s, b"u1", 100).unwrap().is_none());
        assert!(w.observe(&mut s, b"u1", 600).unwrap().is_none());
        assert!(w.observe(&mut s, b"u1", 1_500).unwrap().is_none());
        assert_eq!(w.open_sessions(&mut s), 1);
    }

    #[test]
    fn gap_closes_and_returns_previous_session() {
        let w = SessionWindow::new(1_000);
        let mut s = store();
        w.observe(&mut s, b"u1", 100).unwrap();
        w.observe(&mut s, b"u1", 400).unwrap();
        let closed = w.observe(&mut s, b"u1", 5_000).unwrap().unwrap();
        assert_eq!(closed.start, 100);
        assert_eq!(closed.end, 400);
        assert_eq!(closed.events, 2);
        assert_eq!(closed.duration_ms(), 300);
        assert_eq!(w.open_sessions(&mut s), 1, "new session opened");
    }

    #[test]
    fn keys_sessionize_independently() {
        let w = SessionWindow::new(1_000);
        let mut s = store();
        w.observe(&mut s, b"u1", 100).unwrap();
        w.observe(&mut s, b"u2", 150).unwrap();
        assert!(w.observe(&mut s, b"u2", 5_000).unwrap().is_some());
        assert_eq!(w.open_sessions(&mut s), 2);
    }

    #[test]
    fn close_idle_flushes_by_watermark() {
        let w = SessionWindow::new(1_000);
        let mut s = store();
        w.observe(&mut s, b"u1", 100).unwrap();
        w.observe(&mut s, b"u2", 9_000).unwrap(); // watermark -> 9000
        let closed = w.close_idle(&mut s).unwrap();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].key, Bytes::from_static(b"u1"));
        // u2's session is still within its gap of the watermark.
        assert_eq!(w.open_sessions(&mut s), 1);
    }

    #[test]
    fn late_events_merge_into_open_session() {
        let w = SessionWindow::new(1_000);
        let mut s = store();
        w.observe(&mut s, b"u1", 1_000).unwrap();
        // An out-of-order event from just before — still within gap of
        // the session end.
        w.observe(&mut s, b"u1", 500).unwrap();
        w.observe(&mut s, b"u1", 8_000).unwrap();
        let closed = w.close_idle(&mut s).unwrap();
        // Watermark is 8000; old session closed with merged bounds.
        assert_eq!(closed.len(), 0, "8000 session still open, old one merged");
        let again = w.observe(&mut s, b"u1", 20_000).unwrap().unwrap();
        assert_eq!(again.start, 8_000);
    }

    #[test]
    fn session_state_survives_changelog_recovery() {
        use liquid_messaging::{Cluster, ClusterConfig, TopicConfig, TopicPartition};
        use liquid_sim::clock::SimClock;
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic("cl", TopicConfig::with_partitions(1).compacted())
            .unwrap();
        let tp = TopicPartition::new("cl", 0);
        let w = SessionWindow::new(1_000);
        {
            let mut s = StateStore::with_changelog(c.clone(), tp.clone()).unwrap();
            w.observe(&mut s, b"u1", 100).unwrap();
            w.observe(&mut s, b"u1", 300).unwrap();
        }
        let mut restored = StateStore::with_changelog(c, tp).unwrap();
        restored.restore_from_changelog().unwrap();
        // The open session continues where it left off.
        let closed = w.observe(&mut restored, b"u1", 9_000).unwrap().unwrap();
        assert_eq!(closed.events, 2);
        assert_eq!(closed.end, 300);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gap_rejected() {
        SessionWindow::new(0);
    }
}
