//! Changelog-backed task state (paper §3.2 "Stateful processing").
//!
//! State is represented as an arbitrary keyed store, accessed locally
//! for efficiency (an embedded [`liquid_kv::LsmStore`], the RocksDB
//! analogue of §4.4). Every update is additionally published to a
//! **changelog** — a derived, compacted feed in the messaging layer.
//! After a failure, a new task instance reconstructs its state by
//! replaying the changelog partition (and because the changelog is
//! compacted, replay cost is proportional to the number of *live* keys,
//! not the number of updates — the §4.1 claim benchmarked by E4).

use bytes::Bytes;
use liquid_kv::{LsmConfig, LsmStore};
use liquid_messaging::{AckLevel, Cluster, TopicPartition};

/// A task's keyed state store, optionally mirrored to a changelog.
pub struct StateStore {
    store: LsmStore,
    changelog: Option<(Cluster, TopicPartition)>,
    /// Local writes since creation (diagnostics).
    writes: u64,
}

impl StateStore {
    /// An in-memory store without a changelog (stateless-ish helpers,
    /// tests).
    pub fn ephemeral() -> Self {
        StateStore {
            store: LsmStore::in_memory(),
            changelog: None,
            writes: 0,
        }
    }

    /// A store mirrored to `changelog_tp`, which should belong to a
    /// compacted topic.
    pub fn with_changelog(cluster: Cluster, changelog_tp: TopicPartition) -> crate::Result<Self> {
        StateStore::with_changelog_config(cluster, changelog_tp, LsmConfig::default())
    }

    /// Like [`with_changelog`](Self::with_changelog) with explicit store
    /// tuning — used by jobs to thread a fault injector into task state.
    /// Fallible because the config may name a directory-backed store.
    pub fn with_changelog_config(
        cluster: Cluster,
        changelog_tp: TopicPartition,
        config: LsmConfig,
    ) -> crate::Result<Self> {
        Ok(StateStore {
            store: LsmStore::open(config)?,
            changelog: Some((cluster, changelog_tp)),
            writes: 0,
        })
    }

    /// Rebuilds state from the changelog (recovery path). Returns the
    /// number of records replayed.
    pub fn restore_from_changelog(&mut self) -> crate::Result<u64> {
        let Some((cluster, tp)) = self.changelog.clone() else {
            return Ok(0);
        };
        let mut replayed = 0;
        let mut offset = cluster.earliest_offset(&tp)?;
        loop {
            let batch = cluster.fetch_batch(&tp, offset, 1 << 20)?.into_messages();
            if batch.is_empty() {
                break;
            }
            for msg in batch {
                offset =
                    msg.offset
                        .checked_add(1)
                        .ok_or(crate::ProcessingError::OffsetOverflow {
                            what: "advancing the changelog replay position",
                            value: msg.offset,
                        })?;
                let Some(key) = msg.key else { continue };
                if msg.value.is_empty() {
                    self.store.delete(key)?;
                } else {
                    self.store.put(key, msg.value)?;
                }
                replayed += 1;
            }
        }
        Ok(replayed)
    }

    /// Reads a key.
    pub fn get(&mut self, key: &[u8]) -> Option<Bytes> {
        self.store.get(key)
    }

    /// Writes a key, mirroring to the changelog.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> crate::Result<()> {
        let (key, value) = (key.into(), value.into());
        if let Some((cluster, tp)) = &self.changelog {
            cluster.produce_to(tp, Some(key.clone()), value.clone(), AckLevel::Leader)?;
        }
        self.store.put(key, value)?;
        self.writes += 1;
        Ok(())
    }

    /// Deletes a key, mirroring a tombstone to the changelog.
    pub fn delete(&mut self, key: impl Into<Bytes>) -> crate::Result<()> {
        let key = key.into();
        if let Some((cluster, tp)) = &self.changelog {
            cluster.produce_to(tp, Some(key.clone()), Bytes::new(), AckLevel::Leader)?;
        }
        self.store.delete(key)?;
        self.writes += 1;
        Ok(())
    }

    /// Ordered scan of `start <= key < end` (open bounds with `None`).
    pub fn range(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> Vec<(Bytes, Bytes)> {
        self.store.range(start, end)
    }

    /// All live entries in key order.
    pub fn scan_all(&self) -> Vec<(Bytes, Bytes)> {
        self.store.scan_all()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Local writes performed since creation.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Convenience: read a `u64` counter (missing key = 0).
    pub fn get_counter(&mut self, key: &[u8]) -> u64 {
        self.get(key)
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0)
    }

    /// Convenience: add to a `u64` counter, returning the new value.
    pub fn add_counter(&mut self, key: &[u8], delta: u64) -> crate::Result<u64> {
        let next = self.get_counter(key) + delta;
        self.put(
            Bytes::copy_from_slice(key),
            Bytes::copy_from_slice(&next.to_le_bytes()),
        )?;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_messaging::{ClusterConfig, TopicConfig};
    use liquid_sim::clock::SimClock;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn cluster_with_changelog() -> (Cluster, TopicPartition) {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic(
            "changelog",
            TopicConfig::with_partitions(1)
                .compacted()
                .segment_bytes(1024),
        )
        .unwrap();
        (c, TopicPartition::new("changelog", 0))
    }

    #[test]
    fn ephemeral_store_basics() {
        let mut s = StateStore::ephemeral();
        s.put("a", "1").unwrap();
        assert_eq!(s.get(b"a"), Some(b("1")));
        s.delete("a").unwrap();
        assert_eq!(s.get(b"a"), None);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.restore_from_changelog().unwrap(), 0);
    }

    #[test]
    fn changelog_mirrors_updates() {
        let (c, tp) = cluster_with_changelog();
        let mut s = StateStore::with_changelog(c.clone(), tp.clone()).unwrap();
        s.put("user", "profile-1").unwrap();
        s.put("user", "profile-2").unwrap();
        s.delete("user").unwrap();
        let msgs = c.fetch_batch(&tp, 0, u64::MAX).unwrap().into_messages();
        assert_eq!(msgs.len(), 3);
        assert!(msgs[2].value.is_empty(), "delete mirrored as tombstone");
    }

    #[test]
    fn state_restores_after_crash() {
        let (c, tp) = cluster_with_changelog();
        {
            let mut s = StateStore::with_changelog(c.clone(), tp.clone()).unwrap();
            for i in 0..50 {
                s.put(format!("k{i}"), format!("v{i}")).unwrap();
            }
            s.delete("k10").unwrap();
            // Crash: local store lost.
        }
        let mut rebuilt = StateStore::with_changelog(c.clone(), tp.clone()).unwrap();
        let replayed = rebuilt.restore_from_changelog().unwrap();
        assert_eq!(replayed, 51);
        assert_eq!(rebuilt.len(), 49);
        assert_eq!(rebuilt.get(b"k7"), Some(b("v7")));
        assert_eq!(rebuilt.get(b"k10"), None);
    }

    #[test]
    fn compacted_changelog_restores_faster() {
        // After compaction, restore replays far fewer records — the §4.1
        // "faster recovery" claim.
        let (c, tp) = cluster_with_changelog();
        {
            let mut s = StateStore::with_changelog(c.clone(), tp.clone()).unwrap();
            for i in 0..1000 {
                s.put(format!("k{}", i % 10), format!("v{i}")).unwrap();
            }
        }
        let stats = c.compact_topic("changelog").unwrap();
        assert!(stats.dedup_ratio() > 0.8);
        let mut rebuilt = StateStore::with_changelog(c.clone(), tp.clone()).unwrap();
        let replayed = rebuilt.restore_from_changelog().unwrap();
        assert!(
            replayed < 300,
            "replayed {replayed} records post-compaction"
        );
        assert_eq!(rebuilt.len(), 10);
        // Latest values won.
        assert_eq!(rebuilt.get(b"k9"), Some(b("v999")));
    }

    #[test]
    fn counters_helpers() {
        let mut s = StateStore::ephemeral();
        assert_eq!(s.get_counter(b"hits"), 0);
        assert_eq!(s.add_counter(b"hits", 3).unwrap(), 3);
        assert_eq!(s.add_counter(b"hits", 4).unwrap(), 7);
        assert_eq!(s.get_counter(b"hits"), 7);
    }

    #[test]
    fn range_scans_work() {
        let mut s = StateStore::ephemeral();
        for k in ["a", "b", "c", "d"] {
            s.put(k, "1").unwrap();
        }
        let mid = s.range(Some(b"b"), Some(b"d"));
        assert_eq!(mid.len(), 2);
        assert_eq!(s.scan_all().len(), 4);
        assert!(!s.is_empty());
    }
}
