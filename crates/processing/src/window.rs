//! Windowed aggregation over state.
//!
//! The paper lists "a window of the most recent stream data" as the
//! canonical task state (§3.2). These helpers keep per-(window, key)
//! aggregates in the task's [`StateStore`] — so windows survive failures
//! via the changelog — and close windows by event-time watermark.
//!
//! Keys are laid out as `w|<window_start:020>|<key>` so that a range
//! scan retrieves all aggregates of expired windows in order.

use bytes::Bytes;
use liquid_sim::clock::Ts;

use crate::state::StateStore;

const WATERMARK_KEY: &[u8] = b"~watermark";

/// A closed window's aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowResult {
    /// Inclusive start of the window (ms).
    pub window_start: Ts,
    /// Group key.
    pub key: Bytes,
    /// Aggregated count (or sum, depending on what was added).
    pub value: u64,
}

/// Fixed-size, non-overlapping windows.
#[derive(Debug, Clone, Copy)]
pub struct TumblingWindow {
    /// Window length (ms).
    pub size_ms: u64,
    /// Late events within this slack still count; windows close only
    /// once the watermark passes `end + lateness`.
    pub allowed_lateness_ms: u64,
}

impl TumblingWindow {
    /// Windows of `size_ms` with no lateness allowance.
    pub fn new(size_ms: u64) -> Self {
        assert!(size_ms > 0, "window size must be positive");
        TumblingWindow {
            size_ms,
            allowed_lateness_ms: 0,
        }
    }

    /// Sets the lateness allowance.
    pub fn with_lateness(mut self, ms: u64) -> Self {
        self.allowed_lateness_ms = ms;
        self
    }

    /// Start of the window containing `ts`.
    pub fn window_start(&self, ts: Ts) -> Ts {
        ts - ts % self.size_ms
    }

    /// Adds `delta` to the aggregate of (`window of ts`, `key`),
    /// advancing the event-time watermark.
    pub fn add(
        &self,
        store: &mut StateStore,
        ts: Ts,
        key: &[u8],
        delta: u64,
    ) -> crate::Result<u64> {
        let start = self.window_start(ts);
        let skey = window_key(start, key);
        let next = {
            let cur = store
                .get(&skey)
                .and_then(|v| v.as_ref().try_into().ok().map(u64::from_le_bytes))
                .unwrap_or(0);
            cur + delta
        };
        store.put(
            Bytes::from(skey),
            Bytes::copy_from_slice(&next.to_le_bytes()),
        )?;
        // Advance the watermark monotonically.
        let wm = store
            .get(WATERMARK_KEY)
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0);
        if ts > wm {
            store.put(
                Bytes::from_static(WATERMARK_KEY),
                Bytes::copy_from_slice(&ts.to_le_bytes()),
            )?;
        }
        Ok(next)
    }

    /// Current event-time watermark (max timestamp observed).
    pub fn watermark(&self, store: &mut StateStore) -> Ts {
        store
            .get(WATERMARK_KEY)
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0)
    }

    /// Closes every window whose `end + lateness <= watermark`,
    /// removing its aggregates from the store and returning them.
    pub fn close_ready(&self, store: &mut StateStore) -> crate::Result<Vec<WindowResult>> {
        let wm = self.watermark(store);
        let mut out = Vec::new();
        // All window entries are under the "w|" prefix, ordered by
        // window start.
        let entries = store.range(Some(b"w|"), Some(b"w}"));
        for (k, v) in entries {
            let Some((start, key)) = parse_window_key(&k) else {
                continue;
            };
            if start + self.size_ms + self.allowed_lateness_ms <= wm {
                let value = v
                    .as_ref()
                    .try_into()
                    .ok()
                    .map(u64::from_le_bytes)
                    .unwrap_or(0);
                out.push(WindowResult {
                    window_start: start,
                    key,
                    value,
                });
                store.delete(k)?;
            }
        }
        Ok(out)
    }

    /// Aggregates still open (diagnostics).
    pub fn open_windows(&self, store: &mut StateStore) -> usize {
        store.range(Some(b"w|"), Some(b"w}")).len()
    }
}

/// Overlapping windows: length `size_ms`, advancing every `slide_ms`.
/// An event belongs to `size/slide` windows; aggregates are stored per
/// window exactly like tumbling ones.
#[derive(Debug, Clone, Copy)]
pub struct SlidingWindow {
    /// Window length (ms).
    pub size_ms: u64,
    /// Slide interval (ms); must divide evenly into windows.
    pub slide_ms: u64,
}

impl SlidingWindow {
    /// A sliding window; `slide_ms` must be ≤ `size_ms` and positive.
    pub fn new(size_ms: u64, slide_ms: u64) -> Self {
        assert!(slide_ms > 0 && slide_ms <= size_ms, "invalid slide");
        SlidingWindow { size_ms, slide_ms }
    }

    /// Starts of every window containing `ts`.
    pub fn window_starts(&self, ts: Ts) -> Vec<Ts> {
        let last = ts - ts % self.slide_ms;
        let mut starts = Vec::new();
        let mut s = last;
        loop {
            if s + self.size_ms > ts {
                starts.push(s);
            }
            if s < self.slide_ms || s == 0 {
                break;
            }
            s -= self.slide_ms;
            if s + self.size_ms <= ts {
                break;
            }
        }
        starts.sort_unstable();
        starts
    }

    /// Adds `delta` to every window containing `ts`.
    pub fn add(&self, store: &mut StateStore, ts: Ts, key: &[u8], delta: u64) -> crate::Result<()> {
        for start in self.window_starts(ts) {
            let skey = window_key(start, key);
            let cur = store
                .get(&skey)
                .and_then(|v| v.as_ref().try_into().ok().map(u64::from_le_bytes))
                .unwrap_or(0);
            store.put(
                Bytes::from(skey),
                Bytes::copy_from_slice(&(cur + delta).to_le_bytes()),
            )?;
        }
        Ok(())
    }

    /// Reads the aggregate of the window starting at `start`.
    pub fn get(&self, store: &mut StateStore, start: Ts, key: &[u8]) -> u64 {
        store
            .get(&window_key(start, key))
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0)
    }
}

fn window_key(start: Ts, key: &[u8]) -> Vec<u8> {
    let mut k = format!("w|{start:020}|").into_bytes();
    k.extend_from_slice(key);
    k
}

fn parse_window_key(k: &[u8]) -> Option<(Ts, Bytes)> {
    let s = k.strip_prefix(b"w|")?;
    if s.len() < 21 {
        return None;
    }
    let start: Ts = std::str::from_utf8(&s[..20]).ok()?.parse().ok()?;
    Some((start, Bytes::copy_from_slice(&s[21..])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_start_aligns() {
        let w = TumblingWindow::new(1000);
        assert_eq!(w.window_start(0), 0);
        assert_eq!(w.window_start(999), 0);
        assert_eq!(w.window_start(1000), 1000);
        assert_eq!(w.window_start(1500), 1000);
    }

    #[test]
    fn counts_accumulate_per_window_and_key() {
        let w = TumblingWindow::new(1000);
        let mut s = StateStore::ephemeral();
        w.add(&mut s, 100, b"cdn-a", 1).unwrap();
        w.add(&mut s, 200, b"cdn-a", 1).unwrap();
        w.add(&mut s, 300, b"cdn-b", 1).unwrap();
        w.add(&mut s, 1100, b"cdn-a", 1).unwrap();
        assert_eq!(w.open_windows(&mut s), 3);
    }

    #[test]
    fn windows_close_when_watermark_passes() {
        let w = TumblingWindow::new(1000);
        let mut s = StateStore::ephemeral();
        w.add(&mut s, 100, b"k", 2).unwrap();
        w.add(&mut s, 500, b"k", 3).unwrap();
        assert!(w.close_ready(&mut s).unwrap().is_empty(), "window open");
        // An event at 2000 pushes the watermark past window [0,1000).
        w.add(&mut s, 2000, b"k", 1).unwrap();
        let closed = w.close_ready(&mut s).unwrap();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].window_start, 0);
        assert_eq!(closed[0].value, 5);
        assert_eq!(closed[0].key, Bytes::from_static(b"k"));
        // Closed windows are gone; the open one remains.
        assert_eq!(w.open_windows(&mut s), 1);
    }

    #[test]
    fn lateness_delays_closing() {
        let w = TumblingWindow::new(1000).with_lateness(500);
        let mut s = StateStore::ephemeral();
        w.add(&mut s, 100, b"k", 1).unwrap();
        w.add(&mut s, 1200, b"k", 1).unwrap();
        assert!(w.close_ready(&mut s).unwrap().is_empty(), "within lateness");
        // Late event still lands in the old window.
        w.add(&mut s, 900, b"k", 1).unwrap();
        w.add(&mut s, 1600, b"k", 1).unwrap();
        let closed = w.close_ready(&mut s).unwrap();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].value, 2, "late event counted");
    }

    #[test]
    fn multiple_keys_close_together() {
        let w = TumblingWindow::new(100);
        let mut s = StateStore::ephemeral();
        for key in ["a", "b", "c"] {
            w.add(&mut s, 10, key.as_bytes(), 1).unwrap();
        }
        w.add(&mut s, 250, b"later", 1).unwrap();
        let closed = w.close_ready(&mut s).unwrap();
        assert_eq!(closed.len(), 3);
        let keys: Vec<_> = closed.iter().map(|c| c.key.clone()).collect();
        assert!(keys.contains(&Bytes::from_static(b"a")));
    }

    #[test]
    fn sliding_window_assigns_multiple() {
        let w = SlidingWindow::new(1000, 500);
        let starts = w.window_starts(1200);
        assert_eq!(starts, vec![500, 1000]);
        let starts0 = w.window_starts(100);
        assert_eq!(starts0, vec![0]);
    }

    #[test]
    fn sliding_window_counts() {
        let w = SlidingWindow::new(1000, 500);
        let mut s = StateStore::ephemeral();
        w.add(&mut s, 600, b"k", 1).unwrap(); // windows 500, 0
        w.add(&mut s, 1100, b"k", 1).unwrap(); // windows 1000, 500
        assert_eq!(w.get(&mut s, 0, b"k"), 1);
        assert_eq!(w.get(&mut s, 500, b"k"), 2);
        assert_eq!(w.get(&mut s, 1000, b"k"), 1);
        assert_eq!(w.get(&mut s, 1500, b"k"), 0);
    }

    #[test]
    fn window_key_roundtrip() {
        let k = window_key(123456, b"user-9");
        let (start, key) = parse_window_key(&k).unwrap();
        assert_eq!(start, 123456);
        assert_eq!(key, Bytes::from_static(b"user-9"));
        assert_eq!(parse_window_key(b"other"), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        TumblingWindow::new(0);
    }
}
