//! Error type for the processing layer.

/// Errors surfaced by jobs and tasks.
#[derive(Debug)]
pub enum ProcessingError {
    /// The messaging layer failed.
    Messaging(liquid_messaging::MessagingError),
    /// The state store failed.
    State(liquid_kv::KvError),
    /// User task code failed.
    Task(String),
    /// Job configuration is invalid.
    InvalidConfig(String),
    /// A fault injector fired at the named operation (simulated crash).
    Injected(&'static str),
}

impl std::fmt::Display for ProcessingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessingError::Messaging(e) => write!(f, "messaging error: {e}"),
            ProcessingError::State(e) => write!(f, "state store error: {e}"),
            ProcessingError::Task(msg) => write!(f, "task error: {msg}"),
            ProcessingError::InvalidConfig(msg) => write!(f, "invalid job config: {msg}"),
            ProcessingError::Injected(op) => write!(f, "injected fault at {op}"),
        }
    }
}

impl std::error::Error for ProcessingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProcessingError::Messaging(e) => Some(e),
            ProcessingError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<liquid_messaging::MessagingError> for ProcessingError {
    fn from(e: liquid_messaging::MessagingError) -> Self {
        ProcessingError::Messaging(e)
    }
}

impl From<liquid_kv::KvError> for ProcessingError {
    fn from(e: liquid_kv::KvError) -> Self {
        ProcessingError::State(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ProcessingError::Task("boom".into())
            .to_string()
            .contains("boom"));
        assert!(ProcessingError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid"));
    }
}
