//! Error type for the processing layer.

/// Errors surfaced by jobs and tasks.
#[derive(Debug)]
pub enum ProcessingError {
    /// The messaging layer failed.
    Messaging(liquid_messaging::MessagingError),
    /// The state store failed.
    State(liquid_kv::KvError),
    /// User task code failed.
    Task(String),
    /// Job configuration is invalid.
    InvalidConfig(String),
    /// Offset-domain arithmetic overflowed while tracking positions;
    /// continuing would silently corrupt a task's consume position.
    OffsetOverflow {
        /// What the arithmetic was computing when it overflowed.
        what: &'static str,
        /// The operand that could not be advanced.
        value: u64,
    },
    /// A fault injector fired at the named operation (simulated crash).
    Injected(&'static str),
}

impl std::fmt::Display for ProcessingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessingError::Messaging(e) => write!(f, "messaging error: {e}"),
            ProcessingError::State(e) => write!(f, "state store error: {e}"),
            ProcessingError::Task(msg) => write!(f, "task error: {msg}"),
            ProcessingError::InvalidConfig(msg) => write!(f, "invalid job config: {msg}"),
            ProcessingError::OffsetOverflow { what, value } => {
                write!(f, "offset arithmetic overflow: {what} (operand {value})")
            }
            ProcessingError::Injected(op) => write!(f, "injected fault at {op}"),
        }
    }
}

impl std::error::Error for ProcessingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProcessingError::Messaging(e) => Some(e),
            ProcessingError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<liquid_messaging::MessagingError> for ProcessingError {
    fn from(e: liquid_messaging::MessagingError) -> Self {
        ProcessingError::Messaging(e)
    }
}

impl From<liquid_kv::KvError> for ProcessingError {
    fn from(e: liquid_kv::KvError) -> Self {
        ProcessingError::State(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ProcessingError::Task("boom".into())
            .to_string()
            .contains("boom"));
        assert!(ProcessingError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn offset_overflow_names_the_computation_and_operand() {
        let e = ProcessingError::OffsetOverflow {
            what: "advancing the task position past a message",
            value: u64::MAX,
        };
        let msg = e.to_string();
        assert!(msg.contains("offset arithmetic overflow"), "{msg}");
        assert!(msg.contains("task position"), "{msg}");
        assert!(msg.contains(&u64::MAX.to_string()), "{msg}");
    }
}
