//! The task abstraction: user code processing one partition.

use std::collections::HashMap;

use bytes::Bytes;
use liquid_messaging::{AckLevel, Cluster, Message, TopicPartition};

use crate::state::StateStore;

/// User-supplied stream logic. One instance runs per input partition
/// (the paper's task-per-partition parallelism, §3.2).
pub trait StreamTask: Send {
    /// Called once before the first message.
    fn init(&mut self, _ctx: &mut TaskContext<'_>) -> crate::Result<()> {
        Ok(())
    }

    /// Called for every input message.
    fn process(&mut self, message: &Message, ctx: &mut TaskContext<'_>) -> crate::Result<()>;

    /// Called on window ticks (see [`Job::tick_windows`]).
    ///
    /// [`Job::tick_windows`]: crate::job::Job::tick_windows
    fn window(&mut self, _ctx: &mut TaskContext<'_>) -> crate::Result<()> {
        Ok(())
    }
}

/// Everything a task may touch while processing: its local state, the
/// output streams, and identity information.
pub struct TaskContext<'a> {
    /// The partition this task owns (doubles as the task id).
    pub partition: u32,
    /// Partition the *current* message arrived on (differs from
    /// `partition` only for merged-input jobs).
    pub input: Option<TopicPartition>,
    pub(crate) store: &'a mut StateStore,
    pub(crate) outputs: &'a mut Outputs,
}

impl TaskContext<'_> {
    /// The task's keyed state store.
    pub fn store(&mut self) -> &mut StateStore {
        self.store
    }

    /// Publishes a message to an output feed. Keyed messages route by
    /// key hash (stable routing); keyless round-robin.
    pub fn send(
        &mut self,
        topic: &str,
        key: Option<Bytes>,
        value: Bytes,
    ) -> crate::Result<(u32, u64)> {
        self.outputs.send(topic, key, value)
    }

    /// Messages emitted so far by this task.
    pub fn emitted(&self) -> u64 {
        self.outputs.emitted
    }
}

/// Output routing shared by a task across calls (round-robin cursors
/// per topic).
pub(crate) struct Outputs {
    pub(crate) cluster: Cluster,
    pub(crate) acks: AckLevel,
    rr: HashMap<String, u64>,
    partition_counts: HashMap<String, u32>,
    pub(crate) emitted: u64,
}

impl Outputs {
    pub(crate) fn new(cluster: Cluster, acks: AckLevel) -> Self {
        Outputs {
            cluster,
            acks,
            rr: HashMap::new(),
            partition_counts: HashMap::new(),
            emitted: 0,
        }
    }

    pub(crate) fn send(
        &mut self,
        topic: &str,
        key: Option<Bytes>,
        value: Bytes,
    ) -> crate::Result<(u32, u64)> {
        let n = match self.partition_counts.get(topic) {
            Some(&n) => n,
            None => {
                let n = self.cluster.partition_count(topic)?;
                self.partition_counts.insert(topic.to_string(), n);
                n
            }
        };
        let partition = match &key {
            Some(k) => (hash_bytes(k) % n as u64) as u32,
            None => {
                let c = self.rr.entry(topic.to_string()).or_insert(0);
                let p = (*c % n as u64) as u32;
                *c += 1;
                p
            }
        };
        let tp = TopicPartition::new(topic.to_string(), partition);
        let offset = self.cluster.produce_to(&tp, key, value, self.acks)?;
        self.emitted += 1;
        Ok((partition, offset))
    }
}

fn hash_bytes(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// A [`StreamTask`] built from a closure — handy for simple ETL stages.
pub struct FnTask<F>(pub F);

impl<F> StreamTask for FnTask<F>
where
    F: FnMut(&Message, &mut TaskContext<'_>) -> crate::Result<()> + Send,
{
    fn process(&mut self, message: &Message, ctx: &mut TaskContext<'_>) -> crate::Result<()> {
        (self.0)(message, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_messaging::{ClusterConfig, TopicConfig};
    use liquid_sim::clock::SimClock;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn setup() -> Cluster {
        let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        c.create_topic("out", TopicConfig::with_partitions(4))
            .unwrap();
        c
    }

    #[test]
    fn outputs_route_keyed_stably() {
        let c = setup();
        let mut o = Outputs::new(c.clone(), AckLevel::Leader);
        let (p1, _) = o.send("out", Some(b("k1")), b("a")).unwrap();
        let (p2, _) = o.send("out", Some(b("k1")), b("b")).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(o.emitted, 2);
    }

    #[test]
    fn outputs_round_robin_keyless() {
        let c = setup();
        let mut o = Outputs::new(c, AckLevel::Leader);
        let parts: Vec<u32> = (0..4)
            .map(|_| o.send("out", None, b("x")).unwrap().0)
            .collect();
        assert_eq!(parts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn outputs_unknown_topic_errors() {
        let c = setup();
        let mut o = Outputs::new(c, AckLevel::Leader);
        assert!(o.send("missing", None, b("x")).is_err());
    }

    #[test]
    fn fn_task_runs_closure() {
        let c = setup();
        let mut store = StateStore::ephemeral();
        let mut outputs = Outputs::new(c.clone(), AckLevel::Leader);
        let mut ctx = TaskContext {
            partition: 0,
            input: None,
            store: &mut store,
            outputs: &mut outputs,
        };
        let mut task = FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
            ctx.store().add_counter(b"count", 1)?;
            ctx.send("out", m.key.clone(), m.value.clone())?;
            Ok(())
        });
        let msg = Message {
            offset: 0,
            timestamp: 0,
            key: None,
            value: b("hello"),
            span: 0,
        };
        task.process(&msg, &mut ctx).unwrap();
        assert_eq!(ctx.store().get_counter(b"count"), 1);
        assert_eq!(ctx.emitted(), 1);
    }
}
