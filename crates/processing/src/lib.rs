//! The Liquid processing layer (paper §3.2, §4.2, §4.4).
//!
//! A stateful stream-processing framework in the mold of Apache Samza:
//!
//! * a **job** embodies computation over streams; it is split into one
//!   **task per input partition** for parallelism ([`job`], [`task`]);
//! * tasks hold **explicit local state** in an embedded LSM store
//!   ([`liquid_kv`]); every state update is also published to a
//!   **changelog** — a compacted feed in the messaging layer — from
//!   which state is reconstructed after failure ([`state`]);
//! * tasks **checkpoint** their input offsets (with metadata
//!   annotations such as the software version) to the offset manager,
//!   enabling **incremental processing**: a restarted or periodic job
//!   reads only data it has not yet seen ([`job`], §4.2);
//! * jobs communicate exclusively by writing to and reading from the
//!   messaging layer, which decouples producers from consumers and
//!   avoids any backpressure protocol (§3.2) — [`pipeline`] wires
//!   multi-stage dataflow graphs this way;
//! * [`window`] and [`join`] provide the standard building blocks:
//!   tumbling/sliding window aggregation, stream-table joins.

#![forbid(unsafe_code)]

pub mod aggregates;
pub mod dsl;
pub mod error;
pub mod job;
pub mod join;
pub mod pipeline;
pub mod session;
pub mod state;
pub mod task;
pub mod window;

pub use aggregates::{KeyedAggregate, RunningStats, StatsView};
pub use dsl::{Record, Stream};
pub use error::ProcessingError;
pub use job::{Job, JobConfig, JobStart};
pub use pipeline::{Pipeline, Stage};
pub use session::{Session, SessionWindow};
pub use state::StateStore;
pub use task::{FnTask, StreamTask, TaskContext};

/// Result alias for processing operations.
pub type Result<T> = std::result::Result<T, ProcessingError>;
