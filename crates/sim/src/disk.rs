//! Disk cost model.
//!
//! The page-cache model charges a simulated cost for every miss; this
//! module defines where those costs come from. The defaults approximate a
//! 2014-era data-center disk subsystem (the hardware the paper deployed
//! on): a fixed positioning latency per random access plus a streaming
//! transfer rate, with sequential follow-on reads paying only transfer
//! cost.

/// Cost model for a single storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Latency charged for a random positioning operation, in nanoseconds.
    pub seek_ns: u64,
    /// Streaming throughput in bytes per microsecond (= MB/s).
    pub bytes_per_us: u64,
    /// Latency of serving a page from RAM, in nanoseconds.
    pub ram_ns: u64,
}

impl Default for DiskModel {
    fn default() -> Self {
        // ~4ms seek, ~150 MB/s streaming, ~100ns RAM access.
        DiskModel {
            seek_ns: 4_000_000,
            bytes_per_us: 150,
            ram_ns: 100,
        }
    }
}

impl DiskModel {
    /// A model resembling a data-center SSD: no mechanical seek, higher
    /// throughput. Useful for ablations.
    pub fn ssd() -> Self {
        DiskModel {
            seek_ns: 80_000,
            bytes_per_us: 500,
            ram_ns: 100,
        }
    }

    /// Cost in nanoseconds of a random read of `bytes` from disk.
    pub fn random_read_ns(&self, bytes: u64) -> u64 {
        self.seek_ns + self.transfer_ns(bytes)
    }

    /// Cost in nanoseconds of reading `bytes` sequentially (no seek).
    pub fn sequential_read_ns(&self, bytes: u64) -> u64 {
        self.transfer_ns(bytes)
    }

    /// Cost in nanoseconds of serving `bytes` from RAM.
    pub fn ram_read_ns(&self, _bytes: u64) -> u64 {
        self.ram_ns
    }

    fn transfer_ns(&self, bytes: u64) -> u64 {
        // bytes / (bytes/us) = us; convert to ns. Round up so tiny reads
        // are never free.
        let us = bytes.div_ceil(self.bytes_per_us.max(1));
        us.max(1) * 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_read_includes_seek() {
        let m = DiskModel::default();
        assert!(m.random_read_ns(4096) > m.seek_ns);
    }

    #[test]
    fn sequential_cheaper_than_random() {
        let m = DiskModel::default();
        assert!(m.sequential_read_ns(4096) < m.random_read_ns(4096));
    }

    #[test]
    fn ram_cheapest() {
        let m = DiskModel::default();
        assert!(m.ram_read_ns(4096) < m.sequential_read_ns(4096));
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let m = DiskModel::default();
        assert!(m.sequential_read_ns(1 << 20) > m.sequential_read_ns(1 << 10));
    }

    #[test]
    fn ssd_has_lower_seek() {
        assert!(DiskModel::ssd().seek_ns < DiskModel::default().seek_ns);
    }

    #[test]
    fn zero_byte_read_not_free() {
        let m = DiskModel::default();
        assert!(m.sequential_read_ns(0) >= 1_000);
    }
}
