//! Vector clocks: the happens-before algebra under liquid-check's race
//! detector.
//!
//! A [`VClock`] maps virtual-thread ids to logical clocks. Event `a`
//! happens-before event `b` iff `clock(a) <= clock(b)` component-wise;
//! two events whose clocks are incomparable are *concurrent*, and a
//! concurrent read/write pair on the same [`Shared`] cell is a data
//! race. The scheduler threads clocks through every synchronization
//! edge it controls: thread fork/join, lock release → acquire (per
//! lockdep rank instance), and channel send → receive.
//!
//! [`Shared`]: crate::sched::Shared

use std::fmt;

/// A vector clock over virtual-thread ids. Missing components are zero,
/// so clocks for short runs stay tiny.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    /// `slots[tid]` = latest clock of thread `tid` known to this event.
    slots: Vec<u32>,
}

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        VClock::default()
    }

    /// The component for `tid`.
    pub fn get(&self, tid: usize) -> u32 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s own component by one — a new event on that
    /// thread.
    pub fn tick(&mut self, tid: usize) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] += 1;
    }

    /// Component-wise maximum: after `self.join(other)`, everything
    /// ordered before either input is ordered before `self`.
    pub fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (i, &v) in other.slots.iter().enumerate() {
            if self.slots[i] < v {
                self.slots[i] = v;
            }
        }
    }

    /// `self <= other` component-wise: an event stamped `self`
    /// happens-before (or is) one stamped `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.get(i))
    }

    /// Neither clock is ordered before the other: the events are
    /// concurrent.
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Fork: the clock a child thread starts with — the parent's full
    /// knowledge, plus the child's own first event.
    pub fn fork(&self, child: usize) -> VClock {
        let mut c = self.clone();
        c.tick(child);
        c
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock_precedes_everything() {
        let zero = VClock::new();
        let mut c = VClock::new();
        c.tick(3);
        assert!(zero.le(&c));
        assert!(zero.le(&zero));
        assert!(!c.le(&zero));
    }

    #[test]
    fn tick_orders_successive_events_on_one_thread() {
        let mut a = VClock::new();
        a.tick(0);
        let snap = a.clone();
        a.tick(0);
        assert!(snap.le(&a));
        assert!(!a.le(&snap));
        assert!(!snap.concurrent(&a));
    }

    #[test]
    fn independent_threads_are_concurrent() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        assert!(a.concurrent(&b));
        assert!(b.concurrent(&a));
    }

    #[test]
    fn join_is_component_wise_max_and_orders_both_inputs() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        let mut j = a.clone();
        j.join(&b);
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
        assert!(a.le(&j));
        assert!(b.le(&j));
    }

    #[test]
    fn join_is_idempotent_commutative_associative() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(2);
        let mut b = VClock::new();
        b.tick(1);
        b.tick(2);
        b.tick(2);

        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(ab, ba);

        let mut aa = a.clone();
        aa.join(&a);
        assert_eq!(aa, a);

        let mut c = VClock::new();
        c.tick(4);
        let mut ab_c = ab.clone();
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn fork_orders_parent_prefix_before_child() {
        let mut parent = VClock::new();
        parent.tick(0);
        parent.tick(0);
        let child = parent.fork(1);
        // Everything the parent did before the fork precedes the child.
        assert!(parent.le(&child));
        // The child's own event does not precede the parent.
        assert!(!child.le(&parent));
        assert_eq!(child.get(1), 1);
    }

    #[test]
    fn release_acquire_edge_orders_critical_sections() {
        // Model: t0 writes, releases lock L; t1 acquires L, reads.
        let mut t0 = VClock::new();
        t0.tick(0); // write event
        let mut lock_vc = VClock::new();
        lock_vc.join(&t0); // release: lock learns t0's clock
        t0.tick(0);
        let mut t1 = VClock::new();
        t1.tick(1);
        t1.join(&lock_vc); // acquire: t1 learns the lock's clock
        t1.tick(1); // read event
        let write_stamp = {
            let mut w = VClock::new();
            w.tick(0);
            w
        };
        assert!(write_stamp.le(&t1), "write must precede the read via L");
    }

    #[test]
    fn missing_components_read_as_zero() {
        let mut a = VClock::new();
        a.tick(5);
        assert_eq!(a.get(0), 0);
        assert_eq!(a.get(5), 1);
        assert_eq!(a.get(99), 0);
        let b = VClock::new();
        assert!(b.le(&a));
    }

    #[test]
    fn display_is_compact() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(2);
        assert_eq!(a.to_string(), "[1,0,1]");
    }
}
