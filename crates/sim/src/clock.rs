//! Clock abstraction: real wall-clock time or a manually advanced
//! simulated clock.
//!
//! All Liquid components take a [`SharedClock`] instead of calling
//! `SystemTime::now()` directly, so retention, log-flush timeouts,
//! consumer-session expiry and window boundaries can be driven
//! deterministically in tests and experiments.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch (or since simulation start for a
/// [`SimClock`]).
pub type Ts = u64;

/// A source of the current time in milliseconds.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds.
    fn now(&self) -> Ts;
}

/// Reference-counted trait object used throughout the workspace.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock time backed by [`SystemTime`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl SystemClock {
    /// Returns a [`SharedClock`] reading real wall-clock time.
    pub fn shared() -> SharedClock {
        Arc::new(SystemClock)
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Ts {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system time before Unix epoch")
            .as_millis() as Ts
    }
}

/// A simulated clock that only moves when explicitly advanced.
///
/// Cloning shares the underlying counter, so a component holding a clone
/// observes advances made elsewhere.
///
/// ```
/// use liquid_sim::clock::{Clock, SimClock};
///
/// let clock = SimClock::new(1_000);
/// assert_eq!(clock.now(), 1_000);
/// clock.advance(250);
/// assert_eq!(clock.now(), 1_250);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a simulated clock starting at `start_ms`.
    pub fn new(start_ms: Ts) -> Self {
        SimClock {
            now_ms: Arc::new(AtomicU64::new(start_ms)),
        }
    }

    /// Advances the clock by `delta_ms` and returns the new time.
    pub fn advance(&self, delta_ms: u64) -> Ts {
        self.now_ms.fetch_add(delta_ms, Ordering::SeqCst) + delta_ms
    }

    /// Jumps the clock to `now_ms`. Panics if this would move time
    /// backwards, which no Liquid component tolerates.
    pub fn set(&self, now_ms: Ts) {
        let prev = self.now_ms.swap(now_ms, Ordering::SeqCst);
        assert!(
            prev <= now_ms,
            "SimClock moved backwards: {prev} -> {now_ms}"
        );
    }

    /// Wraps this clock in a [`SharedClock`].
    pub fn shared(&self) -> SharedClock {
        Arc::new(self.clone())
    }
}

impl Clock for SimClock {
    fn now(&self) -> Ts {
        self.now_ms.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_starts_at_given_time() {
        let c = SimClock::new(42);
        assert_eq!(c.now(), 42);
    }

    #[test]
    fn sim_clock_advances() {
        let c = SimClock::new(0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn sim_clock_clones_share_state() {
        let c = SimClock::new(0);
        let c2 = c.clone();
        c.advance(100);
        assert_eq!(c2.now(), 100);
    }

    #[test]
    fn sim_clock_set_forward() {
        let c = SimClock::new(10);
        c.set(50);
        assert_eq!(c.now(), 50);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn sim_clock_set_backwards_panics() {
        let c = SimClock::new(100);
        c.set(50);
    }

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        // Sanity: after 2020-01-01 in ms.
        assert!(a > 1_577_836_800_000);
    }

    #[test]
    fn shared_clock_as_trait_object() {
        let sim = SimClock::new(7);
        let shared: SharedClock = sim.shared();
        assert_eq!(shared.now(), 7);
        sim.advance(3);
        assert_eq!(shared.now(), 10);
    }
}
