//! Simulation substrate for the Liquid data integration stack.
//!
//! Every other crate in the workspace builds on the primitives here:
//!
//! * [`clock`] — a [`clock::Clock`] abstraction with a real
//!   [`clock::SystemClock`] and a manually-advanced
//!   [`clock::SimClock`] so that time-dependent behaviour
//!   (retention, flush timeouts, windows, session expiry) is testable
//!   deterministically.
//! * [`rng`] — seeded random number generation and the skewed
//!   distributions used by workload generators.
//! * [`pagecache`] — an explicit OS page-cache model reproducing the
//!   "anti-caching" behaviour the paper relies on in §4.1: the head of an
//!   append-only log stays RAM-resident, cold reads pay a simulated disk
//!   cost, and sequential access triggers prefetching.
//! * [`disk`] — a simple disk cost model (seek latency + transfer rate).
//! * [`failure`] — deterministic and probabilistic failure injection.
//! * [`chaos`] — seeded chaos plans: reproducible operation/fault
//!   interleavings interpreted by the integration-level chaos harness.
//! * [`stats`] — re-exports the counters and log-bucketed histograms
//!   that now live in `liquid_obs::stats`.
//! * [`sched`] — liquid-check: the deterministic model-checking
//!   scheduler (virtual threads, DFS interleaving explorer, schedule
//!   replay) and its [`sched::Shared`] tracked cells.
//! * [`vclock`] — the vector clocks behind the happens-before race
//!   detector.
//! * [`lockdep`] — rank-tracked locks; under a model run every
//!   acquire/release is also a schedule point.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod clock;
pub mod disk;
pub mod failure;
pub mod lockdep;
pub mod pagecache;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod vclock;

/// Schedulable stand-ins for `std::thread`: the only spawn primitives
/// the `raw-thread` lint permits outside `crates/sim`.
pub mod thread {
    pub use crate::sched::{
        scope, spawn, spawn_named, yield_point, JoinHandle, Scope, ScopedJoinHandle,
    };
}

pub use clock::{Clock, SharedClock, SimClock, SystemClock, Ts};
