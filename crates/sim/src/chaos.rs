//! Seeded chaos plans (§4.3 availability testing).
//!
//! A [`ChaosPlan`] is a reproducible interleaving of cluster operations
//! and fault injections, generated entirely from one `u64` seed. The
//! plan itself is plain data — it knows nothing about the messaging or
//! processing layers — so it lives here in the simulation substrate and
//! is *interpreted* by the integration-level chaos harness
//! (`tests/chaos.rs`), which maps each op onto a full Liquid stack and
//! checks the durability invariants after every recovery.
//!
//! Keeping generation separate from interpretation is what makes a
//! failing run replayable: the seed fully determines the plan, and the
//! harness's injector tick order is deterministic, so
//! `CHAOS_SEED=<seed>` reproduces the exact same crash.

use rand::Rng;

use crate::rng::seeded;

/// Producer acknowledgement level, mirrored as plain data so plans do
/// not depend on the messaging crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckChoice {
    /// Wait for every in-sync replica (durable; invariant 1 applies).
    All,
    /// Wait for the leader only.
    Leader,
    /// Fire and forget.
    None,
}

/// Which layer's injector a scheduled fault arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The feed's replica logs (append / roll / compaction rewrite).
    Log,
    /// The cluster (replication fetch, leader election, offset commit).
    Cluster,
    /// The job (checkpoint, changelog restore).
    Job,
    /// Task state stores (WAL append, flush, SSTable write, compaction).
    State,
}

/// One step of a chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOp {
    /// Produce one keyed record. `key` indexes a small key space so
    /// compaction has duplicates to drop; `tag` makes the value unique.
    Produce {
        /// Key index (harness maps to `k{key}`).
        key: u8,
        /// Monotone per-plan tag making every value distinct.
        tag: u32,
        /// Acknowledgement level.
        ack: AckChoice,
    },
    /// Produce a batch of `count` keyed records through the group-commit
    /// path. Tags `tag..tag + count` make each value distinct; the whole
    /// batch shares one acknowledgement, so a crash landing mid-batch
    /// must drop or commit it atomically (never a partial ack).
    ProduceBatch {
        /// Key index of the first record; record `i` uses
        /// `(key + i) % 8` so batches span the key space.
        key: u8,
        /// Tag of the first record; record `i` carries `tag + i`.
        tag: u32,
        /// Records in the batch (1..=16).
        count: u8,
        /// Acknowledgement level for the whole batch.
        ack: AckChoice,
    },
    /// Consume everything currently readable and fold it into the
    /// harness's model of delivered data.
    Consume,
    /// Kill broker `broker % broker_count`.
    KillBroker {
        /// Broker index (harness wraps by cluster size).
        broker: u8,
    },
    /// Restart broker `broker % broker_count`.
    RestartBroker {
        /// Broker index (harness wraps by cluster size).
        broker: u8,
    },
    /// Run one replication round.
    ReplicateTick,
    /// Compact the feed.
    Compact,
    /// Produce a burst to the size-retained feed, then apply its
    /// retention policy — whole sealed segments are dropped from the
    /// front (`log.segment-drop`), and the harness checks the surviving
    /// suffix equals read-then-filter of everything produced.
    EnforceRetention {
        /// Records in the burst (1..=8); tags are assigned by the
        /// harness's own retained-feed counter, not the produce tags.
        count: u8,
    },
    /// Cold-read sweep: fetch every feed from its earliest offset,
    /// churning the segment-read cache (fills and `log.cache-evict`
    /// evictions under the harness's deliberately tiny capacity).
    CacheSweep,
    /// Run the processing job until idle.
    RunJob,
    /// Checkpoint the processing job.
    Checkpoint,
    /// Crash-and-recover the job: drop the instance and build a fresh
    /// one that restores from changelog + checkpoint (invariant 3).
    CrashJob,
    /// Arm `site`'s injector to fire on its `after_ops`-th upcoming
    /// tick (1-based, [`FailureInjector::fail_at`] semantics).
    ///
    /// [`FailureInjector::fail_at`]: crate::failure::FailureInjector::fail_at
    InjectFault {
        /// Which layer crashes.
        site: FaultSite,
        /// How many decision points ahead the crash lands.
        after_ops: u8,
    },
}

/// A reproducible sequence of chaos operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The generating seed (printed in failure repro lines).
    pub seed: u64,
    /// The operations, in execution order.
    pub ops: Vec<ChaosOp>,
}

impl ChaosPlan {
    /// Generates a plan of `len` operations from `seed`. Identical
    /// inputs yield identical plans on every platform.
    ///
    /// The mix is weighted toward produces (so the invariants have data
    /// to bite on), with faults, broker churn and recovery actions
    /// interleaved. Every plan ends with a deterministic recovery
    /// suffix appended by the harness, not generated here.
    pub fn generate(seed: u64, len: usize) -> Self {
        let mut rng = seeded(seed);
        let mut ops = Vec::with_capacity(len);
        let mut tag: u32 = 0;
        for _ in 0..len {
            let roll = rng.gen_range(0u32..100);
            let op = match roll {
                // ~40%: produce across all ack levels (half at All so
                // invariant 1 is well exercised).
                0..=19 => {
                    tag += 1;
                    ChaosOp::Produce {
                        key: rng.gen_range(0u8..8),
                        tag,
                        ack: AckChoice::All,
                    }
                }
                20..=31 => {
                    tag += 1;
                    ChaosOp::Produce {
                        key: rng.gen_range(0u8..8),
                        tag,
                        ack: AckChoice::Leader,
                    }
                }
                32..=35 => {
                    tag += 1;
                    ChaosOp::Produce {
                        key: rng.gen_range(0u8..8),
                        tag,
                        ack: AckChoice::None,
                    }
                }
                // ~4%: group-commit batches, half at All so the torn-
                // batch atomicity invariant is exercised under faults.
                36..=39 => {
                    let count = rng.gen_range(2u8..=16);
                    let first = tag + 1;
                    tag += count as u32;
                    ChaosOp::ProduceBatch {
                        key: rng.gen_range(0u8..8),
                        tag: first,
                        count,
                        ack: if rng.gen_range(0u32..2) == 0 {
                            AckChoice::All
                        } else {
                            AckChoice::Leader
                        },
                    }
                }
                40..=47 => ChaosOp::Consume,
                // ~4%: cold sweeps so the read cache fills and evicts.
                48..=51 => ChaosOp::CacheSweep,
                52..=57 => ChaosOp::ReplicateTick,
                58..=63 => ChaosOp::KillBroker {
                    broker: rng.gen_range(0u8..8),
                },
                64..=69 => ChaosOp::RestartBroker {
                    broker: rng.gen_range(0u8..8),
                },
                70..=74 => ChaosOp::Compact,
                // ~5%: retention bursts so whole-segment drops happen.
                75..=79 => ChaosOp::EnforceRetention {
                    count: rng.gen_range(1u8..=8),
                },
                80..=85 => ChaosOp::RunJob,
                86..=88 => ChaosOp::Checkpoint,
                89..=91 => ChaosOp::CrashJob,
                _ => ChaosOp::InjectFault {
                    site: match rng.gen_range(0u32..4) {
                        0 => FaultSite::Log,
                        1 => FaultSite::Cluster,
                        2 => FaultSite::Job,
                        _ => FaultSite::State,
                    },
                    after_ops: rng.gen_range(1u8..20),
                },
            };
            ops.push(op);
        }
        ChaosPlan { seed, ops }
    }

    /// Number of records produced at [`AckChoice::All`] (batch ops count
    /// every record they carry) — the records invariant 1 guards.
    pub fn acked_all_produces(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                ChaosOp::Produce {
                    ack: AckChoice::All,
                    ..
                } => 1,
                ChaosOp::ProduceBatch {
                    ack: AckChoice::All,
                    count,
                    ..
                } => *count as usize,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = ChaosPlan::generate(42, 500);
        let b = ChaosPlan::generate(42, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosPlan::generate(1, 200);
        let b = ChaosPlan::generate(2, 200);
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn plans_have_requested_length() {
        for len in [0, 1, 100, 1000] {
            assert_eq!(ChaosPlan::generate(9, len).ops.len(), len);
        }
    }

    #[test]
    fn plans_exercise_all_op_kinds() {
        // Over a long plan every variant should appear.
        let plan = ChaosPlan::generate(7, 2000);
        let mut seen = [false; 13];
        for op in &plan.ops {
            let idx = match op {
                ChaosOp::Produce { .. } => 0,
                ChaosOp::Consume => 1,
                ChaosOp::KillBroker { .. } => 2,
                ChaosOp::RestartBroker { .. } => 3,
                ChaosOp::ReplicateTick => 4,
                ChaosOp::Compact => 5,
                ChaosOp::RunJob => 6,
                ChaosOp::Checkpoint => 7,
                ChaosOp::CrashJob => 8,
                ChaosOp::InjectFault { .. } => 9,
                ChaosOp::ProduceBatch { .. } => 10,
                ChaosOp::EnforceRetention { .. } => 11,
                ChaosOp::CacheSweep => 12,
            };
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing op kinds: {seen:?}");
    }

    #[test]
    fn produce_tags_are_unique() {
        // Every tag any record will carry — singles contribute one,
        // batches contribute `count` consecutive tags.
        let plan = ChaosPlan::generate(13, 1000);
        let mut tags: Vec<u32> = Vec::new();
        for op in &plan.ops {
            match op {
                ChaosOp::Produce { tag, .. } => tags.push(*tag),
                ChaosOp::ProduceBatch { tag, count, .. } => {
                    tags.extend(*tag..*tag + *count as u32);
                }
                _ => {}
            }
        }
        let n = tags.len();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), n, "duplicate produce tags");
    }

    #[test]
    fn batch_ops_are_bounded_and_present() {
        let plan = ChaosPlan::generate(11, 2000);
        let mut batches = 0;
        for op in &plan.ops {
            if let ChaosOp::ProduceBatch { count, .. } = op {
                assert!((2..=16).contains(count));
                batches += 1;
            }
        }
        assert!(batches > 10, "only {batches} batch ops in 2000");
    }

    #[test]
    fn retention_bursts_are_bounded_and_present() {
        let plan = ChaosPlan::generate(19, 2000);
        let mut n = 0;
        for op in &plan.ops {
            if let ChaosOp::EnforceRetention { count } = op {
                assert!((1..=8).contains(count));
                n += 1;
            }
        }
        assert!(n > 10, "only {n} retention ops in 2000");
    }

    #[test]
    fn acked_all_produces_counted() {
        let plan = ChaosPlan::generate(21, 1000);
        let n = plan.acked_all_produces();
        assert!(n > 0, "no AckLevel::All produces in 1000 ops");
        assert!(n < 1000);
    }

    #[test]
    fn inject_fault_ops_are_bounded() {
        let plan = ChaosPlan::generate(5, 2000);
        for op in &plan.ops {
            if let ChaosOp::InjectFault { after_ops, .. } = op {
                assert!((1..20).contains(after_ops));
            }
        }
    }
}
