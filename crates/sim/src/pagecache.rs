//! Explicit OS page-cache model ("anti-caching", paper §4.1).
//!
//! The messaging layer's performance story depends on the OS file-system
//! cache: appends land in RAM and are flushed to disk after a timeout;
//! because the log is append-only, the *head* of the log stays resident
//! while cold segments age out, so tailing consumers read from memory.
//! Rewinding consumers fault pages in from disk — the first reads are
//! slow, then prefetching makes successive sequential reads fast.
//!
//! A real page cache is invisible and machine-dependent, so experiments
//! E2/E3 use this model instead: it tracks page residency with LRU
//! eviction, charges a [`crate::disk::DiskModel`] cost for
//! misses, detects sequential access per file, and prefetches ahead of
//! sequential readers.

use std::collections::{BTreeMap, HashMap};

use crate::clock::{SharedClock, Ts};
use crate::disk::DiskModel;

/// Identifies a cached file (e.g. one log segment).
pub type FileId = u64;

/// A page within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// File the page belongs to.
    pub file: FileId,
    /// Zero-based page number within the file.
    pub page: u64,
}

/// Configuration for the page-cache model.
#[derive(Debug, Clone)]
pub struct PageCacheConfig {
    /// Bytes per page.
    pub page_size: usize,
    /// Maximum resident pages before LRU eviction kicks in.
    pub capacity_pages: usize,
    /// Pages prefetched ahead of a sequential read miss.
    pub prefetch_pages: usize,
    /// Dirty pages older than this are flushed to disk (made clean);
    /// models the configurable flush timeout of §4.1.
    pub flush_after_ms: u64,
    /// Cost model for misses and flushes.
    pub disk: DiskModel,
}

impl Default for PageCacheConfig {
    fn default() -> Self {
        PageCacheConfig {
            page_size: 4096,
            capacity_pages: 16 * 1024, // 64 MiB of 4 KiB pages
            prefetch_pages: 8,
            flush_after_ms: 500,
            disk: DiskModel::default(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PageMeta {
    lru_tick: u64,
    dirty: bool,
    /// When the page was first dirtied (for flush-after accounting).
    dirtied_at: Ts,
}

/// Counters exposed for experiments.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Page reads served from RAM.
    pub hits: u64,
    /// Page reads that had to fault from disk.
    pub misses: u64,
    /// Pages evicted by LRU.
    pub evictions: u64,
    /// Pages installed by prefetch.
    pub prefetched: u64,
    /// Dirty pages flushed by the timeout mechanism.
    pub flushed: u64,
    /// Total simulated cost charged, in nanoseconds.
    pub total_cost_ns: u64,
}

/// Outcome of a read through the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadCost {
    /// Simulated nanoseconds for this read.
    pub cost_ns: u64,
    /// Pages served from RAM.
    pub pages_hit: u64,
    /// Pages faulted from disk.
    pub pages_missed: u64,
}

/// The page-cache model. Not internally synchronized; callers wrap it in
/// a lock when shared.
pub struct PageCache {
    config: PageCacheConfig,
    clock: SharedClock,
    pages: HashMap<PageId, PageMeta>,
    lru: BTreeMap<u64, PageId>,
    next_tick: u64,
    /// Last page read per file, for sequential-access detection.
    last_read: HashMap<FileId, u64>,
    stats: CacheStats,
}

impl PageCache {
    /// Creates a cache with the given configuration and clock.
    pub fn new(config: PageCacheConfig, clock: SharedClock) -> Self {
        assert!(config.page_size > 0, "page_size must be positive");
        assert!(config.capacity_pages > 0, "capacity must be positive");
        PageCache {
            config,
            clock,
            pages: HashMap::new(),
            lru: BTreeMap::new(),
            next_tick: 0,
            last_read: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &PageCacheConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Whether a specific page is RAM-resident.
    pub fn is_resident(&self, file: FileId, page: u64) -> bool {
        self.pages.contains_key(&PageId { file, page })
    }

    /// Records an append of `len` bytes at byte `offset` of `file`.
    /// Written pages become resident and dirty. Returns the simulated
    /// cost in nanoseconds (RAM-speed: the write goes to the cache).
    pub fn write(&mut self, file: FileId, offset: u64, len: usize) -> u64 {
        let now = self.clock.now();
        let mut cost = 0;
        for page in self.page_range(offset, len) {
            self.touch(PageId { file, page }, true, now);
            cost += self.config.disk.ram_read_ns(self.config.page_size as u64);
        }
        self.stats.total_cost_ns += cost;
        cost
    }

    /// Reads `len` bytes at byte `offset` of `file` through the cache,
    /// returning the simulated cost. Misses charge disk costs (random for
    /// the first faulted page of a non-sequential access, sequential
    /// otherwise) and trigger prefetch of the following pages.
    pub fn read(&mut self, file: FileId, offset: u64, len: usize) -> ReadCost {
        let now = self.clock.now();
        let page_bytes = self.config.page_size as u64;
        let mut out = ReadCost {
            cost_ns: 0,
            pages_hit: 0,
            pages_missed: 0,
        };
        let pages: Vec<u64> = self.page_range(offset, len).collect();
        // Sequential if this read continues (or overlaps the tail of)
        // the previous one — index-aligned seeks may start a page or two
        // before the prior read's end.
        let sequential_start = self
            .last_read
            .get(&file)
            .map(|&last| {
                pages.first().is_some_and(|&p| p <= last + 1)
                    && pages.last().is_some_and(|&p| p + 1 >= last)
            })
            .unwrap_or(false);
        let mut prev_missed = sequential_start;
        for &page in &pages {
            let id = PageId { file, page };
            if self.pages.contains_key(&id) {
                self.touch(id, false, now);
                out.pages_hit += 1;
                out.cost_ns += self.config.disk.ram_read_ns(page_bytes);
                prev_missed = false;
            } else {
                out.pages_missed += 1;
                // A miss directly after another faulted page continues a
                // disk streaming read; an isolated miss pays a seek.
                out.cost_ns += if prev_missed {
                    self.config.disk.sequential_read_ns(page_bytes)
                } else {
                    self.config.disk.random_read_ns(page_bytes)
                };
                self.touch(id, false, now);
                prev_missed = true;
                // Prefetch ahead of the reader; prefetched pages arrive
                // clean and cost nothing to this read (the disk streams
                // them in the background).
                for ahead in 1..=self.config.prefetch_pages as u64 {
                    let pid = PageId {
                        file,
                        page: page + ahead,
                    };
                    if !self.pages.contains_key(&pid) {
                        self.touch(pid, false, now);
                        self.stats.prefetched += 1;
                    }
                }
            }
        }
        if let Some(&last) = pages.last() {
            // Kernel-style readahead: a sequential reader keeps the
            // window ahead of it warm even when the current pages hit
            // (async readahead fires at the readahead mark, not only on
            // faults).
            if sequential_start || out.pages_missed > 0 {
                for ahead in 1..=self.config.prefetch_pages as u64 {
                    let pid = PageId {
                        file,
                        page: last + ahead,
                    };
                    if !self.pages.contains_key(&pid) {
                        self.touch(pid, false, now);
                        self.stats.prefetched += 1;
                    }
                }
            }
            self.last_read.insert(file, last);
        }
        self.stats.hits += out.pages_hit;
        self.stats.misses += out.pages_missed;
        self.stats.total_cost_ns += out.cost_ns;
        out
    }

    /// Drops every page of `file` (e.g. when a segment is deleted by
    /// retention).
    pub fn evict_file(&mut self, file: FileId) {
        let doomed: Vec<PageId> = self
            .pages
            .keys()
            .filter(|id| id.file == file)
            .copied()
            .collect();
        for id in doomed {
            if let Some(meta) = self.pages.remove(&id) {
                self.lru.remove(&meta.lru_tick);
                self.stats.evictions += 1;
            }
        }
        self.last_read.remove(&file);
    }

    /// Flushes dirty pages older than the configured timeout; returns the
    /// number flushed. Flushed pages stay resident but become clean.
    pub fn maybe_flush(&mut self) -> usize {
        let now = self.clock.now();
        let mut flushed = 0;
        for meta in self.pages.values_mut() {
            if meta.dirty && meta.dirtied_at + self.config.flush_after_ms <= now {
                meta.dirty = false;
                flushed += 1;
            }
        }
        self.stats.flushed += flushed as u64;
        flushed
    }

    /// Number of dirty (unflushed) pages.
    pub fn dirty_pages(&self) -> usize {
        self.pages.values().filter(|m| m.dirty).count()
    }

    fn page_range(&self, offset: u64, len: usize) -> impl Iterator<Item = u64> {
        let page_bytes = self.config.page_size as u64;
        let first = offset / page_bytes;
        let last = if len == 0 {
            first
        } else {
            (offset + len as u64 - 1) / page_bytes
        };
        first..=last
    }

    fn touch(&mut self, id: PageId, dirty: bool, now: Ts) {
        let tick = self.next_tick;
        self.next_tick += 1;
        match self.pages.get_mut(&id) {
            Some(meta) => {
                self.lru.remove(&meta.lru_tick);
                meta.lru_tick = tick;
                if dirty && !meta.dirty {
                    meta.dirty = true;
                    meta.dirtied_at = now;
                }
            }
            None => {
                self.pages.insert(
                    id,
                    PageMeta {
                        lru_tick: tick,
                        dirty,
                        dirtied_at: now,
                    },
                );
            }
        }
        self.lru.insert(tick, id);
        while self.pages.len() > self.config.capacity_pages {
            let (&victim_tick, &victim) = self.lru.iter().next().expect("lru non-empty");
            self.lru.remove(&victim_tick);
            self.pages.remove(&victim);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    fn cache(capacity: usize, prefetch: usize) -> (PageCache, SimClock) {
        let clock = SimClock::new(0);
        let cfg = PageCacheConfig {
            page_size: 4096,
            capacity_pages: capacity,
            prefetch_pages: prefetch,
            flush_after_ms: 100,
            disk: DiskModel::default(),
        };
        (PageCache::new(cfg, clock.shared()), clock)
    }

    #[test]
    fn write_then_read_hits() {
        let (mut c, _) = cache(64, 0);
        c.write(1, 0, 4096);
        let r = c.read(1, 0, 4096);
        assert_eq!(r.pages_hit, 1);
        assert_eq!(r.pages_missed, 0);
    }

    #[test]
    fn cold_read_misses_and_costs_more() {
        let (mut c, _) = cache(64, 0);
        let cold = c.read(1, 0, 4096);
        let warm = c.read(1, 0, 4096);
        assert_eq!(cold.pages_missed, 1);
        assert_eq!(warm.pages_hit, 1);
        assert!(cold.cost_ns > warm.cost_ns * 10);
    }

    #[test]
    fn lru_evicts_oldest_pages() {
        let (mut c, _) = cache(4, 0);
        for page in 0..8u64 {
            c.write(1, page * 4096, 4096);
        }
        // Pages 0..4 evicted, 4..8 resident.
        assert!(!c.is_resident(1, 0));
        assert!(c.is_resident(1, 7));
        assert_eq!(c.resident_pages(), 4);
    }

    #[test]
    fn anti_caching_keeps_log_head_resident() {
        // Appending writer: the most recent pages (the head of the log)
        // stay in RAM, old pages age out — exactly §4.1.
        let (mut c, _) = cache(16, 0);
        for page in 0..100u64 {
            c.write(1, page * 4096, 4096);
        }
        let tail = c.read(1, 99 * 4096, 4096);
        assert_eq!(tail.pages_hit, 1, "head of log must be RAM-resident");
        let old = c.read(1, 0, 4096);
        assert_eq!(old.pages_missed, 1, "cold tail must fault from disk");
    }

    #[test]
    fn prefetch_warms_sequential_reads() {
        let (mut c, _) = cache(1024, 8);
        // First read faults and prefetches 8 pages ahead.
        let first = c.read(2, 0, 4096);
        assert_eq!(first.pages_missed, 1);
        for page in 1..=8u64 {
            let r = c.read(2, page * 4096, 4096);
            assert_eq!(r.pages_missed, 0, "page {page} should be prefetched");
        }
    }

    #[test]
    fn flush_after_timeout() {
        let (mut c, clock) = cache(64, 0);
        c.write(1, 0, 4096 * 4);
        assert_eq!(c.dirty_pages(), 4);
        assert_eq!(c.maybe_flush(), 0, "too early to flush");
        clock.advance(200);
        assert_eq!(c.maybe_flush(), 4);
        assert_eq!(c.dirty_pages(), 0);
    }

    #[test]
    fn evict_file_drops_all_pages() {
        let (mut c, _) = cache(64, 0);
        c.write(1, 0, 4096 * 4);
        c.write(2, 0, 4096 * 2);
        c.evict_file(1);
        assert_eq!(c.resident_pages(), 2);
        assert!(!c.is_resident(1, 0));
        assert!(c.is_resident(2, 0));
    }

    #[test]
    fn multi_page_read_accounts_all_pages() {
        let (mut c, _) = cache(64, 0);
        let r = c.read(3, 0, 4096 * 10);
        assert_eq!(r.pages_missed, 10);
        let r2 = c.read(3, 0, 4096 * 10);
        assert_eq!(r2.pages_hit, 10);
    }

    #[test]
    fn sequential_misses_cheaper_than_random() {
        let (mut c1, _) = cache(1024, 0);
        // Sequential scan of 16 pages.
        let seq = c1.read(1, 0, 4096 * 16);
        // Random faults: 16 isolated single-page reads on distinct files.
        let (mut c2, _) = cache(1024, 0);
        let mut random_cost = 0;
        for f in 0..16u64 {
            random_cost += c2.read(f, 0, 4096).cost_ns;
        }
        assert!(
            seq.cost_ns < random_cost,
            "{} !< {}",
            seq.cost_ns,
            random_cost
        );
    }

    #[test]
    fn stats_accumulate() {
        let (mut c, _) = cache(64, 4);
        c.read(1, 0, 4096);
        c.read(1, 0, 4096);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.prefetched, 4);
        assert!(s.total_cost_ns > 0);
    }

    #[test]
    fn zero_len_read_touches_one_page() {
        let (mut c, _) = cache(64, 0);
        let r = c.read(1, 8192, 0);
        assert_eq!(r.pages_hit + r.pages_missed, 1);
    }
}
