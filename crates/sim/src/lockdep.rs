//! Runtime lock-order checking (lockdep).
//!
//! The static pass (`liquid-lint`, lint `lock-order`) proves ordering
//! for acquisitions it can see nested in one function body; this
//! module is its dynamic twin, catching the orders that only emerge at
//! runtime — a consumer holding its state lock while the cluster takes
//! its own, a rebalance calling back into partition metadata. The
//! tracked [`Mutex`]/[`RwLock`] wrap `parking_lot` and, in debug
//! builds, record every acquisition against a per-thread stack of held
//! locks plus a global rank graph:
//!
//! * **Rank inversion** — acquiring a lock whose [`RANKS`] order is
//!   not strictly below every lock the thread already holds aborts
//!   immediately with both sites named.
//! * **Cycle** — each acquisition adds `held → acquired` edges to a
//!   process-wide graph; a cycle there means two threads disagree
//!   about ordering even if neither has deadlocked yet.
//!
//! Release builds compile the wrappers down to plain `parking_lot`
//! locks: no thread-local, no graph, no branch.
//!
//! The table below is the single source of truth for the hierarchy —
//! the analyzer parses it out of this file's source, so editing it
//! re-checks the whole tree, and the liquid-check model scheduler
//! ([`crate::sched`]) labels lock schedule points with these same rank
//! names. Orders must be acquired strictly descending, which encodes
//! today's call graph: the DFS namespace locks state over stats; the
//! stack holds its managed-job list across YARN resource-manager
//! calls; a consumer calls into the group registry and cluster, the
//! group registry reads cluster metadata for assignment, the cluster
//! resolves a partition under its metadata lock and then works inside
//! that partition's own shard lock (`partition.state` — one mutex per
//! partition, ranked just below `cluster.state` so the
//! metadata-read-then-shard-lock pattern is descending; shards never
//! nest each other, which same-rank reentrancy checking enforces),
//! commits offsets, fires coordination-tree watches and touches the
//! segment-read cache shards (`log.readcache`) and log page caches —
//! a cache miss fills under its shard lock and charges the page-cache
//! model below it, so the read-cache rank sits above `log.pagecache`;
//! and quota accounting, job metrics and ACL grants are leaves that
//! call nothing.

use std::ops::{Deref, DerefMut};

/// The lock hierarchy: `(rank name, order)`. Locks must be acquired in
/// strictly descending order of `order`.
pub const RANKS: &[(&str, u32)] = &[
    ("dfs.state", 96),
    ("dfs.stats", 94),
    ("stack.feeds", 80),
    ("stack.managed", 75),
    ("yarn.state", 70),
    ("producer.batches", 65),
    ("consumer.state", 60),
    ("group.groups", 50),
    ("cluster.state", 40),
    ("partition.state", 35),
    ("offsets.inner", 30),
    ("offsets.shard", 28),
    ("quota.limits", 24),
    ("quota.usage", 23),
    ("quota.throttled", 21),
    ("coord.tree", 15),
    ("job.metrics", 10),
    ("log.readcache", 8),
    ("log.pagecache", 5),
    ("acl.grants", 3),
];

/// The order declared for `rank`, if any.
pub fn order_of(rank: &str) -> Option<u32> {
    RANKS.iter().find(|(n, _)| *n == rank).map(|(_, o)| *o)
}

fn resolve(rank: &'static str) -> u32 {
    match order_of(rank) {
        Some(o) => o,
        // lint:allow(panic, reason=lockdep's contract is to abort on misuse in debug builds; an unranked lock is a config bug)
        None => panic!("lockdep: rank {rank:?} is not declared in sim::lockdep::RANKS"),
    }
}

/// A rank-tracked mutex. Construction names the lock's rank; every
/// `lock()` in a debug build checks the hierarchy.
#[derive(Debug)]
pub struct Mutex<T> {
    rank: &'static str,
    order: u32,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` under the given [`RANKS`] name.
    pub fn new(rank: &'static str, value: T) -> Self {
        Mutex {
            rank,
            order: resolve(rank),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Acquires the mutex, enforcing the rank hierarchy in debug
    /// builds. Under a liquid-check model run the acquisition is a
    /// schedule point: the call parks until the model grants the lock,
    /// which guarantees the real acquisition below cannot block.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let sched = crate::sched::lock_acquired(
            &self.inner as *const parking_lot::Mutex<T> as usize,
            crate::sched::LockKind::Exclusive,
            self.rank,
        );
        let token = tracking::acquire(self.rank, self.order);
        MutexGuard {
            inner: self.inner.lock(),
            _token: token,
            _sched: sched,
        }
    }
}

/// A rank-tracked reader-writer lock. Read and write acquisitions
/// count the same for ordering purposes — `parking_lot`'s `RwLock` is
/// write-preferring, so even recursive *reads* on one thread can
/// deadlock against a queued writer, and lockdep flags them.
#[derive(Debug)]
pub struct RwLock<T> {
    rank: &'static str,
    order: u32,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` under the given [`RANKS`] name.
    pub fn new(rank: &'static str, value: T) -> Self {
        RwLock {
            rank,
            order: resolve(rank),
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard (a schedule point under
    /// liquid-check, enabled while no writer holds the model lock).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let sched = crate::sched::lock_acquired(
            &self.inner as *const parking_lot::RwLock<T> as usize,
            crate::sched::LockKind::Shared,
            self.rank,
        );
        let token = tracking::acquire(self.rank, self.order);
        RwLockReadGuard {
            inner: self.inner.read(),
            _token: token,
            _sched: sched,
        }
    }

    /// Acquires an exclusive write guard (a schedule point under
    /// liquid-check, enabled while the model lock is free).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let sched = crate::sched::lock_acquired(
            &self.inner as *const parking_lot::RwLock<T> as usize,
            crate::sched::LockKind::Exclusive,
            self.rank,
        );
        let token = tracking::acquire(self.rank, self.order);
        RwLockWriteGuard {
            inner: self.inner.write(),
            _token: token,
            _sched: sched,
        }
    }
}

// Guard field order is load-bearing: fields drop in declaration
// order, so the real `parking_lot` guard (`inner`) unlocks first and
// the liquid-check release token (`_sched`) commits the model-level
// release last. That ordering is what lets the model grant the lock
// to another thread knowing the real lock is already free.

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    inner: parking_lot::MutexGuard<'a, T>,
    _token: tracking::Token,
    _sched: crate::sched::LockToken,
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    _token: tracking::Token,
    _sched: crate::sched::LockToken,
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    _token: tracking::Token,
    _sched: crate::sched::LockToken,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
mod tracking {
    //! The debug-build bookkeeping: a per-thread stack of held locks
    //! and a process-wide acquisition-order graph.

    use std::cell::{Cell, RefCell};
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::{Mutex as StdMutex, OnceLock};

    struct Held {
        id: u64,
        rank: &'static str,
        order: u32,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    }

    /// `held rank → ranks acquired while holding it`, across all
    /// threads since process start.
    static EDGES: OnceLock<StdMutex<BTreeMap<&'static str, BTreeSet<&'static str>>>> =
        OnceLock::new();

    /// RAII handle for one acquisition; dropping it (with the guard)
    /// removes the entry from the thread's held stack, tolerating
    /// out-of-order guard drops.
    pub struct Token {
        id: u64,
    }

    impl Drop for Token {
        fn drop(&mut self) {
            let _ = HELD.try_with(|h| {
                let mut h = h.borrow_mut();
                if let Some(pos) = h.iter().rposition(|e| e.id == self.id) {
                    h.remove(pos);
                }
            });
        }
    }

    pub fn acquire(rank: &'static str, order: u32) -> Token {
        HELD.with(|h| {
            let held = h.borrow();
            for e in held.iter() {
                if order >= e.order {
                    let stack: Vec<&str> = held.iter().map(|e| e.rank).collect();
                    // lint:allow(panic, reason=lockdep's contract is to abort on ordering violations in debug builds)
                    panic!(
                        "lockdep: rank inversion — acquiring {rank:?} (order {order}) while \
                         holding {:?} (order {}); held stack: {stack:?}. Locks must be taken \
                         in strictly descending sim::lockdep::RANKS order.",
                        e.rank, e.order
                    );
                }
            }
            record_edges(&held, rank);
        });
        let id = NEXT_ID.with(|n| {
            let id = n.get();
            n.set(id + 1);
            id
        });
        HELD.with(|h| {
            h.borrow_mut().push(Held { id, rank, order });
        });
        Token { id }
    }

    fn record_edges(held: &[Held], to: &'static str) {
        if held.is_empty() {
            return;
        }
        let graph = EDGES.get_or_init(|| StdMutex::new(BTreeMap::new()));
        let mut graph = match graph.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        for e in held {
            graph.entry(e.rank).or_default().insert(to);
        }
        // `held → to` just went in; a path `to → … → held` means some
        // other thread acquired these ranks in the opposite order.
        for e in held {
            if let Some(path) = find_path(&graph, to, e.rank) {
                // lint:allow(panic, reason=lockdep's contract is to abort on ordering violations in debug builds)
                panic!(
                    "lockdep: cycle in the global acquisition graph — {:?} is already \
                     acquired after {to:?} elsewhere (path {path:?}), but this thread holds \
                     {:?} while acquiring {to:?}",
                    e.rank, e.rank
                );
            }
        }
    }

    /// DFS path from `from` to `goal` in the edge graph, if any.
    fn find_path(
        graph: &BTreeMap<&'static str, BTreeSet<&'static str>>,
        from: &'static str,
        goal: &'static str,
    ) -> Option<Vec<&'static str>> {
        let mut stack = vec![vec![from]];
        let mut seen = BTreeSet::new();
        while let Some(path) = stack.pop() {
            let node = *path.last()?;
            if node == goal {
                return Some(path);
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(nexts) = graph.get(node) {
                for &n in nexts {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push(p);
                }
            }
        }
        None
    }

    /// Ranks currently held by this thread, outermost first (test
    /// hook).
    pub fn held_ranks() -> Vec<&'static str> {
        HELD.with(|h| h.borrow().iter().map(|e| e.rank).collect())
    }
}

#[cfg(not(debug_assertions))]
mod tracking {
    //! Release builds: zero-sized token, no checks.

    pub struct Token;

    #[inline(always)]
    pub fn acquire(_rank: &'static str, _order: u32) -> Token {
        Token
    }
}

#[cfg(debug_assertions)]
/// Ranks currently held by the calling thread, outermost first.
/// Debug-only test hook.
pub fn held_ranks() -> Vec<&'static str> {
    tracking::held_ranks()
}

// The checks under test only exist with debug assertions; `cargo test
// --release` would see plain parking_lot passthrough.
#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn descending_acquisition_is_clean() {
        let a = Mutex::new("group.groups", 1u32);
        let b = Mutex::new("offsets.inner", 2u32);
        let c = Mutex::new("job.metrics", 3u32);
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        assert_eq!(*ga + *gb + *gc, 6);
        assert_eq!(
            held_ranks(),
            vec!["group.groups", "offsets.inner", "job.metrics"]
        );
    }

    #[test]
    fn guards_unwind_the_held_stack() {
        let a = Mutex::new("cluster.state", ());
        {
            let _g = a.lock();
            assert_eq!(held_ranks(), vec!["cluster.state"]);
        }
        assert!(held_ranks().is_empty());
        // Reacquisition after release is fine.
        let _g = a.lock();
    }

    #[test]
    fn out_of_order_release_is_tolerated() {
        let a = Mutex::new("group.groups", ());
        let b = Mutex::new("offsets.inner", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the *outer* lock first
        assert_eq!(held_ranks(), vec!["offsets.inner"]);
        drop(gb);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn rank_inversion_panics() {
        let low = Mutex::new("job.metrics", ());
        let high = Mutex::new("cluster.state", ());
        let _g = low.lock();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _h = high.lock();
        }))
        .expect_err("ascending acquisition must abort");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("rank inversion"), "unexpected message: {msg}");
        assert!(msg.contains("cluster.state") && msg.contains("job.metrics"));
    }

    #[test]
    fn same_rank_reentrancy_panics() {
        let a = Mutex::new("offsets.inner", ());
        let b = Mutex::new("offsets.inner", ());
        let _g = a.lock();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _h = b.lock();
        }))
        .expect_err("same-order acquisition must abort");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("rank inversion"), "unexpected message: {msg}");
    }

    #[test]
    fn rwlock_read_then_lower_lock_is_clean() {
        let state = RwLock::new("cluster.state", 7u32);
        let inner = Mutex::new("offsets.inner", ());
        let g = state.read();
        let _h = inner.lock();
        assert_eq!(*g, 7);
    }

    #[test]
    fn rwlock_write_counts_for_ordering() {
        let state = RwLock::new("cluster.state", ());
        let groups = Mutex::new("group.groups", ());
        let _g = state.write();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _h = groups.lock();
        }))
        .expect_err("cluster.state before group.groups is an inversion");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("group.groups"));
    }

    #[test]
    fn recursive_rwlock_read_panics() {
        // Write-preferring RwLock: read-read recursion deadlocks
        // against a queued writer, so lockdep treats it as reentrancy.
        let state = RwLock::new("cluster.state", ());
        let _g = state.read();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _h = state.read();
        }))
        .expect_err("recursive read must abort");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("rank inversion"));
    }

    #[test]
    fn unknown_rank_panics_at_construction() {
        let err =
            catch_unwind(|| Mutex::new("no.such.rank", ())).expect_err("unranked lock must abort");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("not declared"), "unexpected message: {msg}");
    }

    #[test]
    fn panic_does_not_leak_held_entries() {
        let low = Mutex::new("job.metrics", ());
        let high = Mutex::new("consumer.state", ());
        {
            let _g = low.lock();
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let _h = high.lock();
            }));
        }
        assert!(held_ranks().is_empty());
        // The thread is still usable afterwards.
        let _g = high.lock();
        let _h = low.lock();
    }

    #[test]
    fn ranks_table_is_strictly_ordered_and_unique() {
        let mut orders: Vec<u32> = RANKS.iter().map(|&(_, o)| o).collect();
        let len = orders.len();
        orders.sort_unstable();
        orders.dedup();
        assert_eq!(orders.len(), len, "duplicate orders in RANKS");
        assert_eq!(order_of("cluster.state"), Some(40));
        assert_eq!(order_of("nope"), None);
    }
}
